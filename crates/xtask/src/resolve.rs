//! Workspace symbol table and module-aware name resolution.
//!
//! The interprocedural checks ([`crate::interproc`]) need to answer "which
//! function does this call land in?" across crate boundaries. Full Rust name
//! resolution is out of reach for a hand-rolled parser that skips `use`
//! items, so resolution is *name-based with qualifiers*: every function in
//! every product crate is indexed by bare name, by `(impl type, name)`, and
//! by defining file, and call sites are resolved with the strongest
//! qualifier available:
//!
//! * `Type::name(…)` / `Self::name(…)` paths resolve through the impl-type
//!   index (so `PathTrie::insert` never aliases `HashMap::insert`);
//! * `self.name(…)` method calls prefer candidates in the receiver's own
//!   impl block, then the same file;
//! * bare `name(…)` calls prefer same-file candidates;
//! * remaining method calls resolve to *every* function of that name — a
//!   sound over-approximation for reachability analyses — except for names
//!   on the [`AMBIGUOUS_METHODS`] list, which collide with ubiquitous std
//!   container/iterator methods and would otherwise wire the whole
//!   workspace together.
//!
//! The table also records the two type facts the dataflow engine needs
//! without a type checker: which functions *return* a `HashMap`/`HashSet`
//! (from the captured return-type text) and which struct fields or
//! ascribed bindings *are* hash containers (from a token scan for
//! `name : HashMap<…>` / `name : HashSet<…>` declarations).

#![allow(
    clippy::indexing_slicing,
    reason = "function ids are dense indices produced by enumerate() over the fn table itself; the index maps only ever hold such ids"
)]

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{File, FnItem, Item};
use crate::lexer::{Tok, Token};

/// Method names that collide with std container/iterator methods: a bare
/// `x.insert(…)` is overwhelmingly a std map/set/Vec call, so no call edge
/// is created for them unless a `self.`/`Type::` qualifier disambiguates.
pub const AMBIGUOUS_METHODS: &[&str] = &[
    "insert",
    "remove",
    "push",
    "pop",
    "replace",
    "take",
    "swap",
    "extend",
    "get",
    "get_mut",
    "new",
    "len",
    "is_empty",
    "clear",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "drain",
    "retain",
    "contains",
    "contains_key",
    "entry",
    "or_insert",
    "sort",
    "sort_by",
    "sort_by_key",
    "map",
    "filter",
    "fold",
    "collect",
    "sum",
    "min",
    "max",
    "count",
    "last",
    "first",
    "split",
    "join",
    "default",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "from",
    "into",
    "with_capacity",
    "to_string",
    "write",
    "flush",
    "name",
];

/// One function definition in the workspace.
#[derive(Debug)]
pub struct FnDef<'a> {
    /// Index into the file list handed to [`Workspace::build`].
    pub file: usize,
    /// Workspace-relative path of the defining file.
    pub path: &'a str,
    /// The parsed function item (body, return type, visibility, line).
    pub item: &'a FnItem,
    /// First segment of the surrounding `impl` type (`VirtualFs` for
    /// `impl VirtualFs`, `PathTrie` for `impl Index for PathTrie`), empty
    /// for free functions.
    pub impl_ty: String,
    /// True inside `impl Trait for Type` blocks and `trait` bodies: the
    /// function satisfies an interface obligation rather than offering API.
    pub of_trait: bool,
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct Workspace<'a> {
    pub fns: Vec<FnDef<'a>>,
    /// Bare name → every definition.
    by_name: BTreeMap<&'a str, Vec<usize>>,
    /// `(impl type first segment, name)` → definitions.
    by_impl: BTreeMap<(String, String), Vec<usize>>,
    /// file index → definitions in that file.
    by_file: BTreeMap<usize, Vec<usize>>,
    /// Names whose captured return type mentions `HashMap`/`HashSet`.
    pub hash_returning: BTreeSet<&'a str>,
    /// Field/binding names declared with a hash-container type anywhere in
    /// the workspace (`quadrant_of : HashMap < … >`).
    pub hash_fields: BTreeSet<String>,
    /// Struct declarations (field name → type text), from the token scan.
    pub structs: StructTable,
}

/// Struct field types collected by a token scan over `struct` declarations
/// (the parser skips struct bodies). Tuple-struct fields are keyed by their
/// index text (`"0"`, `"1"`, …). Name-based like the rest of resolution:
/// two same-named structs with *different* field layouts poison the name,
/// so the interval prover never trusts an ambiguous lookup.
#[derive(Debug, Default)]
pub struct StructTable {
    fields: BTreeMap<String, BTreeMap<String, String>>,
    poisoned: BTreeSet<String>,
}

impl StructTable {
    /// The declared type text of `strukt.field`, unless the struct name is
    /// ambiguous in the workspace.
    pub fn field_ty(&self, strukt: &str, field: &str) -> Option<&str> {
        if self.poisoned.contains(strukt) {
            return None;
        }
        self.fields.get(strukt)?.get(field).map(String::as_str)
    }

    fn record(&mut self, name: String, fields: BTreeMap<String, String>) {
        match self.fields.get(&name) {
            Some(prev) if *prev != fields => {
                self.poisoned.insert(name);
            }
            Some(_) => {}
            None => {
                self.fields.insert(name, fields);
            }
        }
    }
}

fn first_segment(ty: &str) -> String {
    ty.split_whitespace().next().unwrap_or_default().to_string()
}

/// Display text of one token, for rebuilding type text in the struct scan.
fn tok_text(t: &Tok) -> &str {
    match t {
        Tok::Ident(s) | Tok::Int(s) | Tok::Float(s) => s,
        Tok::Punct(p) => p,
        Tok::Str => "\"…\"",
        Tok::Char => "'…'",
        Tok::Lifetime => "'_",
    }
}

/// Depth bookkeeping shared by the struct-field scanners: brackets and
/// angles tracked separately, `<<`/`>>` counting double.
fn track_depth(t: &Tok, brackets: &mut i32, angles: &mut i32) {
    match t {
        Tok::Punct("(" | "[" | "{") => *brackets += 1,
        Tok::Punct(")" | "]" | "}") => *brackets -= 1,
        Tok::Punct("<") => *angles += 1,
        Tok::Punct("<<") => *angles += 2,
        Tok::Punct(">") => *angles = (*angles - 1).max(0),
        Tok::Punct(">>") => *angles = (*angles - 2).max(0),
        _ => {}
    }
}

/// Scan `Ty, Ty, …)` tuple-struct fields starting just past the `(`.
/// Returns the fields keyed `"0"`, `"1"`, … and the index past the `)`.
fn scan_tuple_fields(tokens: &[Token], start: usize) -> (BTreeMap<String, String>, usize) {
    let mut fields = BTreeMap::new();
    let mut ty: Vec<&str> = Vec::new();
    let (mut brackets, mut angles) = (0i32, 0i32);
    let mut idx = 0u32;
    let mut j = start;
    while let Some(t) = tokens.get(j) {
        match &t.tok {
            Tok::Punct(")") if brackets == 0 => {
                if !ty.is_empty() {
                    fields.insert(idx.to_string(), ty.join(" "));
                }
                return (fields, j + 1);
            }
            Tok::Punct(",") if brackets == 0 && angles == 0 => {
                if !ty.is_empty() {
                    fields.insert(idx.to_string(), ty.join(" "));
                    idx += 1;
                }
                ty.clear();
            }
            Tok::Ident(s) if s == "pub" && ty.is_empty() => {
                // `pub` / `pub(crate)` visibility: skip, with its group.
                if matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct("("))) {
                    let mut d = 0i32;
                    j += 1;
                    while let Some(t2) = tokens.get(j) {
                        match &t2.tok {
                            Tok::Punct("(") => d += 1,
                            Tok::Punct(")") => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            tok => {
                track_depth(tok, &mut brackets, &mut angles);
                ty.push(tok_text(tok));
            }
        }
        j += 1;
    }
    (fields, j)
}

/// Scan `name: Ty, …}` named-struct fields starting just past the `{`.
/// Returns the field map and the index past the `}`.
fn scan_named_fields(tokens: &[Token], start: usize) -> (BTreeMap<String, String>, usize) {
    let mut fields = BTreeMap::new();
    let mut name: Option<String> = None;
    let mut ty: Vec<&str> = Vec::new();
    let (mut brackets, mut angles) = (0i32, 0i32);
    let mut j = start;
    while let Some(t) = tokens.get(j) {
        match &t.tok {
            Tok::Punct("}") if brackets == 0 => {
                if let Some(n) = name.take() {
                    if !ty.is_empty() {
                        fields.insert(n, ty.join(" "));
                    }
                }
                return (fields, j + 1);
            }
            Tok::Punct(",") if brackets == 0 && angles == 0 => {
                if let Some(n) = name.take() {
                    if !ty.is_empty() {
                        fields.insert(n, ty.join(" "));
                    }
                }
                ty.clear();
            }
            Tok::Punct(":") if brackets == 0 && angles == 0 && name.is_none() => {
                // The ident just before the `:` is the field name; whatever
                // was collected before it was visibility/attribute noise.
                if let Some(Tok::Ident(prev)) = tokens.get(j.wrapping_sub(1)).map(|t| &t.tok) {
                    name = Some(prev.clone());
                }
                ty.clear();
            }
            tok => {
                if name.is_some() {
                    track_depth(tok, &mut brackets, &mut angles);
                    ty.push(tok_text(tok));
                } else if matches!(tok, Tok::Punct("(" | "[" | "{")) {
                    // Attribute/visibility groups before the field name.
                    let mut d = 0i32;
                    while let Some(t2) = tokens.get(j) {
                        match &t2.tok {
                            Tok::Punct("(" | "[" | "{") => d += 1,
                            Tok::Punct(")" | "]" | "}") => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
        }
        j += 1;
    }
    (fields, j)
}

fn ty_is_hash(ty: &str) -> bool {
    ty.split_whitespace()
        .any(|w| w == "HashMap" || w == "HashSet")
}

impl<'a> Workspace<'a> {
    /// Build the table over `files`: `(workspace-relative path, ast)` pairs,
    /// in the runner's stable file order.
    pub fn build(files: &'a [(String, File)]) -> Workspace<'a> {
        let mut ws = Workspace::default();
        for (idx, (path, file)) in files.iter().enumerate() {
            for item in &file.items {
                ws.collect_item(idx, path, item, "", false);
            }
        }
        ws
    }

    fn collect_item(
        &mut self,
        file: usize,
        path: &'a str,
        item: &'a Item,
        impl_ty: &str,
        of_trait: bool,
    ) {
        match item {
            Item::Fn(f) => {
                if f.name.is_empty() {
                    return;
                }
                let id = self.fns.len();
                if f.ret.as_deref().is_some_and(ty_is_hash) {
                    self.hash_returning.insert(&f.name);
                }
                self.fns.push(FnDef {
                    file,
                    path,
                    item: f,
                    impl_ty: impl_ty.to_string(),
                    of_trait,
                });
                self.by_name.entry(&f.name).or_default().push(id);
                if !impl_ty.is_empty() {
                    self.by_impl
                        .entry((impl_ty.to_string(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                self.by_file.entry(file).or_default().push(id);
            }
            Item::Impl {
                self_ty,
                of_trait,
                items,
            } => {
                let ty = first_segment(self_ty);
                for it in items {
                    self.collect_item(file, path, it, &ty, *of_trait);
                }
            }
            Item::Mod { items, .. } => {
                for it in items {
                    self.collect_item(file, path, it, impl_ty, of_trait);
                }
            }
        }
    }

    /// Record hash-typed field/binding names from one file's token stream
    /// (`name : HashMap <` / `name : HashSet <` at any nesting). This is a
    /// token scan because the parser skips `struct` bodies.
    pub fn scan_hash_decls(&mut self, tokens: &[Token]) {
        for i in 2..tokens.len() {
            let is_hash =
                matches!(&tokens[i].tok, Tok::Ident(s) if s == "HashMap" || s == "HashSet");
            if !is_hash {
                continue;
            }
            // Walk back over an optional qualifying path
            // (`std :: collections :: HashMap`).
            let mut j = i;
            while j >= 2
                && matches!(&tokens[j - 1].tok, Tok::Punct("::"))
                && matches!(&tokens[j - 2].tok, Tok::Ident(_))
            {
                j -= 2;
            }
            if j >= 2 {
                if let (Tok::Ident(name), Tok::Punct(":")) =
                    (&tokens[j - 2].tok, &tokens[j - 1].tok)
                {
                    self.hash_fields.insert(name.clone());
                }
            }
        }
    }

    /// Record struct field types from one file's token stream. Token scan
    /// for the same reason as [`Self::scan_hash_decls`]: the parser skips
    /// `struct` bodies. Handles tuple structs, named-field structs,
    /// generics, and `where` clauses; unit structs record an empty map.
    pub fn scan_struct_decls(&mut self, tokens: &[Token]) {
        let mut i = 0usize;
        while i < tokens.len() {
            if !matches!(&tokens[i].tok, Tok::Ident(s) if s == "struct") {
                i += 1;
                continue;
            }
            let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) else {
                i += 1;
                continue;
            };
            let name = name.clone();
            let mut j = i + 2;
            // Skip generics: `<` … `>` with `<<`/`>>` counting double.
            if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct("<"))) {
                let mut d = 0i32;
                while j < tokens.len() {
                    match &tokens[j].tok {
                        Tok::Punct("<") => d += 1,
                        Tok::Punct("<<") => d += 2,
                        Tok::Punct(">") => d -= 1,
                        Tok::Punct(">>") => d -= 2,
                        _ => {}
                    }
                    j += 1;
                    if d <= 0 {
                        break;
                    }
                }
            }
            // Skip a `where` clause up to the body/semicolon.
            if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "where") {
                while j < tokens.len() && !matches!(&tokens[j].tok, Tok::Punct("{" | "(" | ";")) {
                    j += 1;
                }
            }
            match tokens.get(j).map(|t| &t.tok) {
                Some(Tok::Punct("(")) => {
                    let (fields, end) = scan_tuple_fields(tokens, j + 1);
                    self.structs.record(name, fields);
                    i = end;
                }
                Some(Tok::Punct("{")) => {
                    let (fields, end) = scan_named_fields(tokens, j + 1);
                    self.structs.record(name, fields);
                    i = end;
                }
                Some(Tok::Punct(";")) => {
                    self.structs.record(name, BTreeMap::new());
                    i = j + 1;
                }
                _ => i = j.max(i + 1),
            }
        }
    }

    /// All definitions of `name`.
    pub fn defs_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Definitions of `name` under impl blocks for `ty`.
    fn defs_in_impl(&self, ty: &str, name: &str) -> &[usize] {
        self.by_impl
            .get(&(ty.to_string(), name.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    fn defs_in_file(&self, file: usize, name: &str) -> Vec<usize> {
        self.by_file
            .get(&file)
            .map_or(&[] as &[usize], Vec::as_slice)
            .iter()
            .copied()
            .filter(|&id| self.fns[id].item.name == name)
            .collect()
    }

    /// Resolve a call through a path expression (`helper(…)`,
    /// `Type::method(…)`, `crate::module::helper(…)`). `from` locates the
    /// call site for same-file/same-impl preference.
    pub fn resolve_path_call(&self, path_text: &str, from: &FnDef<'a>) -> Vec<usize> {
        let segs: Vec<&str> = path_text
            .split("::")
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| s.split_whitespace().next().unwrap_or(""))
            .collect();
        let Some(&name) = segs.last() else {
            return Vec::new();
        };
        if self.defs_named(name).is_empty() {
            return Vec::new();
        }
        if segs.len() >= 2 {
            let qual = segs[segs.len() - 2];
            if qual == "Self" || qual == "self" {
                let same = self.defs_in_impl(&from.impl_ty, name);
                if !same.is_empty() {
                    return same.to_vec();
                }
                return self.defs_in_file(from.file, name);
            }
            // `Type::name` — only impl-type matches count; a qualified path
            // that matches nothing in the workspace (e.g. `HashMap::new`)
            // resolves to nothing rather than to every `new`.
            let in_impl = self.defs_in_impl(qual, name);
            if !in_impl.is_empty() {
                return in_impl.to_vec();
            }
            // `module::name` — fall back to the bare name only when the
            // qualifier is lowercase (a module, not a foreign type).
            if qual.chars().next().is_some_and(char::is_uppercase) {
                return Vec::new();
            }
            return self.defs_named(name).to_vec();
        }
        // Unqualified call: prefer the same file (module-local fn), else any.
        let local = self.defs_in_file(from.file, name);
        if !local.is_empty() {
            return local;
        }
        self.defs_named(name).to_vec()
    }

    /// Resolve a method call `recv.name(…)`. `recv_is_self` is true for a
    /// literal `self` receiver.
    pub fn resolve_method_call(
        &self,
        name: &str,
        recv_is_self: bool,
        from: &FnDef<'a>,
    ) -> Vec<usize> {
        if self.defs_named(name).is_empty() {
            return Vec::new();
        }
        if recv_is_self {
            let same = self.defs_in_impl(&from.impl_ty, name);
            if !same.is_empty() {
                return same.to_vec();
            }
            let local = self.defs_in_file(from.file, name);
            if !local.is_empty() {
                return local;
            }
        }
        if AMBIGUOUS_METHODS.contains(&name) {
            return Vec::new();
        }
        self.defs_named(name).to_vec()
    }

    /// Find the definition ids for `(path suffix, fn name)` entry points.
    pub fn find_entries(&self, entries: &[(&str, &str)]) -> Vec<usize> {
        let mut out = Vec::new();
        for (id, def) in self.fns.iter().enumerate() {
            if entries
                .iter()
                .any(|(p, n)| def.path.ends_with(p) && def.item.name == *n)
            {
                out.push(id);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::lexer::lex;

    fn ws_from(sources: &[(&str, &str)]) -> Vec<(String, File)> {
        sources
            .iter()
            .map(|(p, s)| (p.to_string(), parse_file(&lex(s).tokens)))
            .collect()
    }

    #[test]
    fn qualified_paths_resolve_through_impl_types() {
        let files = ws_from(&[
            (
                "crates/fs/src/trie.rs",
                "impl PathTrie { pub fn insert(&mut self) {} }",
            ),
            (
                "crates/fs/src/vfs.rs",
                "impl VirtualFs { fn go(&mut self) { PathTrie::insert(x); } }",
            ),
        ]);
        let ws = Workspace::build(&files);
        let from = ws
            .fns
            .iter()
            .find(|d| d.item.name == "go")
            .expect("go indexed");
        let hits = ws.resolve_path_call("PathTrie :: insert", from);
        assert_eq!(hits.len(), 1);
        assert_eq!(ws.fns[hits[0]].impl_ty, "PathTrie");
        // A foreign qualified path resolves to nothing, not to every `insert`.
        assert!(ws.resolve_path_call("HashMap :: insert", from).is_empty());
    }

    #[test]
    fn self_method_calls_prefer_own_impl() {
        let files = ws_from(&[(
            "crates/fs/src/vfs.rs",
            "impl VirtualFs { fn a(&self) { self.b(); } fn b(&self) {} }\n\
             impl Other { fn b(&self) {} }",
        )]);
        let ws = Workspace::build(&files);
        let from = ws.fns.iter().find(|d| d.item.name == "a").expect("a");
        let hits = ws.resolve_method_call("b", true, from);
        assert_eq!(hits.len(), 1);
        assert_eq!(ws.fns[hits[0]].impl_ty, "VirtualFs");
    }

    #[test]
    fn ambiguous_method_names_resolve_to_nothing_without_self() {
        let files = ws_from(&[(
            "crates/fs/src/trie.rs",
            "impl PathTrie { pub fn insert(&mut self) {} }\n\
             fn elsewhere(m: &mut M) { m.insert(1); }",
        )]);
        let ws = Workspace::build(&files);
        let from = ws
            .fns
            .iter()
            .find(|d| d.item.name == "elsewhere")
            .expect("elsewhere");
        assert!(ws.resolve_method_call("insert", false, from).is_empty());
    }

    #[test]
    fn hash_type_facts_are_collected() {
        let src = "struct S { quadrant_of: HashMap<UserId, Quadrant> }\n\
                   pub fn by_user() -> std::collections::HashMap<UserId, u64> { todo!() }";
        let files = ws_from(&[("crates/core/src/x.rs", src)]);
        let mut ws = Workspace::build(&files);
        ws.scan_hash_decls(&lex(src).tokens);
        assert!(ws.hash_returning.contains("by_user"));
        assert!(ws.hash_fields.contains("quadrant_of"));
    }
}
