//! A small hand-rolled Rust lexer.
//!
//! The invariant checks need to reason about *tokens*, not text: a regex
//! cannot tell the float literal `1.0` from the tuple-field access `x.0`,
//! or an `unwrap` inside a string literal from a call. The lexer handles
//! exactly the constructs that distinction requires — comments (nested),
//! string/char/lifetime literals, raw strings, numeric literals with
//! suffixes — and deliberately nothing more. It is not a full Rust lexer;
//! it only needs to be faithful enough that token-level pattern matching
//! over this workspace's sources is sound.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (including suffixed forms like `7u64`).
    Int(String),
    /// Float literal (including suffixed forms like `1.0f64`).
    Float(String),
    /// Any string-like literal (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation, greedily matched (`::`, `==`, `..=`, …).
    Punct(&'static str),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Output of [`lex`]: the token stream plus the waiver comments found.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// `(line, check name)` for each `// xtask-allow: <check> …` comment.
    pub waivers: Vec<(u32, String)>,
}

/// Marker comments of the form `// xtask-allow: <check> -- <reason>` waive
/// one violation of `<check>` on the same line or the line directly below.
const WAIVER_PREFIX: &str = "xtask-allow:";

/// Multi-character punctuation, longest first so matching can be greedy.
const PUNCTS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..", "+", "-", "*", "/", "%", "^", "!", "&",
    "|", "<", ">", "=", ".", ",", ";", ":", "#", "?", "@", "(", ")", "[", "]", "{", "}", "$", "'",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src`. Unrecognised bytes are skipped rather than failed on: the
/// checks degrade to "no finding" on exotic input, never to a crash.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < chars.len() {
        let c = chars.get(i).copied().unwrap_or('\0');
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comments — scan them for waiver markers.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars.get(i) != Some(&'\n') {
                i += 1;
            }
            let text: String = chars.get(start..i).unwrap_or_default().iter().collect();
            if let Some(pos) = text.find(WAIVER_PREFIX) {
                let rest = text.get(pos + WAIVER_PREFIX.len()..).unwrap_or("");
                let name: String = rest
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                if !name.is_empty() {
                    out.waivers.push((line, name));
                }
            }
            continue;
        }

        // Block comments, which nest in Rust.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            i += 2;
            while i < chars.len() && depth > 0 {
                match (chars.get(i), chars.get(i + 1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        i += 2;
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        i += 2;
                    }
                    (Some('\n'), _) => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }

        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
        if (c == 'r' || c == 'b') && looks_like_string_prefix(&chars, i) {
            let start_line = line;
            i = skip_prefixed_string(&chars, i, &mut line);
            out.tokens.push(Token {
                tok: Tok::Str,
                line: start_line,
            });
            continue;
        }

        // Byte char literal `b'x'` — one Char token, not Ident("b") + char.
        if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            let start_line = line;
            i = skip_quoted(&chars, i + 2, '\'', &mut line);
            out.tokens.push(Token {
                tok: Tok::Char,
                line: start_line,
            });
            continue;
        }

        // Raw identifier `r#ident` — lexes as the bare identifier, the way
        // rustc resolves it (`r#type` names `type`). The raw-string branch
        // above already claimed `r#"…"#`, so a `#` here followed by an
        // identifier start can only be a raw identifier.
        if c == 'r'
            && chars.get(i + 1) == Some(&'#')
            && chars.get(i + 2).is_some_and(|c| is_ident_start(*c))
        {
            let start = i + 2;
            i = start;
            while i < chars.len() && chars.get(i).is_some_and(|c| is_ident_continue(*c)) {
                i += 1;
            }
            let text: String = chars.get(start..i).unwrap_or_default().iter().collect();
            out.tokens.push(Token {
                tok: Tok::Ident(text),
                line,
            });
            continue;
        }

        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && chars.get(i).is_some_and(|c| is_ident_continue(*c)) {
                i += 1;
            }
            let text: String = chars.get(start..i).unwrap_or_default().iter().collect();
            out.tokens.push(Token {
                tok: Tok::Ident(text),
                line,
            });
            continue;
        }

        if c.is_ascii_digit() {
            let start_line = line;
            let (tok, next) = lex_number(&chars, i, &out.tokens);
            i = next;
            out.tokens.push(Token {
                tok,
                line: start_line,
            });
            continue;
        }

        if c == '"' {
            let start_line = line;
            i = skip_quoted(&chars, i + 1, '"', &mut line);
            out.tokens.push(Token {
                tok: Tok::Str,
                line: start_line,
            });
            continue;
        }

        if c == '\'' {
            // Lifetime (`'a` not closed by a quote) vs char literal (`'a'`,
            // `'\n'`, `'\''`).
            let is_lifetime = chars.get(i + 1).is_some_and(|c| is_ident_start(*c))
                && chars.get(i + 2) != Some(&'\'');
            if is_lifetime {
                i += 1;
                while i < chars.len() && chars.get(i).is_some_and(|c| is_ident_continue(*c)) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Lifetime,
                    line,
                });
            } else {
                let start_line = line;
                i = skip_quoted(&chars, i + 1, '\'', &mut line);
                out.tokens.push(Token {
                    tok: Tok::Char,
                    line: start_line,
                });
            }
            continue;
        }

        // Punctuation, longest match first.
        let mut matched = false;
        for p in PUNCTS {
            if src_matches(&chars, i, p) {
                // `.` before a digit is only a float start when it cannot be
                // a tuple-field access (no expression to the left).
                out.tokens.push(Token {
                    tok: Tok::Punct(p),
                    line,
                });
                i += p.chars().count();
                matched = true;
                break;
            }
        }
        if !matched {
            i += 1; // unknown byte: skip, stay robust
        }
    }
    out
}

fn src_matches(chars: &[char], i: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, pc)| chars.get(i + k) == Some(&pc))
}

fn looks_like_string_prefix(chars: &[char], i: usize) -> bool {
    // r", r#", br", b", b'…' is a byte char (handled as char, not here).
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
        return chars.get(j) == Some(&'"');
    }
    chars.get(j) == Some(&'"') && j > i
}

/// Skip a possibly raw, possibly byte string starting at the prefix.
fn skip_prefixed_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    let mut hashes = 0usize;
    let raw = chars.get(i) == Some(&'r');
    if raw {
        i += 1;
        while chars.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
    }
    i += 1; // opening quote
    if raw {
        // Scan for `"` followed by `hashes` hashes; no escapes in raw strings.
        while i < chars.len() {
            if chars.get(i) == Some(&'\n') {
                *line += 1;
            }
            if chars.get(i) == Some(&'"') {
                let closed = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                if closed {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
        i
    } else {
        skip_quoted(chars, i, '"', line)
    }
}

/// Skip to the closing `delim`, honouring backslash escapes. Returns the
/// index just past the delimiter.
fn skip_quoted(chars: &[char], mut i: usize, delim: char, line: &mut u32) -> usize {
    while i < chars.len() {
        match chars.get(i) {
            Some('\\') => i += 2,
            Some(c) if *c == delim => return i + 1,
            Some('\n') => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Lex a numeric literal starting at a digit. Decides int vs float the way
/// rustc does: a `.` continues the number only when followed by a digit or
/// by nothing identifier-like (so `1.0` is a float but `x.0` never reaches
/// here, and `0.wrapping_add(…)` stays an int followed by a method call).
fn lex_number(chars: &[char], mut i: usize, _prev: &[Token]) -> (Tok, usize) {
    let start = i;
    let mut is_float = false;

    // Radix prefixes.
    if chars.get(i) == Some(&'0')
        && matches!(chars.get(i + 1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
    {
        i += 2;
        while i < chars.len()
            && chars
                .get(i)
                .is_some_and(|c| c.is_alphanumeric() || *c == '_')
        {
            i += 1;
        }
        let text: String = chars.get(start..i).unwrap_or_default().iter().collect();
        return (Tok::Int(text), i);
    }

    while i < chars.len()
        && chars
            .get(i)
            .is_some_and(|c| c.is_ascii_digit() || *c == '_')
    {
        i += 1;
    }
    if chars.get(i) == Some(&'.') {
        let after = chars.get(i + 1);
        let continues = match after {
            Some(c) if c.is_ascii_digit() => true,
            // `1.` at end of expression (e.g. `1. ` or `1.)`) is a float;
            // `1.method()` / `1..n` are not.
            Some(c) if is_ident_start(*c) => false,
            Some('.') => false,
            _ => true,
        };
        if continues {
            is_float = true;
            i += 1;
            while i < chars.len()
                && chars
                    .get(i)
                    .is_some_and(|c| c.is_ascii_digit() || *c == '_')
            {
                i += 1;
            }
        }
    }
    // Exponent.
    if matches!(chars.get(i), Some('e' | 'E')) {
        let mut j = i + 1;
        if matches!(chars.get(j), Some('+' | '-')) {
            j += 1;
        }
        if chars.get(j).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            i = j;
            while i < chars.len()
                && chars
                    .get(i)
                    .is_some_and(|c| c.is_ascii_digit() || *c == '_')
            {
                i += 1;
            }
        }
    }
    // Type suffix (`u64`, `f64`, …) — `f` suffixes force float-ness.
    if chars.get(i).is_some_and(|c| is_ident_start(*c)) {
        let suffix_start = i;
        while i < chars.len() && chars.get(i).is_some_and(|c| is_ident_continue(*c)) {
            i += 1;
        }
        if chars.get(suffix_start) == Some(&'f') {
            is_float = true;
        }
    }
    let text: String = chars.get(start..i).unwrap_or_default().iter().collect();
    if is_float {
        (Tok::Float(text), i)
    } else {
        (Tok::Int(text), i)
    }
}

/// Remove test-only regions from a token stream: any item annotated
/// `#[cfg(test)]` or `#[test]` is dropped, brace-matched. The checks audit
/// shipping code; tests are free to `unwrap` and wall-clock all they like.
pub fn strip_test_regions(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attr(&tokens, i) {
            // Skip the attribute itself.
            i = skip_attr(&tokens, i);
            // Skip any further attributes on the same item.
            while matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct("#"))) {
                i = skip_attr(&tokens, i);
            }
            // Skip the annotated item: everything up to and including the
            // matching `{…}` block, or a `;` at depth zero (for
            // `#[cfg(test)] use …;` style items).
            let mut depth = 0i32;
            while i < tokens.len() {
                match tokens.get(i).map(|t| &t.tok) {
                    Some(Tok::Punct("{")) => {
                        depth += 1;
                        i += 1;
                    }
                    Some(Tok::Punct("}")) => {
                        depth -= 1;
                        i += 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    Some(Tok::Punct(";")) if depth == 0 => {
                        i += 1;
                        break;
                    }
                    Some(_) => i += 1,
                    None => break,
                }
            }
            continue;
        }
        if let Some(t) = tokens.get(i) {
            out.push(t.clone());
        }
        i += 1;
    }
    out
}

/// Is `tokens[i..]` the start of `#[cfg(test)]` or `#[test]`?
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    let tok = |k: usize| tokens.get(i + k).map(|t| &t.tok);
    if tok(0) != Some(&Tok::Punct("#")) || tok(1) != Some(&Tok::Punct("[")) {
        return false;
    }
    match tok(2) {
        Some(Tok::Ident(name)) if name == "test" => true,
        Some(Tok::Ident(name)) if name == "cfg" => {
            tok(3) == Some(&Tok::Punct("("))
                && matches!(tok(4), Some(Tok::Ident(arg)) if arg == "test")
        }
        _ => false,
    }
}

/// Skip a `#[…]` attribute, returning the index just past the closing `]`.
fn skip_attr(tokens: &[Token], mut i: usize) -> usize {
    debug_assert!(matches!(
        tokens.get(i).map(|t| &t.tok),
        Some(Tok::Punct("#"))
    ));
    i += 1; // '#'
    let mut depth = 0i32;
    while i < tokens.len() {
        match tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Punct("[")) => depth += 1,
            Some(Tok::Punct("]")) => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn float_vs_tuple_access() {
        let lexed = lex("let a = x.0 + 1.0;");
        let kinds: Vec<&Tok> = lexed.tokens.iter().map(|t| &t.tok).collect();
        assert!(kinds.contains(&&Tok::Int("0".to_string())), "{kinds:?}");
        assert!(kinds.contains(&&Tok::Float("1.0".to_string())), "{kinds:?}");
    }

    #[test]
    fn int_method_call_is_not_float() {
        let lexed = lex("0.wrapping_add(1)");
        assert_eq!(
            lexed.tokens.first().map(|t| t.tok.clone()),
            Some(Tok::Int("0".to_string()))
        );
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        assert!(idents("\"x.unwrap()\" // .unwrap()\n/* .unwrap() */ real")
            .contains(&"real".to_string()));
        assert!(!idents("\"unwrap\"").contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_skip_quotes() {
        let lexed = lex(r###"let s = r#"a "quoted" b"#; tail"###);
        assert!(idents(r###"let s = r#"a "quoted" b"#; tail"###).contains(&"tail".to_string()));
        assert_eq!(lexed.tokens.iter().filter(|t| t.tok == Tok::Str).count(), 1);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.tok == Tok::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count(),
            1
        );
    }

    #[test]
    fn waiver_comments_are_collected() {
        let lexed = lex("// xtask-allow: determinism -- timing only\nlet t = 1;\n");
        assert_eq!(lexed.waivers, vec![(1, "determinism".to_string())]);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let lexed = lex("let s = \"a\nb\nc\";\nlet t = 9;");
        let nine = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Int("9".to_string()))
            .map(|t| t.line);
        assert_eq!(nine, Some(4));
    }

    #[test]
    fn test_regions_are_stripped() {
        let src =
            "fn keep() {} #[cfg(test)] mod tests { fn gone() { x.unwrap(); } } fn also_kept() {}";
        let toks = strip_test_regions(lex(src).tokens);
        let names: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"keep".to_string()));
        assert!(names.contains(&"also_kept".to_string()));
        assert!(!names.contains(&"gone".to_string()));
        assert!(!names.contains(&"unwrap".to_string()));
    }

    #[test]
    fn test_attr_on_fn_is_stripped() {
        let src = "#[test]\nfn probe() { body(); }\nfn stays() {}";
        let toks = strip_test_regions(lex(src).tokens);
        let names: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(!names.contains(&"probe".to_string()));
        assert!(names.contains(&"stays".to_string()));
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        let names = idents("fn r#type(r#match: u32) -> u32 { r#match }");
        assert_eq!(names, vec!["fn", "type", "match", "u32", "u32", "match"]);
        assert!(!names.contains(&"r".to_string()));
    }

    #[test]
    fn raw_identifier_does_not_swallow_raw_strings() {
        let lexed = lex(r###"let s = r#"raw"#; r#fn"###);
        assert_eq!(lexed.tokens.iter().filter(|t| t.tok == Tok::Str).count(), 1);
        assert!(idents(r###"let s = r#"raw"#; r#fn"###).contains(&"fn".to_string()));
    }

    #[test]
    fn byte_char_is_a_single_char_token() {
        for src in ["b'x'", "b'\\''", "b'\\n'"] {
            let lexed = lex(src);
            let toks: Vec<&Tok> = lexed.tokens.iter().map(|t| &t.tok).collect();
            assert_eq!(toks, vec![&Tok::Char], "{src}");
        }
        // A following token is not eaten by the literal.
        assert!(idents("b'x' tail").contains(&"tail".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_single_tokens() {
        for src in ["b\"bytes\"", "br#\"raw bytes\"#", "br\"plain\""] {
            let lexed = lex(src);
            assert_eq!(
                lexed.tokens.iter().filter(|t| t.tok == Tok::Str).count(),
                1,
                "{src}"
            );
            assert!(idents(src).is_empty(), "{src}");
        }
    }

    #[test]
    fn nested_block_comments_hide_everything() {
        let names = idents("/* outer /* inner .unwrap() */ still comment */ real");
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn nested_block_comments_keep_line_numbers() {
        let lexed = lex("/* a\n/* b\n*/\nc */\nlet t = 9;");
        let nine = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Int("9".to_string()))
            .map(|t| t.line);
        assert_eq!(nine, Some(5));
    }

    #[test]
    fn doc_comments_hide_their_text() {
        let names = idents("/// call .unwrap() freely\n//! inner docs panic!\nfn real() {}");
        assert_eq!(names, vec!["fn", "real"]);
        let block = idents("/** block doc .unwrap() */ fn real() {}");
        assert_eq!(block, vec!["fn", "real"]);
    }

    #[test]
    fn static_and_anonymous_lifetimes() {
        let lexed = lex("fn f(x: &'static str, y: &'_ u32) -> char { '\\n' }");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.tok == Tok::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count(),
            1
        );
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers() {
        let lexed = lex("let s = r#\"a\nb\nc\"#;\nlet t = 9;");
        let nine = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Int("9".to_string()))
            .map(|t| t.line);
        assert_eq!(nine, Some(4));
    }

    #[test]
    fn exponent_and_suffix_literals() {
        let lexed = lex("1e9 2.5e-3 7u64 3f64");
        let toks: Vec<&Tok> = lexed.tokens.iter().map(|t| &t.tok).collect();
        assert_eq!(
            toks,
            vec![
                &Tok::Float("1e9".to_string()),
                &Tok::Float("2.5e-3".to_string()),
                &Tok::Int("7u64".to_string()),
                &Tok::Float("3f64".to_string()),
            ]
        );
    }
}
