//! Structural validation of the `activedr-obs` sink files, run by
//! `cargo xtask smoke` against a real telemetry-enabled Tiny replay.
//!
//! The obs crate is dependency-free and hand-rolls its JSON, so nothing
//! in its own test suite proves the emitted bytes parse with an actual
//! JSON reader. This module closes that loop: parse `telemetry.json`
//! (schema v2), the trace-event file, the streamed JSONL event log, and
//! the `BENCH_*.json` watchdog documents with `serde_json` and check
//! the schema the docs promise — required keys, non-negative counters,
//! a well-formed span tree, histogram bucket accounting, series-track
//! rollup invariants with **exact** counter reconciliation, JSONL line
//! framing, and recomputed bench summary reductions.

use serde_json::Value;

/// Validate a `telemetry.json` document (schema version 2). Returns
/// every problem found, not just the first.
pub fn validate_telemetry(text: &str) -> Result<(), Vec<String>> {
    let doc: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("telemetry.json does not parse: {e:?}")]),
    };
    let mut problems = Vec::new();

    if doc.get("version").and_then(Value::as_u64) != Some(2) {
        problems.push("\"version\" missing or not 2".to_string());
    }
    for key in [
        "counters",
        "gauges",
        "histograms",
        "spans",
        "flight",
        "series",
        "stream",
        "dropped",
    ] {
        if doc.get(key).is_none() {
            problems.push(format!("required key {key:?} missing"));
        }
    }

    if let Some(Value::Map(counters)) = doc.get("counters") {
        for (name, value) in counters {
            if value.as_u64().is_none() {
                problems.push(format!("counter {name:?} is not a non-negative integer"));
            }
        }
    } else if doc.get("counters").is_some() {
        problems.push("\"counters\" is not an object".to_string());
    }

    if let Some(Value::Map(gauges)) = doc.get("gauges") {
        for (name, value) in gauges {
            if value.as_i64().is_none() {
                problems.push(format!("gauge {name:?} is not an integer"));
            }
        }
    } else if doc.get("gauges").is_some() {
        problems.push("\"gauges\" is not an object".to_string());
    }

    if let Some(hists) = doc.get("histograms").and_then(Value::as_array) {
        for h in hists {
            validate_histogram(h, &mut problems);
        }
    } else if doc.get("histograms").is_some() {
        problems.push("\"histograms\" is not an array".to_string());
    }

    if let Some(spans) = doc.get("spans").and_then(Value::as_array) {
        for s in spans {
            validate_span(s, 0, &mut problems);
        }
    } else if doc.get("spans").is_some() {
        problems.push("\"spans\" is not an array".to_string());
    }

    if let Some(flight) = doc.get("flight").and_then(Value::as_array) {
        for (i, e) in flight.iter().enumerate() {
            if e.get("seq").and_then(Value::as_u64).is_none() {
                problems.push(format!("flight[{i}] has no \"seq\""));
            }
            if e.get("day").and_then(Value::as_i64).is_none() {
                problems.push(format!("flight[{i}] has no \"day\""));
            }
            if e.get("kind").and_then(Value::as_str).is_none() {
                problems.push(format!("flight[{i}] has no \"kind\""));
            }
            if e.get("detail").and_then(Value::as_str).is_none() {
                problems.push(format!("flight[{i}] has no \"detail\""));
            }
        }
    } else if doc.get("flight").is_some() {
        problems.push("\"flight\" is not an array".to_string());
    }

    if let Some(series) = doc.get("series") {
        for track_name in ["day", "trigger"] {
            match series.get(track_name) {
                Some(track) => {
                    validate_series_track(track_name, track, doc.get("counters"), &mut problems);
                }
                None => problems.push(format!("\"series\" has no {track_name:?} track")),
            }
        }
    }

    if let Some(stream) = doc.get("stream") {
        for key in ["lines", "write_errors"] {
            if stream.get(key).and_then(Value::as_u64).is_none() {
                problems.push(format!("\"stream\" has no numeric {key:?}"));
            }
        }
    }

    if let Some(dropped) = doc.get("dropped") {
        for key in ["span_instances", "flight_events"] {
            if dropped.get(key).and_then(Value::as_u64).is_none() {
                problems.push(format!("\"dropped\" has no numeric {key:?}"));
            }
        }
    }

    // Cross-counter sanity: a miss is a failed read, so misses can never
    // outnumber reads in a replay.
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_u64)
    };
    if let (Some(reads), Some(misses)) = (counter("replay.reads"), counter("replay.misses")) {
        if misses > reads {
            problems.push(format!(
                "replay.misses ({misses}) exceeds replay.reads ({reads})"
            ));
        }
    }

    // Durability counters (non-zero only on durable replays): every WAL
    // frame carries a 17-byte header+trailer, replayed records are
    // impossible without a recovery, and any WAL activity implies at
    // least the cold-start checkpoint was cut.
    if let (Some(appends), Some(wal_bytes)) = (counter("wal.appends"), counter("wal.bytes")) {
        if wal_bytes < appends.saturating_mul(17) {
            problems.push(format!(
                "wal.bytes ({wal_bytes}) is below the 17-byte frame floor for \
                 wal.appends ({appends})"
            ));
        }
    }
    if let (Some(replayed), Some(recoveries)) = (
        counter("recovery.replayed_records"),
        counter("recovery.recoveries"),
    ) {
        if replayed > 0 && recoveries == 0 {
            problems.push(format!(
                "recovery.replayed_records ({replayed}) with recovery.recoveries 0"
            ));
        }
    }
    if let (Some(appends), Some(checkpoints)) =
        (counter("wal.appends"), counter("checkpoint.writes"))
    {
        if appends > 0 && checkpoints == 0 {
            problems.push(format!(
                "wal.appends ({appends}) with checkpoint.writes 0 — even a cold \
                 start cuts checkpoint 0"
            ));
        }
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

fn validate_histogram(h: &Value, problems: &mut Vec<String>) {
    let name = h
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("<unnamed>")
        .to_string();
    let bounds = h.get("bounds").and_then(Value::as_array);
    let counts = h.get("counts").and_then(Value::as_array);
    match (bounds, counts) {
        (Some(bounds), Some(counts)) => {
            // One overflow bucket past the last bound.
            if counts.len() != bounds.len() + 1 {
                problems.push(format!(
                    "histogram {name:?}: {} counts for {} bounds (want bounds + 1)",
                    counts.len(),
                    bounds.len()
                ));
            }
            let total: u64 = counts.iter().filter_map(Value::as_u64).sum();
            if h.get("count").and_then(Value::as_u64) != Some(total) {
                problems.push(format!(
                    "histogram {name:?}: \"count\" disagrees with the bucket sum {total}"
                ));
            }
        }
        _ => problems.push(format!("histogram {name:?}: missing bounds/counts arrays")),
    }
    if h.get("sum").and_then(Value::as_u64).is_none() {
        problems.push(format!("histogram {name:?}: missing numeric \"sum\""));
    }
}

fn validate_span(span: &Value, depth: usize, problems: &mut Vec<String>) {
    if depth > 64 {
        problems.push("span tree deeper than 64 levels".to_string());
        return;
    }
    let name = span
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("<unnamed>")
        .to_string();
    if span.get("name").and_then(Value::as_str).is_none() {
        problems.push(format!("span at depth {depth} has no \"name\""));
    }
    match span.get("count").and_then(Value::as_u64) {
        Some(0) => problems.push(format!("span {name:?} recorded with count 0")),
        Some(_) => {}
        None => problems.push(format!("span {name:?} has no numeric \"count\"")),
    }
    if span.get("total_micros").and_then(Value::as_u64).is_none() {
        problems.push(format!("span {name:?} has no numeric \"total_micros\""));
    }
    match span.get("children").and_then(Value::as_array) {
        Some(children) => {
            for c in children {
                validate_span(c, depth + 1, problems);
            }
        }
        None => problems.push(format!("span {name:?} has no \"children\" array")),
    }
}

/// Validate one `series.day` / `series.trigger` track: rollup-ring
/// invariants (power-of-two capacity and stride, contiguous
/// non-overlapping windows, at most one trailing incomplete point,
/// column vectors aligned to the name lists) plus the reconciliation
/// invariant — every counter column must sum *exactly* to the
/// end-of-run cumulative counter, because the engine closes each track
/// with a final sample.
fn validate_series_track(
    label: &str,
    track: &Value,
    top_counters: Option<&Value>,
    problems: &mut Vec<String>,
) {
    let raw_samples = track.get("raw_samples").and_then(Value::as_u64);
    if raw_samples.is_none() {
        problems.push(format!(
            "series track {label:?} has no numeric \"raw_samples\""
        ));
    }
    let name_list = |key: &str| -> Option<Vec<&str>> {
        let list = track.get(key).and_then(Value::as_array)?;
        let names: Vec<&str> = list.iter().filter_map(Value::as_str).collect();
        (names.len() == list.len()).then_some(names)
    };
    let counter_names = name_list("counters");
    let gauge_names = name_list("gauges");
    let hist_names = name_list("histograms");
    for (key, names) in [
        ("counters", &counter_names),
        ("gauges", &gauge_names),
        ("histograms", &hist_names),
    ] {
        if names.is_none() {
            problems.push(format!(
                "series track {label:?} has no {key:?} string array"
            ));
        }
    }
    let points = track.get("points").and_then(Value::as_array);
    if points.is_none() {
        problems.push(format!("series track {label:?} has no \"points\" array"));
    }

    // An idle track (series disabled, or nothing sampled) is legal and
    // exempt from the ring invariants below.
    if raw_samples == Some(0) {
        if points.is_some_and(|p| !p.is_empty()) {
            problems.push(format!(
                "series track {label:?} has points but \"raw_samples\" is 0"
            ));
        }
        return;
    }

    for key in ["capacity", "stride"] {
        match track.get(key).and_then(Value::as_u64) {
            Some(v) if v.is_power_of_two() && (key == "stride" || v >= 4) => {}
            Some(v) => problems.push(format!(
                "series track {label:?}: {key} {v} is not a power of two (capacity must be >= 4)"
            )),
            None => problems.push(format!("series track {label:?} has no numeric {key:?}")),
        }
    }

    let Some(points) = points else { return };
    let mut prev_end: Option<i64> = None;
    for (i, p) in points.iter().enumerate() {
        match (
            p.get("start_day").and_then(Value::as_i64),
            p.get("end_day").and_then(Value::as_i64),
        ) {
            (Some(s), Some(e)) => {
                if s > e {
                    problems.push(format!(
                        "series track {label:?}: point {i} has start_day {s} after end_day {e}"
                    ));
                }
                if prev_end.is_some_and(|pe| s <= pe) {
                    problems.push(format!(
                        "series track {label:?}: point {i} overlaps the previous window"
                    ));
                }
                prev_end = Some(e);
            }
            _ => problems.push(format!(
                "series track {label:?}: point {i} missing start_day/end_day"
            )),
        }
        if p.get("windows")
            .and_then(Value::as_u64)
            .is_none_or(|w| w < 1)
        {
            problems.push(format!(
                "series track {label:?}: point {i} has no positive \"windows\""
            ));
        }
        match p.get("complete") {
            Some(Value::Bool(complete)) => {
                if !complete && i + 1 != points.len() {
                    problems.push(format!(
                        "series track {label:?}: incomplete point {i} is not last"
                    ));
                }
            }
            _ => problems.push(format!(
                "series track {label:?}: point {i} has no boolean \"complete\""
            )),
        }
        // Column vectors are padded to the track's name lists.
        let cols = [
            ("counters", counter_names.as_ref().map(Vec::len)),
            ("gauges", gauge_names.as_ref().map(Vec::len)),
            ("p50", hist_names.as_ref().map(Vec::len)),
            ("p99", hist_names.as_ref().map(Vec::len)),
        ];
        for (key, want) in cols {
            let Some(want) = want else { continue };
            match p.get(key).and_then(Value::as_array) {
                Some(values) if values.len() == want => {}
                Some(values) => problems.push(format!(
                    "series track {label:?}: point {i} has {} {key} column(s), want {want}",
                    values.len()
                )),
                None => problems.push(format!(
                    "series track {label:?}: point {i} has no {key:?} array"
                )),
            }
        }
    }

    // Exact reconciliation: sum of each counter column over all points
    // (including the trailing partial one) == cumulative counter.
    if let (Some(counter_names), Some(top)) = (&counter_names, top_counters) {
        for (idx, name) in counter_names.iter().enumerate() {
            let Some(expect) = top.get(name).and_then(Value::as_u64) else {
                problems.push(format!(
                    "series track {label:?}: counter {name:?} is not a top-level counter"
                ));
                continue;
            };
            let sum: u64 = points
                .iter()
                .map(|p| {
                    p.get("counters")
                        .and_then(Value::as_array)
                        .and_then(|c| c.get(idx))
                        .and_then(Value::as_u64)
                        .unwrap_or(0)
                })
                .sum();
            if sum != expect {
                problems.push(format!(
                    "series track {label:?}: counter {name:?} sums to {sum} across points \
                     but the cumulative counter is {expect} (reconciliation drift)"
                ));
            }
        }
    }
}

/// Validate a streamed telemetry JSONL log (a *complete* file: the
/// truncation-recovery contract is exercised separately by the obs
/// tests). Line framing: one meta line first, every line
/// `\n`-terminated, event lines are `day`/`trigger`/`final` with
/// delta-counter and gauge objects, day stamps never decrease, and a
/// `final` line closes the log.
pub fn validate_jsonl(text: &str) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    if text.is_empty() {
        return Err(vec!["stream log is empty".to_string()]);
    }
    if !text.ends_with('\n') {
        problems.push("stream log does not end with a newline".to_string());
    }
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    let mut last_day: Option<i64> = None;
    let mut saw_final = false;
    for (i, line) in lines.iter().enumerate() {
        let event: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                problems.push(format!("line {i} does not parse: {e:?}"));
                continue;
            }
        };
        let kind = event.get("type").and_then(Value::as_str).unwrap_or("");
        if i == 0 {
            if kind != "meta" {
                problems.push("first line is not a \"meta\" line".to_string());
            }
            if event.get("version").and_then(Value::as_u64) != Some(1) {
                problems.push("meta line \"version\" missing or not 1".to_string());
            }
            if event
                .get("every_days")
                .and_then(Value::as_u64)
                .is_none_or(|d| d < 1)
            {
                problems.push("meta line has no positive \"every_days\"".to_string());
            }
            continue;
        }
        if !matches!(kind, "day" | "trigger" | "final") {
            problems.push(format!("line {i} has unknown type {kind:?}"));
            continue;
        }
        saw_final |= kind == "final";
        match event.get("day").and_then(Value::as_i64) {
            Some(day) => {
                if last_day.is_some_and(|prev| day < prev) {
                    problems.push(format!("line {i}: day {day} goes backwards"));
                }
                last_day = Some(day);
            }
            None => problems.push(format!("line {i} has no integer \"day\"")),
        }
        if let Some(Value::Map(counters)) = event.get("counters") {
            for (name, value) in counters {
                if value.as_u64().is_none() {
                    problems.push(format!(
                        "line {i}: counter delta {name:?} is not a non-negative integer"
                    ));
                }
            }
        } else {
            problems.push(format!("line {i} has no \"counters\" object"));
        }
        if let Some(Value::Map(gauges)) = event.get("gauges") {
            for (name, value) in gauges {
                if value.as_i64().is_none() {
                    problems.push(format!("line {i}: gauge {name:?} is not an integer"));
                }
            }
        } else {
            problems.push(format!("line {i} has no \"gauges\" object"));
        }
    }
    if lines.len() < 2 {
        problems.push("stream log has no event lines after the meta line".to_string());
    } else if !saw_final {
        problems.push("stream log has no \"final\" line".to_string());
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Validate a `BENCH_*.json` document (bench schema version 2, the
/// shared `BenchEmitter` shape consumed by `cargo xtask perf`). Beyond
/// field shapes, this *recomputes* each declared summary reduction over
/// its raw samples and fails on drift, so a bench cannot report a
/// summary its own samples do not support.
pub fn validate_bench(text: &str) -> Result<(), Vec<String>> {
    let doc: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("bench document does not parse: {e:?}")]),
    };
    let mut problems = Vec::new();

    if doc.get("bench_schema").and_then(Value::as_u64) != Some(2) {
        problems.push("\"bench_schema\" missing or not 2".to_string());
    }
    if doc
        .get("name")
        .and_then(Value::as_str)
        .is_none_or(str::is_empty)
    {
        problems.push("\"name\" missing or empty".to_string());
    }
    match doc.get("env") {
        Some(env) => {
            for key in ["os", "arch"] {
                if env.get(key).and_then(Value::as_str).is_none() {
                    problems.push(format!("\"env\" has no string {key:?}"));
                }
            }
            if env.get("cpus").and_then(Value::as_u64).is_none() {
                problems.push("\"env\" has no numeric \"cpus\"".to_string());
            }
        }
        None => problems.push("required key \"env\" missing".to_string()),
    }
    if doc
        .get("min_of")
        .and_then(Value::as_u64)
        .is_none_or(|n| n < 1)
    {
        problems.push("\"min_of\" missing or zero".to_string());
    }

    let metrics = doc.get("metrics").and_then(Value::as_array);
    match metrics {
        Some(metrics) => {
            for (i, m) in metrics.iter().enumerate() {
                if m.get("name")
                    .and_then(Value::as_str)
                    .is_none_or(str::is_empty)
                {
                    problems.push(format!("metric {i} has no \"name\""));
                }
                match m.get("kind").and_then(Value::as_str) {
                    Some("ratio" | "time" | "info") => {}
                    other => problems.push(format!("metric {i} has bad kind {other:?}")),
                }
                match m.get("direction").and_then(Value::as_str) {
                    Some("higher_better" | "lower_better" | "none") => {}
                    other => problems.push(format!("metric {i} has bad direction {other:?}")),
                }
                if !m
                    .get("value")
                    .and_then(Value::as_f64)
                    .is_some_and(f64::is_finite)
                {
                    problems.push(format!("metric {i} has no finite \"value\""));
                }
                if m.get("unit").and_then(Value::as_str).is_none() {
                    problems.push(format!("metric {i} has no \"unit\""));
                }
            }
        }
        None => problems.push("required key \"metrics\" missing".to_string()),
    }

    match doc.get("series").and_then(Value::as_array) {
        Some(series) => {
            for (i, s) in series.iter().enumerate() {
                let name = s.get("name").and_then(Value::as_str).unwrap_or("<unnamed>");
                if s.get("name").and_then(Value::as_str).is_none() {
                    problems.push(format!("series {i} has no \"name\""));
                }
                if s.get("unit").and_then(Value::as_str).is_none() {
                    problems.push(format!("series {name:?} has no \"unit\""));
                }
                let index = s.get("index").and_then(Value::as_array);
                let samples = s.get("samples").and_then(Value::as_array);
                match (index, samples) {
                    (Some(index), Some(samples)) => {
                        if index.len() != samples.len() {
                            problems.push(format!(
                                "series {name:?}: {} index value(s) for {} sample(s)",
                                index.len(),
                                samples.len()
                            ));
                        }
                        if samples.is_empty() {
                            problems.push(format!("series {name:?} has no samples"));
                        }
                        validate_bench_summary(name, s, samples, metrics, &mut problems);
                    }
                    _ => problems.push(format!("series {name:?}: missing index/samples arrays")),
                }
            }
        }
        None => problems.push("required key \"series\" missing".to_string()),
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Recompute the declared `reduce` of a bench series over its raw
/// samples and require it to equal the named summary metric's value.
fn validate_bench_summary(
    name: &str,
    series: &Value,
    samples: &[Value],
    metrics: Option<&Vec<Value>>,
    problems: &mut Vec<String>,
) {
    let Some(summary) = series.get("summary") else {
        return;
    };
    let Some(metric_name) = summary.as_str() else {
        problems.push(format!("series {name:?}: \"summary\" is not a string"));
        return;
    };
    match series.get("reduce").and_then(Value::as_str) {
        Some("min") => {}
        other => {
            problems.push(format!("series {name:?} has unknown reduce {other:?}"));
            return;
        }
    }
    let Some(metric_value) = metrics.and_then(|ms| {
        ms.iter()
            .find(|m| m.get("name").and_then(Value::as_str) == Some(metric_name))
            .and_then(|m| m.get("value"))
            .and_then(Value::as_f64)
    }) else {
        problems.push(format!(
            "series {name:?}: summary metric {metric_name:?} does not exist"
        ));
        return;
    };
    let recomputed = samples
        .iter()
        .filter_map(Value::as_f64)
        .fold(f64::MAX, f64::min);
    // Values round-trip through shortest-representation float text, so
    // equality is exact up to a vanishing relative epsilon.
    let drift = (recomputed - metric_value).abs();
    if drift > metric_value.abs().max(1.0) * 1e-9 {
        problems.push(format!(
            "series {name:?}: series-reconciliation drift — min(samples) is {recomputed} \
             but summary metric {metric_name:?} reports {metric_value}"
        ));
    }
}

/// CRC32 (IEEE, reflected, poly `0xEDB8_8320`) — deliberately
/// reimplemented here rather than imported from `activedr-fs`, so the
/// WAL validator checks the *documented* checksum, not whatever the
/// writer happens to compute.
fn crc32_ieee(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Validate a complete `wal.log` image against the on-disk contract of
/// DESIGN.md §11, reimplemented from the spec (length-prefixed frames
/// `[len u32 LE][seq u64 LE][kind u8][payload][crc32 u32 LE]`, CRC over
/// `seq ++ kind ++ payload`, sequence numbers strictly contiguous from
/// the first frame, JSON-array batch payloads, empty flush marks) so
/// drift between the writer and the documented format cannot
/// self-certify. A cleanly shut down replay must leave a fully
/// well-formed log — torn tails are legal only after a crash, and
/// `cargo xtask smoke` runs this against a replay that exited normally.
pub fn validate_wal(bytes: &[u8]) -> Result<(), Vec<String>> {
    const MAX_PAYLOAD: u32 = 16 << 20;
    let mut problems = Vec::new();
    if bytes.is_empty() {
        return Err(vec!["WAL image is empty".to_string()]);
    }
    let mut offset = 0usize;
    let mut prev_seq: Option<u64> = None;
    while offset < bytes.len() {
        let Some(len_bytes) = bytes.get(offset..offset.saturating_add(4)) else {
            problems.push(format!(
                "byte {offset}: truncated length prefix ({} byte(s) left)",
                bytes.len().saturating_sub(offset)
            ));
            break;
        };
        let mut len_arr = [0u8; 4];
        for (d, &s) in len_arr.iter_mut().zip(len_bytes.iter()) {
            *d = s;
        }
        let len = u32::from_le_bytes(len_arr);
        if len > MAX_PAYLOAD {
            problems.push(format!(
                "byte {offset}: length prefix {len} exceeds the {MAX_PAYLOAD}-byte ceiling"
            ));
            break;
        }
        let Ok(body_len) = usize::try_from(len) else {
            problems.push(format!("byte {offset}: length prefix does not fit"));
            break;
        };
        let covered_start = offset.saturating_add(4);
        let covered_end = covered_start.saturating_add(9).saturating_add(body_len);
        let crc_end = covered_end.saturating_add(4);
        let (Some(covered), Some(crc_bytes)) = (
            bytes.get(covered_start..covered_end),
            bytes.get(covered_end..crc_end),
        ) else {
            problems.push(format!(
                "byte {offset}: truncated frame (want {} byte(s), {} left)",
                crc_end.saturating_sub(offset),
                bytes.len().saturating_sub(offset)
            ));
            break;
        };
        let mut crc_arr = [0u8; 4];
        for (d, &s) in crc_arr.iter_mut().zip(crc_bytes.iter()) {
            *d = s;
        }
        if crc32_ieee(covered) != u32::from_le_bytes(crc_arr) {
            problems.push(format!("byte {offset}: frame checksum mismatch"));
            break;
        }
        let mut seq_arr = [0u8; 8];
        for (d, &s) in seq_arr.iter_mut().zip(covered.iter()) {
            *d = s;
        }
        let seq = u64::from_le_bytes(seq_arr);
        if seq == 0 {
            problems.push(format!(
                "byte {offset}: sequence number 0 (they start at 1)"
            ));
        }
        if let Some(prev) = prev_seq {
            if seq != prev.saturating_add(1) {
                problems.push(format!(
                    "byte {offset}: sequence {seq} after {prev} (want contiguous)"
                ));
            }
        }
        prev_seq = Some(seq);
        let kind = covered.get(8).copied();
        let body = covered.get(9..).unwrap_or_default();
        match kind {
            Some(0) => {
                let parsed: Result<Value, _> = serde_json::from_slice(body);
                if !parsed.as_ref().is_ok_and(|v| v.as_array().is_some()) {
                    problems.push(format!("byte {offset}: batch payload is not a JSON array"));
                }
            }
            Some(1) => {
                if !body.is_empty() {
                    problems.push(format!(
                        "byte {offset}: flush mark carries a {}-byte payload",
                        body.len()
                    ));
                }
            }
            other => problems.push(format!("byte {offset}: unknown record kind {other:?}")),
        }
        offset = crc_end;
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Validate a chrome trace-event export: an array of complete (`"X"`)
/// events with microsecond timestamps and durations.
pub fn validate_trace(text: &str) -> Result<(), Vec<String>> {
    let doc: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("trace file does not parse: {e:?}")]),
    };
    let mut problems = Vec::new();
    match doc.as_array() {
        Some(events) => {
            for (i, e) in events.iter().enumerate() {
                if e.get("name").and_then(Value::as_str).is_none() {
                    problems.push(format!("trace event {i} has no \"name\""));
                }
                if e.get("ph").and_then(Value::as_str) != Some("X") {
                    problems.push(format!("trace event {i} is not a complete (\"X\") event"));
                }
                for key in ["ts", "dur"] {
                    if e.get(key).and_then(Value::as_u64).is_none() {
                        problems.push(format!("trace event {i} has no numeric {key:?}"));
                    }
                }
            }
        }
        None => problems.push("trace file is not a JSON array".to_string()),
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"version":2,
        "counters":{"replay.reads":10,"replay.misses":3},
        "gauges":{"fs.final_files":7},
        "histograms":[{"name":"h","bounds":[10,100],"counts":[1,2,0],"count":3,"sum":42}],
        "spans":[{"name":"run","count":1,"total_micros":5,
                  "children":[{"name":"day","count":2,"total_micros":4,"children":[]}]}],
        "flight":[{"seq":0,"day":-3,"kind":"trigger","detail":"x"}],
        "series":{"day":{"capacity":4,"stride":1,"rollups":0,"raw_samples":2,
            "counters":["replay.reads","replay.misses"],"gauges":["fs.final_files"],
            "histograms":["h"],
            "points":[
              {"start_day":0,"end_day":0,"windows":1,"complete":true,
               "counters":[4,1],"gauges":[7],"p50":[10],"p99":[100]},
              {"start_day":1,"end_day":1,"windows":1,"complete":false,
               "counters":[6,2],"gauges":[7],"p50":[0],"p99":[0]}]},
          "trigger":{"capacity":4,"stride":1,"rollups":0,"raw_samples":0,
            "counters":[],"gauges":[],"histograms":[],"points":[]}},
        "stream":{"lines":5,"write_errors":0},
        "dropped":{"span_instances":0,"flight_events":0}}"#;

    #[test]
    fn accepts_a_well_formed_document() {
        assert_eq!(validate_telemetry(GOOD), Ok(()));
    }

    #[test]
    fn rejects_missing_keys_and_bad_counters() {
        let errs = validate_telemetry(r#"{"version":1,"counters":{"x":-1}}"#)
            .expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("version")));
        assert!(errs.iter().any(|e| e.contains("\"x\"")));
        assert!(errs.iter().any(|e| e.contains("spans")));
        assert!(errs.iter().any(|e| e.contains("series")));
        assert!(errs.iter().any(|e| e.contains("stream")));
    }

    #[test]
    fn rejects_series_counter_reconciliation_drift() {
        // Shave one read off the second day point: 4 + 5 != 10.
        let doc = GOOD.replace("\"counters\":[6,2]", "\"counters\":[5,2]");
        let errs = validate_telemetry(&doc).expect_err("must be rejected");
        assert!(errs
            .iter()
            .any(|e| e.contains("reconciliation drift") && e.contains("replay.reads")));
    }

    #[test]
    fn rejects_broken_series_ring_invariants() {
        let doc = GOOD
            .replace(
                "\"capacity\":4,\"stride\":1,\"rollups\":0,\"raw_samples\":2",
                "\"capacity\":3,\"stride\":5,\"rollups\":0,\"raw_samples\":2",
            )
            .replace(
                "{\"start_day\":0,\"end_day\":0,\"windows\":1,\"complete\":true",
                "{\"start_day\":0,\"end_day\":0,\"windows\":1,\"complete\":false",
            );
        let errs = validate_telemetry(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("capacity 3")));
        assert!(errs.iter().any(|e| e.contains("stride 5")));
        assert!(errs
            .iter()
            .any(|e| e.contains("incomplete point 0 is not last")));
    }

    #[test]
    fn rejects_overlapping_and_misaligned_series_points() {
        let doc = GOOD
            .replace(
                "\"start_day\":1,\"end_day\":1",
                "\"start_day\":0,\"end_day\":1",
            )
            .replace(
                "\"counters\":[4,1],\"gauges\":[7]",
                "\"counters\":[4],\"gauges\":[7]",
            );
        let errs = validate_telemetry(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("overlaps")));
        assert!(errs
            .iter()
            .any(|e| e.contains("1 counters column(s), want 2")));
    }

    #[test]
    fn rejects_bucket_miscounts_and_zero_count_spans() {
        let doc = GOOD
            .replace(
                "\"counts\":[1,2,0],\"count\":3",
                "\"counts\":[1,2],\"count\":3",
            )
            .replace(
                "\"name\":\"day\",\"count\":2",
                "\"name\":\"day\",\"count\":0",
            );
        let errs = validate_telemetry(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("bounds + 1")));
        assert!(errs.iter().any(|e| e.contains("count 0")));
    }

    #[test]
    fn rejects_misses_exceeding_reads() {
        let doc = GOOD.replace("\"replay.misses\":3", "\"replay.misses\":11");
        let errs = validate_telemetry(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("exceeds replay.reads")));
    }

    #[test]
    fn rejects_broken_durability_counter_invariants() {
        // Two WAL appends cannot fit in 10 bytes; replayed records with
        // no recovery and appends with no checkpoint are both impossible.
        let doc = GOOD.replace(
            "\"replay.misses\":3",
            "\"replay.misses\":3,\"wal.appends\":2,\"wal.bytes\":10,\
             \"recovery.replayed_records\":4,\"recovery.recoveries\":0,\
             \"checkpoint.writes\":0",
        );
        let errs = validate_telemetry(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("17-byte frame floor")));
        assert!(errs.iter().any(|e| e.contains("recovery.recoveries 0")));
        assert!(errs.iter().any(|e| e.contains("checkpoint.writes 0")));

        // The same counters in a consistent configuration pass.
        let doc = GOOD.replace(
            "\"replay.misses\":3",
            "\"replay.misses\":3,\"wal.appends\":2,\"wal.bytes\":64,\
             \"recovery.replayed_records\":4,\"recovery.recoveries\":1,\
             \"checkpoint.writes\":1",
        );
        assert_eq!(validate_telemetry(&doc), Ok(()));
    }

    /// Hand-rolled WAL frame for the validator tests — built from the
    /// documented layout, not the fs crate's encoder.
    fn wal_frame(seq: u64, kind: u8, body: &[u8]) -> Vec<u8> {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::try_from(body.len()).expect("len").to_le_bytes());
        let mut covered = Vec::new();
        covered.extend_from_slice(&seq.to_le_bytes());
        covered.push(kind);
        covered.extend_from_slice(body);
        frame.extend_from_slice(&covered);
        frame.extend_from_slice(&crc32_ieee(&covered).to_le_bytes());
        frame
    }

    fn good_wal() -> Vec<u8> {
        let mut image = wal_frame(1, 0, b"[]");
        image.extend(wal_frame(2, 1, b""));
        image.extend(wal_frame(3, 0, b"[{\"k\":1}]"));
        image
    }

    #[test]
    fn accepts_a_well_formed_wal_image() {
        assert_eq!(validate_wal(&good_wal()), Ok(()));
        assert!(validate_wal(b"").is_err());
    }

    #[test]
    fn rejects_torn_flipped_and_malformed_wal_frames() {
        // Torn tail: the last frame loses three bytes.
        let mut image = good_wal();
        image.truncate(image.len() - 3);
        let errs = validate_wal(&image).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("truncated frame")));

        // A flipped payload byte fails the checksum.
        let mut image = good_wal();
        let mid = image.len() / 2;
        if let Some(b) = image.get_mut(mid) {
            *b ^= 0x01;
        }
        let errs = validate_wal(&image).expect_err("must be rejected");
        assert!(errs
            .iter()
            .any(|e| e.contains("checksum mismatch") || e.contains("truncated")));

        // A sequence gap, an unknown kind, and a fat flush mark are all
        // individually flagged (valid checksums, bad content).
        let mut image = wal_frame(1, 0, b"[]");
        image.extend(wal_frame(3, 0, b"[]"));
        image.extend(wal_frame(4, 7, b""));
        image.extend(wal_frame(5, 1, b"junk"));
        image.extend(wal_frame(6, 0, b"not json"));
        let errs = validate_wal(&image).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("sequence 3 after 1")));
        assert!(errs.iter().any(|e| e.contains("unknown record kind")));
        assert!(errs.iter().any(|e| e.contains("flush mark carries")));
        assert!(errs.iter().any(|e| e.contains("not a JSON array")));
    }

    const GOOD_JSONL: &str = concat!(
        "{\"type\":\"meta\",\"version\":1,\"every_days\":7}\n",
        "{\"type\":\"day\",\"day\":0,\"counters\":{\"replay.reads\":4},\"gauges\":{\"fs.final_files\":7}}\n",
        "{\"type\":\"trigger\",\"day\":30,\"counters\":{\"replay.reads\":2},\"gauges\":{}}\n",
        "{\"type\":\"final\",\"day\":30,\"counters\":{\"replay.reads\":4},\"gauges\":{}}\n",
    );

    #[test]
    fn accepts_a_well_formed_stream_log() {
        assert_eq!(validate_jsonl(GOOD_JSONL), Ok(()));
    }

    #[test]
    fn rejects_broken_stream_framing() {
        // No meta line first.
        let errs = validate_jsonl("{\"type\":\"day\",\"day\":0,\"counters\":{},\"gauges\":{}}\n")
            .expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("meta")));
        // Truncated tail (no trailing newline) and day going backwards.
        let doc = GOOD_JSONL
            .replace(
                "\"day\":30,\"counters\":{\"replay.reads\":2}",
                "\"day\":-1,\"counters\":{\"replay.reads\":2}",
            )
            .replace(
                "{\"type\":\"final\",\"day\":30,\"counters\":{\"replay.reads\":4},\"gauges\":{}}\n",
                "{\"type\":\"final\",\"day\":30,\"counters\":{\"replay.re",
            );
        let errs = validate_jsonl(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("newline")));
        assert!(errs.iter().any(|e| e.contains("goes backwards")));
        // A log that never closes.
        let errs = validate_jsonl(
            "{\"type\":\"meta\",\"version\":1,\"every_days\":1}\n\
             {\"type\":\"day\",\"day\":0,\"counters\":{},\"gauges\":{}}\n",
        )
        .expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("\"final\"")));
        // Negative counter delta.
        let doc = GOOD_JSONL.replace(
            "\"replay.reads\":4},\"gauges\":{\"fs.final_files\":7}",
            "\"replay.reads\":-4},\"gauges\":{\"fs.final_files\":7}",
        );
        let errs = validate_jsonl(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("non-negative")));
    }

    const GOOD_BENCH: &str = r#"{"bench_schema":2,"name":"obs",
        "env":{"os":"linux","arch":"x86_64","cpus":8},"min_of":5,
        "metrics":[
          {"name":"speedup","kind":"ratio","direction":"higher_better","value":12.5,"unit":"x"},
          {"name":"scan_nanos","kind":"time","direction":"lower_better","value":0.3,"unit":"ns"},
          {"name":"files","kind":"info","direction":"none","value":4807,"unit":"files"}],
        "series":[
          {"name":"scan_nanos_samples","unit":"ns","index":[0,1,2],
           "samples":[0.5,0.3,0.4],"summary":"scan_nanos","reduce":"min"},
          {"name":"sweep","unit":"x","index":[0,5],"samples":[12.5,3.25]}]}"#;

    #[test]
    fn accepts_a_well_formed_bench_document() {
        assert_eq!(validate_bench(GOOD_BENCH), Ok(()));
    }

    #[test]
    fn rejects_bench_schema_violations() {
        let errs = validate_bench(r#"{"bench_schema":1,"name":"","min_of":0}"#)
            .expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("bench_schema")));
        assert!(errs.iter().any(|e| e.contains("\"name\" missing or empty")));
        assert!(errs.iter().any(|e| e.contains("env")));
        assert!(errs.iter().any(|e| e.contains("min_of")));
        assert!(errs.iter().any(|e| e.contains("metrics")));

        let doc = GOOD_BENCH
            .replace("\"kind\":\"ratio\"", "\"kind\":\"speed\"")
            .replace("\"index\":[0,5]", "\"index\":[0]");
        let errs = validate_bench(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("bad kind")));
        assert!(errs
            .iter()
            .any(|e| e.contains("1 index value(s) for 2 sample(s)")));
    }

    #[test]
    fn rejects_bench_summary_reduction_drift() {
        // The samples say min is 0.3 but the metric claims 0.2.
        let doc = GOOD_BENCH.replace("\"value\":0.3", "\"value\":0.2");
        let errs = validate_bench(&doc).expect_err("must be rejected");
        assert!(errs
            .iter()
            .any(|e| e.contains("series-reconciliation drift") && e.contains("scan_nanos")));
        // An unknown reduction is rejected rather than silently skipped.
        let doc = GOOD_BENCH.replace("\"reduce\":\"min\"", "\"reduce\":\"mean\"");
        let errs = validate_bench(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("unknown reduce")));
    }

    #[test]
    fn validates_trace_events() {
        assert_eq!(
            validate_trace(r#"[{"name":"run","ph":"X","ts":0,"dur":5,"pid":1,"tid":1}]"#),
            Ok(())
        );
        let errs =
            validate_trace(r#"[{"name":"run","ph":"B","ts":0}]"#).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("\"X\"")));
        assert!(errs.iter().any(|e| e.contains("dur")));
        assert!(validate_trace("{}").is_err());
    }
}
