//! Structural validation of the `activedr-obs` sink files, run by
//! `cargo xtask smoke` against a real telemetry-enabled Tiny replay.
//!
//! The obs crate is dependency-free and hand-rolls its JSON, so nothing
//! in its own test suite proves the emitted bytes parse with an actual
//! JSON reader. This module closes that loop: parse `telemetry.json`
//! and the trace-event file with `serde_json` and check the schema the
//! docs promise — required top-level keys, non-negative counters, a
//! well-formed span tree, and histogram bucket accounting.

use serde_json::Value;

/// Validate a `telemetry.json` document (schema version 1). Returns
/// every problem found, not just the first.
pub fn validate_telemetry(text: &str) -> Result<(), Vec<String>> {
    let doc: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("telemetry.json does not parse: {e:?}")]),
    };
    let mut problems = Vec::new();

    if doc.get("version").and_then(Value::as_u64) != Some(1) {
        problems.push("\"version\" missing or not 1".to_string());
    }
    for key in [
        "counters",
        "gauges",
        "histograms",
        "spans",
        "flight",
        "dropped",
    ] {
        if doc.get(key).is_none() {
            problems.push(format!("required key {key:?} missing"));
        }
    }

    if let Some(Value::Map(counters)) = doc.get("counters") {
        for (name, value) in counters {
            if value.as_u64().is_none() {
                problems.push(format!("counter {name:?} is not a non-negative integer"));
            }
        }
    } else if doc.get("counters").is_some() {
        problems.push("\"counters\" is not an object".to_string());
    }

    if let Some(Value::Map(gauges)) = doc.get("gauges") {
        for (name, value) in gauges {
            if value.as_i64().is_none() {
                problems.push(format!("gauge {name:?} is not an integer"));
            }
        }
    } else if doc.get("gauges").is_some() {
        problems.push("\"gauges\" is not an object".to_string());
    }

    if let Some(hists) = doc.get("histograms").and_then(Value::as_array) {
        for h in hists {
            validate_histogram(h, &mut problems);
        }
    } else if doc.get("histograms").is_some() {
        problems.push("\"histograms\" is not an array".to_string());
    }

    if let Some(spans) = doc.get("spans").and_then(Value::as_array) {
        for s in spans {
            validate_span(s, 0, &mut problems);
        }
    } else if doc.get("spans").is_some() {
        problems.push("\"spans\" is not an array".to_string());
    }

    if let Some(flight) = doc.get("flight").and_then(Value::as_array) {
        for (i, e) in flight.iter().enumerate() {
            if e.get("seq").and_then(Value::as_u64).is_none() {
                problems.push(format!("flight[{i}] has no \"seq\""));
            }
            if e.get("day").and_then(Value::as_i64).is_none() {
                problems.push(format!("flight[{i}] has no \"day\""));
            }
            if e.get("kind").and_then(Value::as_str).is_none() {
                problems.push(format!("flight[{i}] has no \"kind\""));
            }
            if e.get("detail").and_then(Value::as_str).is_none() {
                problems.push(format!("flight[{i}] has no \"detail\""));
            }
        }
    } else if doc.get("flight").is_some() {
        problems.push("\"flight\" is not an array".to_string());
    }

    if let Some(dropped) = doc.get("dropped") {
        for key in ["span_instances", "flight_events"] {
            if dropped.get(key).and_then(Value::as_u64).is_none() {
                problems.push(format!("\"dropped\" has no numeric {key:?}"));
            }
        }
    }

    // Cross-counter sanity: a miss is a failed read, so misses can never
    // outnumber reads in a replay.
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_u64)
    };
    if let (Some(reads), Some(misses)) = (counter("replay.reads"), counter("replay.misses")) {
        if misses > reads {
            problems.push(format!(
                "replay.misses ({misses}) exceeds replay.reads ({reads})"
            ));
        }
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

fn validate_histogram(h: &Value, problems: &mut Vec<String>) {
    let name = h
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("<unnamed>")
        .to_string();
    let bounds = h.get("bounds").and_then(Value::as_array);
    let counts = h.get("counts").and_then(Value::as_array);
    match (bounds, counts) {
        (Some(bounds), Some(counts)) => {
            // One overflow bucket past the last bound.
            if counts.len() != bounds.len() + 1 {
                problems.push(format!(
                    "histogram {name:?}: {} counts for {} bounds (want bounds + 1)",
                    counts.len(),
                    bounds.len()
                ));
            }
            let total: u64 = counts.iter().filter_map(Value::as_u64).sum();
            if h.get("count").and_then(Value::as_u64) != Some(total) {
                problems.push(format!(
                    "histogram {name:?}: \"count\" disagrees with the bucket sum {total}"
                ));
            }
        }
        _ => problems.push(format!("histogram {name:?}: missing bounds/counts arrays")),
    }
    if h.get("sum").and_then(Value::as_u64).is_none() {
        problems.push(format!("histogram {name:?}: missing numeric \"sum\""));
    }
}

fn validate_span(span: &Value, depth: usize, problems: &mut Vec<String>) {
    if depth > 64 {
        problems.push("span tree deeper than 64 levels".to_string());
        return;
    }
    let name = span
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("<unnamed>")
        .to_string();
    if span.get("name").and_then(Value::as_str).is_none() {
        problems.push(format!("span at depth {depth} has no \"name\""));
    }
    match span.get("count").and_then(Value::as_u64) {
        Some(0) => problems.push(format!("span {name:?} recorded with count 0")),
        Some(_) => {}
        None => problems.push(format!("span {name:?} has no numeric \"count\"")),
    }
    if span.get("total_micros").and_then(Value::as_u64).is_none() {
        problems.push(format!("span {name:?} has no numeric \"total_micros\""));
    }
    match span.get("children").and_then(Value::as_array) {
        Some(children) => {
            for c in children {
                validate_span(c, depth + 1, problems);
            }
        }
        None => problems.push(format!("span {name:?} has no \"children\" array")),
    }
}

/// Validate a chrome trace-event export: an array of complete (`"X"`)
/// events with microsecond timestamps and durations.
pub fn validate_trace(text: &str) -> Result<(), Vec<String>> {
    let doc: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("trace file does not parse: {e:?}")]),
    };
    let mut problems = Vec::new();
    match doc.as_array() {
        Some(events) => {
            for (i, e) in events.iter().enumerate() {
                if e.get("name").and_then(Value::as_str).is_none() {
                    problems.push(format!("trace event {i} has no \"name\""));
                }
                if e.get("ph").and_then(Value::as_str) != Some("X") {
                    problems.push(format!("trace event {i} is not a complete (\"X\") event"));
                }
                for key in ["ts", "dur"] {
                    if e.get(key).and_then(Value::as_u64).is_none() {
                        problems.push(format!("trace event {i} has no numeric {key:?}"));
                    }
                }
            }
        }
        None => problems.push("trace file is not a JSON array".to_string()),
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"version":1,
        "counters":{"replay.reads":10,"replay.misses":3},
        "gauges":{"fs.final_files":7},
        "histograms":[{"name":"h","bounds":[10,100],"counts":[1,2,0],"count":3,"sum":42}],
        "spans":[{"name":"run","count":1,"total_micros":5,
                  "children":[{"name":"day","count":2,"total_micros":4,"children":[]}]}],
        "flight":[{"seq":0,"day":-3,"kind":"trigger","detail":"x"}],
        "dropped":{"span_instances":0,"flight_events":0}}"#;

    #[test]
    fn accepts_a_well_formed_document() {
        assert_eq!(validate_telemetry(GOOD), Ok(()));
    }

    #[test]
    fn rejects_missing_keys_and_bad_counters() {
        let errs = validate_telemetry(r#"{"version":2,"counters":{"x":-1}}"#)
            .expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("version")));
        assert!(errs.iter().any(|e| e.contains("\"x\"")));
        assert!(errs.iter().any(|e| e.contains("spans")));
    }

    #[test]
    fn rejects_bucket_miscounts_and_zero_count_spans() {
        let doc = GOOD
            .replace(
                "\"counts\":[1,2,0],\"count\":3",
                "\"counts\":[1,2],\"count\":3",
            )
            .replace(
                "\"name\":\"day\",\"count\":2",
                "\"name\":\"day\",\"count\":0",
            );
        let errs = validate_telemetry(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("bounds + 1")));
        assert!(errs.iter().any(|e| e.contains("count 0")));
    }

    #[test]
    fn rejects_misses_exceeding_reads() {
        let doc = GOOD.replace("\"replay.misses\":3", "\"replay.misses\":11");
        let errs = validate_telemetry(&doc).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("exceeds replay.reads")));
    }

    #[test]
    fn validates_trace_events() {
        assert_eq!(
            validate_trace(r#"[{"name":"run","ph":"X","ts":0,"dur":5,"pid":1,"tid":1}]"#),
            Ok(())
        );
        let errs =
            validate_trace(r#"[{"name":"run","ph":"B","ts":0}]"#).expect_err("must be rejected");
        assert!(errs.iter().any(|e| e.contains("\"X\"")));
        assert!(errs.iter().any(|e| e.contains("dur")));
        assert!(validate_trace("{}").is_err());
    }
}
