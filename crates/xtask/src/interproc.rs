//! The four interprocedural checks: determinism-taint certification,
//! changelog-completeness, panic-reachability, and dead-API detection.
//!
//! All four run over the [`crate::resolve::Workspace`] symbol table, the
//! [`crate::callgraph::CallGraph`], and the per-function
//! [`crate::dataflow::FnFacts`]; file scoping (which crates count, where
//! the entry points live) stays in [`crate::runner`], mirroring the split
//! used by the file-local checks.

#![allow(
    clippy::indexing_slicing,
    reason = "function ids are dense indices produced by enumerate() over the same fn table the facts vector is sized from"
)]

use std::collections::{BTreeMap, BTreeSet};

use crate::baseline::Counts;
use crate::callgraph::CallGraph;
use crate::dataflow::FnFacts;
use crate::resolve::Workspace;

/// A located site backing one ratchet count:
/// `(file, category, line, message)` — the runner's site tuple shape.
pub type Site = (String, String, u32, String);

/// Counts plus the sites behind them, ready for baseline comparison.
#[derive(Debug, Default)]
pub struct RatchetFindings {
    pub counts: Counts,
    pub sites: Vec<Site>,
}

impl RatchetFindings {
    pub(crate) fn push(&mut self, file: &str, category: String, line: u32, message: String) {
        *self
            .counts
            .entry((file.to_string(), category.clone()))
            .or_insert(0) += 1;
        self.sites.push((file.to_string(), category, line, message));
    }
}

/// Check 10 — **determinism-taint**: no function reachable from the engine
/// entry points may contain a nondeterminism source. Findings are keyed
/// `(file, <category>.<function>)` and compared against the hand-audited
/// exemption file, so every tolerated source carries a written
/// justification and disappears from the file the moment it leaves the
/// hot path.
pub fn determinism_taint(
    ws: &Workspace<'_>,
    graph: &CallGraph,
    facts: &[FnFacts],
    entries: &[(&str, &str)],
) -> RatchetFindings {
    let seeds = ws.find_entries(entries);
    let pred = graph.reachable_from(&seeds);
    let mut out = RatchetFindings::default();
    for &f in pred.keys() {
        let def = &ws.fns[f];
        for fact in &facts[f].nondet {
            let path = graph.witness_path(ws, &pred, f);
            out.push(
                def.path,
                format!("{}.{}", fact.category, def.item.name),
                fact.line,
                format!(
                    "{} inside `{}`, reachable from the engine hot path ({path})",
                    fact.what, def.item.name
                ),
            );
        }
    }
    out.sites.sort();
    out
}

/// Check 11 — **changelog-completeness**, part one: every function in
/// `vfs.rs` that structurally mutates the trie must also emit a changelog
/// delta on some path — locally, or through a callee (`remove_subtree`
/// routes per-victim removals through `remove_id`). Returns hard
/// violations as `(file, line, message)`.
pub fn changelog_completeness(
    ws: &Workspace<'_>,
    graph: &CallGraph,
    facts: &[FnFacts],
    vfs_path: &str,
) -> Vec<(String, u32, String)> {
    let mut out = Vec::new();
    for (id, def) in ws.fns.iter().enumerate() {
        if def.path != vfs_path || facts[id].trie_muts.is_empty() {
            continue;
        }
        let reach = graph.reachable_from(&[id]);
        let emits = reach.keys().any(|&g| !facts[g].emits.is_empty());
        if !emits {
            let muts: Vec<String> = facts[id]
                .trie_muts
                .iter()
                .map(|m| format!("{} (line {})", m.what, m.line))
                .collect();
            out.push((
                def.path.to_string(),
                def.item.line,
                format!(
                    "`{}` mutates the trie — {} — but no path from it records a changelog \
                     delta; route the mutation through insert_meta/remove_id or emit the \
                     Delta explicitly, or the incremental catalog silently drifts",
                    def.item.name,
                    muts.join(", ")
                ),
            ));
        }
    }
    out.sort();
    out
}

/// Check 11, part two — the **emit census**: per-variant counts of every
/// `Delta` construction in `vfs.rs`, ratcheted both ways. Deleting any
/// single emit call (even one of two on different branches of the same
/// function, which reachability alone cannot see) changes a count and
/// fails the gate until the baseline is deliberately rewritten.
pub fn changelog_emit_census(
    ws: &Workspace<'_>,
    facts: &[FnFacts],
    vfs_path: &str,
) -> RatchetFindings {
    let mut out = RatchetFindings::default();
    for (id, def) in ws.fns.iter().enumerate() {
        if def.path != vfs_path {
            continue;
        }
        for e in &facts[id].emits {
            out.push(
                def.path,
                e.category.to_string(),
                e.line,
                format!("{} in `{}`", e.what, def.item.name),
            );
        }
    }
    out.sites.sort();
    out
}

/// Check 12 — **panic-reachability**: panic sites inside functions
/// reachable from the engine entry points, counted per file and category
/// against their own ratchet baseline. The file-local panic ratchet bounds
/// the whole library; this one bounds the subset a production replay can
/// actually hit, so it can be driven to zero first.
pub fn panic_reachability(
    ws: &Workspace<'_>,
    graph: &CallGraph,
    facts: &[FnFacts],
    entries: &[(&str, &str)],
) -> RatchetFindings {
    let seeds = ws.find_entries(entries);
    let pred = graph.reachable_from(&seeds);
    let mut out = RatchetFindings::default();
    for &f in pred.keys() {
        let def = &ws.fns[f];
        for fact in &facts[f].panics {
            let path = graph.witness_path(ws, &pred, f);
            out.push(
                def.path,
                fact.category.to_string(),
                fact.line,
                format!(
                    "{} inside `{}`, reachable from the engine hot path ({path})",
                    fact.what, def.item.name
                ),
            );
        }
    }
    out.sites.sort();
    out
}

/// Check 13 — **dead-api**: `pub fn`s in the library crates that nothing in
/// the workspace references. A function is *used* when its name occurs
/// anywhere (calls, paths, re-exports, tests, examples, benches) beyond its
/// own `fn` definitions — name-based reference reachability layered over
/// the call graph, conservative in the aliasing direction: two same-named
/// functions shadow each other into "used". Trait impls and trait default
/// methods are obligations, not API, and are skipped.
pub fn dead_api(
    ws: &Workspace<'_>,
    lib_files: &BTreeSet<String>,
    mentions: &BTreeMap<String, u32>,
    fn_defs: &BTreeMap<String, u32>,
) -> RatchetFindings {
    let mut out = RatchetFindings::default();
    for def in &ws.fns {
        let name = &def.item.name;
        if !def.item.is_pub
            || def.of_trait
            || !lib_files.contains(def.path)
            || name == "main"
            || name.starts_with('_')
        {
            continue;
        }
        let uses = mentions.get(name.as_str()).copied().unwrap_or(0);
        let defs = fn_defs.get(name.as_str()).copied().unwrap_or(0);
        if uses <= defs {
            out.push(
                def.path,
                name.clone(),
                def.item.line,
                format!(
                    "pub fn `{name}` is never referenced anywhere in the workspace \
                     (sources, tests, examples, benches); delete it or demote it from \
                     the public API"
                ),
            );
        }
    }
    out.sites.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::callgraph::CallGraph;
    use crate::dataflow;
    use crate::lexer::lex;

    fn fixture(sources: &[(&str, &str)]) -> (Vec<(String, crate::ast::File)>, Vec<String>) {
        let files: Vec<(String, crate::ast::File)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), parse_file(&lex(s).tokens)))
            .collect();
        let srcs = sources.iter().map(|(_, s)| s.to_string()).collect();
        (files, srcs)
    }

    const ENTRIES: &[(&str, &str)] = &[("crates/sim/src/engine.rs", "run")];

    #[test]
    fn taint_crosses_crate_boundaries_and_fix_clears_it() {
        let planted = "pub fn run() { summarize(); } ";
        let leaky = "pub fn summarize() { let m = HashMap::new(); \
                     for (k, v) in m.iter() { emit(k, v); } }";
        let fixed = "pub fn summarize() { let m = BTreeMap::new(); \
                     for (k, v) in m.iter() { emit(k, v); } }";
        for (src, expect) in [(leaky, 1usize), (fixed, 0usize)] {
            let (files, srcs) = fixture(&[
                ("crates/sim/src/engine.rs", planted),
                ("crates/core/src/report.rs", src),
            ]);
            let mut ws = Workspace::build(&files);
            for s in &srcs {
                ws.scan_hash_decls(&lex(s).tokens);
            }
            let graph = CallGraph::build(&ws);
            let facts = dataflow::compute(&ws);
            let got = determinism_taint(&ws, &graph, &facts, ENTRIES);
            assert_eq!(got.sites.len(), expect, "{:?}", got.sites);
            if expect == 1 {
                assert!(got.sites[0].3.contains("run -> summarize"));
            }
        }
    }

    #[test]
    fn unreachable_nondeterminism_is_not_taint() {
        let (files, srcs) = fixture(&[
            (
                "crates/sim/src/engine.rs",
                "pub fn run() { work(); } fn work() {}",
            ),
            (
                "crates/trace/src/import.rs",
                "pub fn import_wallclock() { let t = SystemTime::now(); go(t); }",
            ),
        ]);
        let mut ws = Workspace::build(&files);
        for s in &srcs {
            ws.scan_hash_decls(&lex(s).tokens);
        }
        let graph = CallGraph::build(&ws);
        let facts = dataflow::compute(&ws);
        let got = determinism_taint(&ws, &graph, &facts, ENTRIES);
        assert!(got.sites.is_empty());
    }

    #[test]
    fn missing_delta_emit_is_flagged_and_routing_through_remove_id_passes() {
        let bad = "impl VirtualFs { \
                   pub fn wipe(&mut self, prefix: &str) -> u64 { \
                   self.trie.remove_subtree(prefix) } }";
        let good = "impl VirtualFs { \
                    pub fn wipe(&mut self, prefix: &str) -> u64 { \
                    let victims = self.collect(prefix); \
                    victims.into_iter().filter_map(|id| self.remove_id(id)).sum() } \
                    pub fn remove_id(&mut self, id: NodeId) -> Option<FileMeta> { \
                    let meta = self.trie.remove_id(id)?; \
                    if let Some(log) = self.changelog.as_mut() { \
                    log.record(Delta::Remove { id }); } Some(meta) } }";
        for (src, expect) in [(bad, 1usize), (good, 0usize)] {
            let (files, _) = fixture(&[("crates/fs/src/vfs.rs", src)]);
            let ws = Workspace::build(&files);
            let graph = CallGraph::build(&ws);
            let facts = dataflow::compute(&ws);
            let got = changelog_completeness(&ws, &graph, &facts, "crates/fs/src/vfs.rs");
            assert_eq!(got.len(), expect, "{got:?}");
        }
    }

    #[test]
    fn emit_census_counts_per_variant() {
        let src = "impl VirtualFs { fn a(&mut self) { \
                   log.record(Delta::Upsert { path, id, meta }); \
                   log.record(Delta::Remove { id }); } \
                   fn b(&mut self) { log.record(Delta::Remove { id }); } }";
        let (files, _) = fixture(&[("crates/fs/src/vfs.rs", src)]);
        let ws = Workspace::build(&files);
        let facts = dataflow::compute(&ws);
        let got = changelog_emit_census(&ws, &facts, "crates/fs/src/vfs.rs");
        let upserts = got
            .counts
            .get(&("crates/fs/src/vfs.rs".to_string(), "upsert".to_string()))
            .copied();
        let removes = got
            .counts
            .get(&("crates/fs/src/vfs.rs".to_string(), "remove".to_string()))
            .copied();
        assert_eq!(upserts, Some(1));
        assert_eq!(removes, Some(2));
    }

    #[test]
    fn reachable_panic_is_counted_and_unreachable_is_not() {
        let (files, _) = fixture(&[
            (
                "crates/sim/src/engine.rs",
                "pub fn run() { hot(); } fn hot() { v.sort(); }",
            ),
            (
                "crates/core/src/rank.rs",
                "pub fn hot() {} pub fn cold(o: Option<u32>) -> u32 { o.unwrap() }",
            ),
        ]);
        let ws = Workspace::build(&files);
        let graph = CallGraph::build(&ws);
        let facts = dataflow::compute(&ws);
        let got = panic_reachability(&ws, &graph, &facts, ENTRIES);
        assert!(got.sites.is_empty(), "{:?}", got.sites);

        let (files, _) = fixture(&[(
            "crates/sim/src/engine.rs",
            "pub fn run(o: Option<u32>) { hot(o); } fn hot(o: Option<u32>) -> u32 { o.unwrap() }",
        )]);
        let ws = Workspace::build(&files);
        let graph = CallGraph::build(&ws);
        let facts = dataflow::compute(&ws);
        let got = panic_reachability(&ws, &graph, &facts, ENTRIES);
        assert_eq!(got.sites.len(), 1);
        assert_eq!(got.sites[0].1, "unwrap");
    }

    #[test]
    fn dead_pub_fn_is_flagged_until_referenced() {
        let lib: BTreeSet<String> = ["crates/core/src/rank.rs".to_string()].into();
        let src_dead = "pub fn orphan(x: u32) -> u32 { x }";
        let src_used = "pub fn orphan(x: u32) -> u32 { x } fn caller() { orphan(1); }";
        for (src, expect) in [(src_dead, 1usize), (src_used, 0usize)] {
            let (files, _) = fixture(&[("crates/core/src/rank.rs", src)]);
            let ws = Workspace::build(&files);
            let mut mentions = BTreeMap::new();
            let mut fn_defs = BTreeMap::new();
            crate::runner::count_mentions(&lex(src).tokens, &mut mentions, &mut fn_defs);
            let got = dead_api(&ws, &lib, &mentions, &fn_defs);
            assert_eq!(got.sites.len(), expect, "{:?}", got.sites);
        }
    }
}
