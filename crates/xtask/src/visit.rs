//! Expression-tree traversal over the [`crate::ast`] nodes.
//!
//! The semantic checks all follow the same shape — walk every expression in
//! a file, pattern-match a node, emit a finding — so the traversal lives
//! here once. `visit_file` / `visit_expr` call the callback on every
//! expression in pre-order; `walk_expr` visits only the direct children of
//! one node, for checks that need to control recursion themselves (e.g. to
//! carry context like "inside a rayon closure").

use crate::ast::{Block, Expr, ExprKind, File, FnItem, Item, Stmt};

/// Call `f` on every expression in the file, pre-order.
pub fn visit_file(file: &File, f: &mut dyn FnMut(&Expr)) {
    for item in &file.items {
        visit_item(item, f);
    }
}

/// Call `f` on every expression in one item, pre-order.
pub fn visit_item(item: &Item, f: &mut dyn FnMut(&Expr)) {
    match item {
        Item::Fn(FnItem { body, .. }) => {
            if let Some(b) = body {
                visit_block(b, f);
            }
        }
        Item::Impl { items, .. } | Item::Mod { items, .. } => {
            for it in items {
                visit_item(it, f);
            }
        }
    }
}

/// Call `f` on every expression in a block, pre-order.
pub fn visit_block(block: &Block, f: &mut dyn FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    visit_expr(e, f);
                }
            }
            Stmt::Expr { expr, .. } => visit_expr(expr, f),
            Stmt::Item(item) => visit_item(item, f),
        }
    }
}

/// Call `f` on `expr` and then on every descendant, pre-order.
pub fn visit_expr(expr: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(expr);
    walk_expr(expr, &mut |child| visit_expr(child, f));
}

/// Call `f` on each *direct* child expression of `expr` (blocks included),
/// without recursing further. Composing this with itself yields the full
/// traversal; checks that track context override individual steps.
pub fn walk_expr(expr: &Expr, f: &mut dyn FnMut(&Expr)) {
    match &expr.kind {
        ExprKind::Path(_)
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str
        | ExprKind::Char
        | ExprKind::Bool(_)
        | ExprKind::Break
        | ExprKind::Continue
        | ExprKind::Opaque => {}
        ExprKind::Call { callee, args } => {
            f(callee);
            for a in args {
                f(a);
            }
        }
        ExprKind::Method { recv, args, .. } => {
            f(recv);
            for a in args {
                f(a);
            }
        }
        ExprKind::Field { base, .. } => f(base),
        ExprKind::Index { base, index } => {
            f(base);
            f(index);
        }
        ExprKind::Unary { operand, .. } => f(operand),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Cast { operand, .. } => f(operand),
        ExprKind::Try(inner) | ExprKind::Ref(inner) => f(inner),
        ExprKind::Closure { body } => f(body),
        ExprKind::Block(b) => walk_block_children(b, f),
        ExprKind::If {
            cond, then, els, ..
        } => {
            f(cond);
            walk_block_children(then, f);
            if let Some(e) = els {
                f(e);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            f(scrutinee);
            for (_, value) in arms {
                f(value);
            }
        }
        ExprKind::While { cond, body, .. } => {
            f(cond);
            walk_block_children(body, f);
        }
        ExprKind::ForLoop { iter, body, .. } => {
            f(iter);
            walk_block_children(body, f);
        }
        ExprKind::Loop { body } => walk_block_children(body, f),
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for e in items {
                f(e);
            }
        }
        ExprKind::StructLit { fields, .. } => {
            for e in fields {
                f(e);
            }
        }
        ExprKind::MacroCall { args, .. } => {
            for e in args {
                f(e);
            }
        }
        ExprKind::Range { lo, hi } => {
            if let Some(e) = lo {
                f(e);
            }
            if let Some(e) = hi {
                f(e);
            }
        }
        ExprKind::Return(value) => {
            if let Some(e) = value {
                f(e);
            }
        }
    }
}

/// Call `f` on every block in the file — function bodies and every nested
/// block-bearing expression (`if`, `match` arms with blocks, loops, bare
/// blocks, closure bodies that are blocks). Statement-shaped checks
/// (`let _ = …`, `expr;`) need the [`Stmt`] structure that the plain
/// expression walk flattens away.
pub fn visit_blocks(file: &File, f: &mut dyn FnMut(&Block)) {
    for item in &file.items {
        item_blocks(item, f);
    }
}

fn item_blocks(item: &Item, f: &mut dyn FnMut(&Block)) {
    match item {
        Item::Fn(FnItem { body: Some(b), .. }) => block_blocks(b, f),
        Item::Fn(_) => {}
        Item::Impl { items, .. } | Item::Mod { items, .. } => {
            for it in items {
                item_blocks(it, f);
            }
        }
    }
}

fn block_blocks(block: &Block, f: &mut dyn FnMut(&Block)) {
    f(block);
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } => expr_blocks(e, f),
            Stmt::Let { init: None, .. } => {}
            Stmt::Expr { expr, .. } => expr_blocks(expr, f),
            Stmt::Item(item) => item_blocks(item, f),
        }
    }
}

fn expr_blocks(expr: &Expr, f: &mut dyn FnMut(&Block)) {
    match &expr.kind {
        ExprKind::Block(b) | ExprKind::Loop { body: b } => block_blocks(b, f),
        ExprKind::If {
            cond, then, els, ..
        } => {
            expr_blocks(cond, f);
            block_blocks(then, f);
            if let Some(e) = els {
                expr_blocks(e, f);
            }
        }
        ExprKind::While { cond, body, .. } => {
            expr_blocks(cond, f);
            block_blocks(body, f);
        }
        ExprKind::ForLoop { iter, body, .. } => {
            expr_blocks(iter, f);
            block_blocks(body, f);
        }
        ExprKind::Match { scrutinee, arms } => {
            expr_blocks(scrutinee, f);
            for (_, value) in arms {
                expr_blocks(value, f);
            }
        }
        _ => walk_expr(expr, &mut |child| expr_blocks(child, f)),
    }
}

/// Visit the immediate expressions of a block (used by `walk_expr` so that
/// block-bearing nodes expose their statements as children).
fn walk_block_children(block: &Block, f: &mut dyn FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    f(e);
                }
            }
            Stmt::Expr { expr, .. } => f(expr),
            Stmt::Item(item) => visit_item(item, &mut |e| visit_expr(e, f)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::lexer::lex;

    #[test]
    fn every_cast_is_reachable() {
        let src = r#"
            fn f(v: Vec<u32>, n: usize) -> f64 {
                let a = n as f64;
                let b = v.iter().map(|x| *x as f64).sum::<f64>();
                if a > 1.0 { b / a } else { (n as u64) as f64 }
            }
        "#;
        let file = parse_file(&lex(src).tokens);
        let mut casts = 0usize;
        visit_file(&file, &mut |e| {
            if matches!(e.kind, crate::ast::ExprKind::Cast { .. }) {
                casts += 1;
            }
        });
        assert_eq!(casts, 4, "n as f64, *x as f64, n as u64, … as f64");
    }

    #[test]
    fn nested_fn_bodies_are_visited() {
        let src = "fn outer() { fn inner(x: i64) -> f64 { x as f64 } inner(1); }";
        let file = parse_file(&lex(src).tokens);
        let mut casts = 0usize;
        visit_file(&file, &mut |e| {
            if matches!(e.kind, crate::ast::ExprKind::Cast { .. }) {
                casts += 1;
            }
        });
        assert_eq!(casts, 1);
    }
}
