//! The baseline ratchets (panic-freedom and cast-audit).
//!
//! The seed codebase predates both invariants, so it carries a known set of
//! `.unwrap()`/indexing sites and raw numeric casts. Rather than waiving
//! them one by one, their per-file-per-category counts are checked in here
//! and compared exactly on every run: a count above its baseline entry is a
//! regression, a count below it is a *stale* baseline (the ratchet must be
//! tightened with `cargo xtask check --update-baseline` so the improvement
//! can never be silently given back). New files start at an implicit
//! baseline of zero.

use std::collections::BTreeMap;
use std::path::Path;

/// Location of the panic-freedom ratchet file, relative to the workspace
/// root.
pub const BASELINE_PATH: &str = "crates/xtask/panic-baseline.txt";

/// Location of the cast-audit ratchet file, relative to the workspace root.
pub const CAST_BASELINE_PATH: &str = "crates/xtask/cast-baseline.txt";

/// Location of the panic-reachability ratchet file (panic sites reachable
/// from the engine hot path), relative to the workspace root.
pub const PANIC_REACH_BASELINE_PATH: &str = "crates/xtask/panic-reach-baseline.txt";

/// Location of the dead-API ratchet file, relative to the workspace root.
pub const DEAD_API_BASELINE_PATH: &str = "crates/xtask/dead-api-baseline.txt";

/// Location of the determinism-taint exemption file. Unlike the other
/// ratchets this file is maintained *by hand* — every entry is an audited
/// nondeterminism source on the engine hot path with a written reason in
/// an adjacent comment — so `--update-baseline` never rewrites it.
pub const DETERMINISM_EXEMPTIONS_PATH: &str = "crates/xtask/determinism-exemptions.txt";

/// Location of the changelog emit-census file, relative to the workspace
/// root.
pub const CHANGELOG_BASELINE_PATH: &str = "crates/xtask/changelog-baseline.txt";

/// Location of the alloc-hot-path ratchet file, relative to the workspace
/// root.
pub const ALLOC_BASELINE_PATH: &str = "crates/xtask/alloc-baseline.txt";

/// Location of the loop-complexity ratchet file, relative to the workspace
/// root.
pub const LOOP_BASELINE_PATH: &str = "crates/xtask/loop-baseline.txt";

/// Header comment written at the top of each ratchet file.
const PANIC_HEADER: &str =
    "# panic-freedom baseline: per-file counts of potentially panicking sites\n\
     # in non-test library code. Maintained by `cargo xtask check --update-baseline`.\n\
     # The ratchet only goes down: raising a count requires editing this file by\n\
     # hand in the same change that justifies the new panic site.\n";

const CAST_HEADER: &str =
    "# cast-audit baseline: per-file counts of potentially lossy numeric `as`\n\
     # casts in non-test library code, categorised by target type. Maintained by\n\
     # `cargo xtask check --update-baseline`. The ratchet only goes down: new raw\n\
     # casts must go through core::convert (or carry an `xtask-allow: cast-audit`\n\
     # waiver) instead of raising a count here.\n";

const PANIC_REACH_HEADER: &str =
    "# panic-reachability baseline: per-file counts of panic sites inside\n\
     # functions reachable from the engine hot path (run/run_instrumented/\n\
     # trigger evaluation), computed over the workspace call graph. Maintained\n\
     # by `cargo xtask check --update-baseline`. The ratchet only goes down:\n\
     # putting a new panic site on the hot path requires editing this file by\n\
     # hand in the same change that justifies it.\n";

const DEAD_API_HEADER: &str =
    "# dead-api baseline: pub functions in the library crates that nothing in\n\
     # the workspace (sources, tests, examples, benches) references, keyed by\n\
     # function name. Maintained by `cargo xtask check --update-baseline`.\n\
     # Entries here are accepted-for-now dead API: delete the function or pick\n\
     # up a caller to shrink this file; adding a new unreferenced pub fn fails\n\
     # the gate.\n";

const DETERMINISM_EXEMPTIONS_HEADER: &str =
    "# determinism-taint exemptions: audited nondeterminism sources reachable\n\
     # from the engine hot path. Keys are `<category>.<function>`; each entry\n\
     # carries a `#` comment above it explaining why the source cannot leak\n\
     # into replay results. THIS FILE IS MAINTAINED BY HAND — `--update-baseline`\n\
     # deliberately refuses to rewrite it. A new source on the hot path fails\n\
     # the gate until it is removed or audited here; a stale entry fails the\n\
     # gate until it is deleted.\n";

const CHANGELOG_HEADER: &str =
    "# changelog emit census: per-Delta-variant counts of changelog emit sites\n\
     # in crates/fs/src/vfs.rs, maintained by `cargo xtask check\n\
     # --update-baseline`. The changelog-completeness check proves every trie\n\
     # mutation reaches *an* emit; this census additionally pins the exact\n\
     # number of emit sites, so deleting any single `log.record(Delta::…)`\n\
     # call fails the gate even when another branch still emits.\n";

const ALLOC_HEADER: &str = "# alloc-hot-path baseline: per-file counts of heap-allocation sites\n\
     # (Vec/Box/String construction, clone, collect, to_owned/to_string,\n\
     # vec!/format!) inside functions reachable from the engine hot path,\n\
     # computed over the workspace call graph. Maintained by `cargo xtask\n\
     # check --update-baseline`. The ratchet only goes down: a new allocation\n\
     # on the hot path is O(users x days) and requires editing this file by\n\
     # hand in the same change that justifies it.\n";

const LOOP_HEADER: &str =
    "# loop-complexity baseline: per-file counts of loop-carried superlinear\n\
     # shapes (binary-search-then-insert, inserts into growing field-rooted\n\
     # collections, positional removes, sort/contains on persistent\n\
     # collections in loops, nested loops over one collection). Maintained by\n\
     # `cargo xtask check --update-baseline`. The ratchet only goes down: fix\n\
     # the shape (batch, pre-sort, use a set) instead of raising a count.\n";

/// Which ratchet file a load/store call addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ratchet {
    PanicFreedom,
    CastAudit,
    PanicReach,
    DeadApi,
    DeterminismTaint,
    ChangelogEmits,
    AllocHotPath,
    LoopComplexity,
}

impl Ratchet {
    /// Workspace-relative path of the ratchet file.
    pub fn path(self) -> &'static str {
        match self {
            Ratchet::PanicFreedom => BASELINE_PATH,
            Ratchet::CastAudit => CAST_BASELINE_PATH,
            Ratchet::PanicReach => PANIC_REACH_BASELINE_PATH,
            Ratchet::DeadApi => DEAD_API_BASELINE_PATH,
            Ratchet::DeterminismTaint => DETERMINISM_EXEMPTIONS_PATH,
            Ratchet::ChangelogEmits => CHANGELOG_BASELINE_PATH,
            Ratchet::AllocHotPath => ALLOC_BASELINE_PATH,
            Ratchet::LoopComplexity => LOOP_BASELINE_PATH,
        }
    }

    /// The hand-audited exemption file must never be clobbered by
    /// `--update-baseline`: its value is the human-written reasons.
    pub fn hand_maintained(self) -> bool {
        matches!(self, Ratchet::DeterminismTaint)
    }

    fn header(self) -> &'static str {
        match self {
            Ratchet::PanicFreedom => PANIC_HEADER,
            Ratchet::CastAudit => CAST_HEADER,
            Ratchet::PanicReach => PANIC_REACH_HEADER,
            Ratchet::DeadApi => DEAD_API_HEADER,
            Ratchet::DeterminismTaint => DETERMINISM_EXEMPTIONS_HEADER,
            Ratchet::ChangelogEmits => CHANGELOG_HEADER,
            Ratchet::AllocHotPath => ALLOC_HEADER,
            Ratchet::LoopComplexity => LOOP_HEADER,
        }
    }
}

/// Per-file, per-category violation counts. Keys are
/// `(workspace-relative path with forward slashes, category)`.
pub type Counts = BTreeMap<(String, String), u32>;

/// One baseline comparison problem, already formatted for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineIssue {
    pub file: String,
    pub category: String,
    pub message: String,
    /// True for count increases (regressions), false for stale entries.
    pub regression: bool,
}

/// Parse the checked-in baseline. Lines are `<count> <category> <path>`;
/// `#` lines and blanks are comments.
///
/// # Errors
/// Returns a message for unreadable or malformed files (a malformed ratchet
/// must fail the build, not silently allow everything).
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let (count, category, path) = match (parts.next(), parts.next(), parts.next()) {
            (Some(c), Some(cat), Some(p)) => (c, cat, p),
            _ => {
                return Err(format!(
                    "baseline line {}: expected `<count> <category> <path>`",
                    idx + 1
                ))
            }
        };
        let count: u32 = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count {count:?}", idx + 1))?;
        counts.insert((path.to_string(), category.to_string()), count);
    }
    Ok(counts)
}

/// Render counts in the baseline file format, stable order, zeros dropped.
pub fn render(ratchet: Ratchet, counts: &Counts) -> String {
    let mut out = String::from(ratchet.header());
    for ((path, category), count) in counts {
        if *count > 0 {
            out.push_str(&format!("{count} {category} {path}\n"));
        }
    }
    out
}

/// Compare current counts against the baseline.
pub fn compare(current: &Counts, baseline: &Counts) -> Vec<BaselineIssue> {
    let mut issues = Vec::new();
    for ((path, category), &now) in current {
        let allowed = baseline
            .get(&(path.clone(), category.clone()))
            .copied()
            .unwrap_or(0);
        if now > allowed {
            issues.push(BaselineIssue {
                file: path.clone(),
                category: category.clone(),
                message: format!(
                    "{now} `{category}` site(s), baseline allows {allowed}; remove the new \
                     site(s) or justify raising the baseline by hand"
                ),
                regression: true,
            });
        } else if now < allowed {
            issues.push(BaselineIssue {
                file: path.clone(),
                category: category.clone(),
                message: format!(
                    "{now} `{category}` site(s) but baseline still says {allowed}; run \
                     `cargo xtask check --update-baseline` to lock in the improvement"
                ),
                regression: false,
            });
        }
    }
    for (path, category) in baseline.keys() {
        if !current.contains_key(&(path.clone(), category.clone())) {
            issues.push(BaselineIssue {
                file: path.clone(),
                category: category.clone(),
                message: format!(
                    "baseline entry `{category}` is obsolete (no sites remain); run \
                     `cargo xtask check --update-baseline`"
                ),
                regression: false,
            });
        }
    }
    issues
}

/// Load a baseline from `root`, tolerating a missing file (empty baseline).
///
/// # Errors
/// Propagates parse errors; a present-but-broken file must fail loudly.
pub fn load(root: &Path, ratchet: Ratchet) -> Result<Counts, String> {
    let path = root.join(ratchet.path());
    match std::fs::read_to_string(&path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Counts::new()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Write `counts` as the new baseline for `ratchet` under `root`.
///
/// # Errors
/// Returns a message when the file cannot be written.
pub fn store(root: &Path, ratchet: Ratchet, counts: &Counts) -> Result<(), String> {
    let path = root.join(ratchet.path());
    std::fs::write(&path, render(ratchet, counts))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, u32)]) -> Counts {
        entries
            .iter()
            .map(|(p, c, n)| ((p.to_string(), c.to_string()), *n))
            .collect()
    }

    #[test]
    fn roundtrip_through_text() {
        let c = counts(&[
            ("crates/fs/src/trie.rs", "unwrap", 5),
            ("crates/sim/src/engine.rs", "index", 2),
        ]);
        for ratchet in [
            Ratchet::PanicFreedom,
            Ratchet::CastAudit,
            Ratchet::PanicReach,
            Ratchet::DeadApi,
            Ratchet::DeterminismTaint,
            Ratchet::ChangelogEmits,
            Ratchet::AllocHotPath,
            Ratchet::LoopComplexity,
        ] {
            let parsed = parse(&render(ratchet, &c)).unwrap();
            assert_eq!(parsed, c);
        }
    }

    #[test]
    fn regression_and_stale_are_distinguished() {
        let base = counts(&[("a.rs", "unwrap", 2), ("b.rs", "index", 1)]);
        let now = counts(&[("a.rs", "unwrap", 3)]);
        let issues = compare(&now, &base);
        assert_eq!(issues.len(), 2);
        assert!(issues.iter().any(|i| i.regression && i.file == "a.rs"));
        assert!(issues.iter().any(|i| !i.regression && i.file == "b.rs"));
    }

    #[test]
    fn new_file_has_zero_baseline() {
        let issues = compare(&counts(&[("new.rs", "unwrap", 1)]), &Counts::new());
        assert_eq!(issues.len(), 1);
        assert!(issues.first().is_some_and(|i| i.regression));
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("not a baseline").is_err());
        assert!(parse("x unwrap a.rs").is_err());
        assert!(parse("# comment\n\n3 unwrap a.rs\n").is_ok());
    }
}
