//! Orchestration: file discovery, check scoping, waivers, reporting.
//!
//! A run has four passes. Pass 1 lexes and parses every product file
//! (parallel, one worker per core, merged in file order) and collects the
//! workspace-wide signature table plus the name-mention census the dead-API
//! check consumes. Pass 2 runs the file-local checks over each parsed file
//! (parallel, findings merged in file order, so output is deterministic
//! regardless of scheduling). Pass 3 builds the interprocedural layer —
//! symbol table ([`crate::resolve`]), call graph ([`crate::callgraph`]),
//! per-function dataflow facts ([`crate::dataflow`]) — and runs the four
//! workspace-level checks ([`crate::interproc`]). Pass 4 is the
//! performance-semantics layer over the same symbol table: the interval
//! cast prover ([`crate::interval`]), which *discharges* proven-lossless
//! sites from the cast ratchet before it is compared, and the
//! alloc-hot-path / loop-complexity checks ([`crate::perfsem`]) with their
//! own ratchets. Thread count follows `XTASK_THREADS` (default: available
//! parallelism); all output is byte-identical across thread counts.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::baseline::{self, BaselineIssue, Counts, Ratchet};
use crate::callgraph::CallGraph;
use crate::checks::{self, Finding};
use crate::interproc;
use crate::interval::{self, render_ivl};
use crate::lexer::{Tok, Token};
use crate::perfsem;
use crate::resolve::Workspace;
use crate::semantic::{self, Signatures};
use crate::{ast, dataflow, lexer};

/// Crates whose non-test code must be panic-free (ratcheted) and must keep
/// newtype discipline. The binaries (`cli`) and the bench harness are
/// allowed to panic at the edges but still get the other checks.
const LIB_CRATES: &[&str] = &["core", "fs", "trace", "sim", "obs", "oracle"];

/// Every product crate scanned by the workspace-wide checks. The vendored
/// dependency stubs under `stubs/` and xtask itself (whose sources literally
/// spell the needles it greps for) are deliberately out of scope.
const ALL_CRATES: &[&str] = &[
    "core", "fs", "trace", "sim", "obs", "oracle", "cli", "bench",
];

/// Files that define the integer/float newtypes: raw `.0` arithmetic is the
/// point of these modules, so the newtype check skips them.
const NEWTYPE_HOMES: &[&str] = &[
    "crates/core/src/time.rs",
    "crates/core/src/user.rs",
    "crates/core/src/files.rs",
    "crates/core/src/event.rs",
    "crates/core/src/rank.rs",
    "crates/fs/src/trie.rs",
];

/// Enums whose dispatch must stay exhaustive, with their defining file
/// (inside which wildcard arms are the module author's business).
const DISPATCH_ENUMS: &[(&str, &str)] = &[
    ("PolicyKind", "crates/sim/src/engine.rs"),
    ("ActivityClass", "crates/core/src/event.rs"),
    ("AccessKind", "crates/trace/src/records.rs"),
    ("Quadrant", "crates/core/src/classify.rs"),
];

/// The one module where exact float comparison is allowed (and documented).
const FLOAT_HOME: &str = "crates/core/src/approx.rs";

/// The module that exists to hold the workspace's numeric conversions: raw
/// `as` casts are its implementation technique, so cast-audit skips it.
const CAST_HOME: &str = "crates/core/src/convert.rs";

/// Modules that define the unit-bearing types and conversions: raw
/// second/day/byte arithmetic is their whole point, so unit-safety skips
/// them.
const UNIT_HOMES: &[&str] = &["crates/core/src/time.rs", "crates/core/src/convert.rs"];

/// Entry points of the engine hot path for the reachability-based checks:
/// the public replay drivers and the engine core they share. Trigger
/// evaluation (the policy `run` impls, the activeness evaluators) is
/// reached from these through the call graph's over-approximated dispatch.
const HOT_PATH_ENTRIES: &[(&str, &str)] = &[
    ("crates/sim/src/engine.rs", "run"),
    ("crates/sim/src/engine.rs", "run_until"),
    ("crates/sim/src/engine.rs", "run_observed"),
    ("crates/sim/src/engine.rs", "run_instrumented"),
    ("crates/sim/src/engine.rs", "run_with_telemetry"),
    ("crates/sim/src/engine.rs", "run_engine"),
];

/// The file whose trie mutations the changelog-completeness check proves
/// complete.
const CHANGELOG_HOME: &str = "crates/fs/src/vfs.rs";

/// The four call-graph-based checks (pass 3).
const INTERPROC_CHECKS: &[&str] = &[
    "determinism-taint",
    "changelog-completeness",
    "panic-reachability",
    "dead-api",
];

/// The three performance-semantics checks (pass 4). `cast-audit` implies
/// `cast-proof`: the ratchet the prover discharges into is cast-audit's,
/// so running one without the other would make the cast baseline depend on
/// the `--only` selection.
const PERFSEM_CHECKS: &[&str] = &["cast-proof", "alloc-hot-path", "loop-complexity"];

/// How to invoke a run.
#[derive(Debug, Default)]
pub struct Config {
    /// Workspace root (the directory holding the top-level Cargo.toml).
    pub root: PathBuf,
    /// Restrict to these check names; `None` runs all sixteen.
    pub only: Option<Vec<String>>,
    /// Rewrite the machine-maintained ratchet files instead of comparing
    /// against them (the hand-audited determinism exemptions are never
    /// rewritten).
    pub update_baseline: bool,
    /// `--explain-cast <file:line>`: print the interval prover's derived
    /// operand range for every numeric cast at that site.
    pub explain_cast: Option<String>,
    /// Include a per-phase wall-time table in the rendered report (opt-in:
    /// timings vary run to run, and the default output is byte-identical
    /// across thread counts).
    pub timings: bool,
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub check: String,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// One ratcheted site: `(file, category, line, message)`.
pub type Site = (String, String, u32, String);

/// Everything a run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Hard failures: non-ratcheted check findings, baseline regressions,
    /// stale baselines/waivers.
    pub errors: Vec<Violation>,
    /// Findings silenced by an `xtask-allow` waiver, kept for the summary.
    pub waived: Vec<Violation>,
    /// Current panic-freedom counts (after waivers).
    pub panic_counts: Counts,
    /// Every ratcheted panic site: `(file, category, line, message)`.
    pub panic_sites: Vec<Site>,
    /// Current cast-audit counts (after waivers), keyed by
    /// `(file, target type)`.
    pub cast_counts: Counts,
    /// Every ratcheted cast site: `(file, category, line, message)`.
    pub cast_sites: Vec<Site>,
    /// Determinism-taint findings, keyed `(file, <category>.<function>)`,
    /// compared against the hand-audited exemption file.
    pub taint_counts: Counts,
    pub taint_sites: Vec<Site>,
    /// Panic sites reachable from the engine hot path, keyed
    /// `(file, category)`.
    pub reach_counts: Counts,
    pub reach_sites: Vec<Site>,
    /// Unreferenced pub functions, keyed `(file, fn name)`.
    pub dead_counts: Counts,
    pub dead_sites: Vec<Site>,
    /// Changelog emit census, keyed `(file, delta variant)`.
    pub emit_counts: Counts,
    pub emit_sites: Vec<Site>,
    /// Hot-path allocation census, keyed `(file, alloc category)`.
    pub alloc_counts: Counts,
    pub alloc_sites: Vec<Site>,
    /// Loop-complexity findings, keyed `(file, shape category)`.
    pub loop_counts: Counts,
    pub loop_sites: Vec<Site>,
    /// Cast sites the interval prover discharged from the cast ratchet
    /// (they are *removed* from `cast_counts`/`cast_sites` first).
    pub discharged_casts: Vec<Site>,
    /// `--explain-cast` output lines, one per cast at the requested site.
    pub cast_explanations: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Set when `--update-baseline` rewrote the ratchet files.
    pub baseline_updated: bool,
    /// Wall time of the whole run, for the CI budget line.
    pub elapsed_ms: u64,
    /// Per-phase wall times, rendered only with `--timings`.
    pub timings: Vec<(&'static str, u64)>,
    /// Echo of [`Config::timings`], so `render` knows to print the table.
    pub show_timings: bool,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Human-readable rendering: one `error[...]` block per violation (the
    /// `file:line` form is what editors and CI annotations pick up), then a
    /// one-paragraph summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.errors {
            out.push_str(&format!(
                "error[xtask::{}]: {}\n  --> {}:{}\n",
                v.check, v.message, v.file, v.line
            ));
        }
        for e in &self.cast_explanations {
            out.push_str(e);
            out.push('\n');
        }
        let panic_total: u32 = self.panic_counts.values().sum();
        let cast_total: u32 = self.cast_counts.values().sum();
        let reach_total: u32 = self.reach_counts.values().sum();
        let taint_total: u32 = self.taint_counts.values().sum();
        let dead_total: u32 = self.dead_counts.values().sum();
        let alloc_total: u32 = self.alloc_counts.values().sum();
        let loop_total: u32 = self.loop_counts.values().sum();
        out.push_str(&format!(
            "xtask check: {} files scanned in {} ms, {} error(s), {} waived finding(s), \
             {} ratcheted panic site(s) ({} on the hot path), {} ratcheted cast site(s) \
             ({} discharged by the prover), {} audited nondeterminism source(s), \
             {} baselined dead pub fn(s), {} hot-path alloc site(s), \
             {} loop-complexity site(s)\n",
            self.files_scanned,
            self.elapsed_ms,
            self.errors.len(),
            self.waived.len(),
            panic_total,
            reach_total,
            cast_total,
            self.discharged_casts.len(),
            taint_total,
            dead_total,
            alloc_total,
            loop_total,
        ));
        if self.baseline_updated {
            out.push_str(&format!(
                "baselines rewritten: {}, {}, {}, {}, {}, {}, {}\n",
                baseline::BASELINE_PATH,
                baseline::CAST_BASELINE_PATH,
                baseline::PANIC_REACH_BASELINE_PATH,
                baseline::DEAD_API_BASELINE_PATH,
                baseline::CHANGELOG_BASELINE_PATH,
                baseline::ALLOC_BASELINE_PATH,
                baseline::LOOP_BASELINE_PATH,
            ));
        }
        if self.show_timings {
            out.push_str("timings:\n");
            for (phase, ms) in &self.timings {
                out.push_str(&format!("  {phase:<28} {ms:>6} ms\n"));
            }
        }
        out
    }

    /// Machine-readable rendering: one JSON object per error, one per line
    /// (`{"check":…,"file":…,"line":…,"message":…}`), nothing else. CI
    /// turns these into GitHub annotations.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for v in &self.errors {
            out.push_str(&format!(
                "{{\"check\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}\n",
                json_escape(&v.check),
                json_escape(&v.file),
                v.line,
                json_escape(&v.message)
            ));
        }
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn enabled(cfg: &Config, check: &str) -> bool {
    cfg.only
        .as_ref()
        .is_none_or(|names| names.iter().any(|n| n == check))
}

/// Worker-thread count: `XTASK_THREADS` override, else available
/// parallelism, clamped to the number of work items.
fn num_threads(items: usize) -> usize {
    let env = std::env::var("XTASK_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    env.unwrap_or(hw).min(items.max(1))
}

/// Tally every identifier occurrence in `tokens` into `mentions`, and every
/// `fn <name>` definition into `fn_defs`. The dead-API check declares a pub
/// fn unreferenced when all its mentions are definitions.
pub fn count_mentions(
    tokens: &[Token],
    mentions: &mut BTreeMap<String, u32>,
    fn_defs: &mut BTreeMap<String, u32>,
) {
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else {
            continue;
        };
        *mentions.entry(name.clone()).or_insert(0) += 1;
        let prev_is_fn = i
            .checked_sub(1)
            .and_then(|p| tokens.get(p))
            .is_some_and(|t| matches!(&t.tok, Tok::Ident(prev) if prev == "fn"));
        if prev_is_fn {
            *fn_defs.entry(name.clone()).or_insert(0) += 1;
        }
    }
}

/// Per-file output of pass 1.
struct FileData {
    file: String,
    /// True for tests/examples/benches files: lexed only for the mention
    /// census, not parsed or checked.
    usage_only: bool,
    waivers: Vec<(u32, String)>,
    tokens: Vec<Token>,
    ast: ast::File,
    mentions: BTreeMap<String, u32>,
    fn_defs: BTreeMap<String, u32>,
}

fn load_file(root: &Path, path: &Path, usage_only: bool) -> Result<FileData, String> {
    let file = rel(root, path);
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {file}: {e}"))?;
    let lexed = lexer::lex(&src);
    let mut mentions = BTreeMap::new();
    let mut fn_defs = BTreeMap::new();
    count_mentions(&lexed.tokens, &mut mentions, &mut fn_defs);
    let (tokens, ast) = if usage_only {
        (Vec::new(), ast::File::default())
    } else {
        let tokens = lexer::strip_test_regions(lexed.tokens);
        let ast = ast::parse_file(&tokens);
        (tokens, ast)
    };
    Ok(FileData {
        file,
        usage_only,
        waivers: lexed.waivers,
        tokens,
        ast,
        mentions,
        fn_defs,
    })
}

/// Findings of pass 2 for one file, merged into the report in file order.
#[derive(Default)]
struct FileFindings {
    errors: Vec<Violation>,
    waived: Vec<Violation>,
    panic: Vec<Site>,
    cast: Vec<Site>,
}

/// Run the configured checks over the workspace at `cfg.root`.
///
/// # Errors
/// Returns a message for infrastructure problems (unreadable files, broken
/// baseline, unknown check names) — distinct from check findings, which are
/// reported in the [`Report`].
pub fn run(cfg: &Config) -> Result<Report, String> {
    let started = Instant::now();
    if let Some(names) = &cfg.only {
        for n in names {
            if !checks::CHECK_NAMES.contains(&n.as_str()) {
                return Err(format!(
                    "unknown check {n:?}; valid names: {}",
                    checks::CHECK_NAMES.join(", ")
                ));
            }
        }
    }
    let explain_site: Option<(String, u32)> = match &cfg.explain_cast {
        Some(spec) => {
            let (file, line) = spec
                .rsplit_once(':')
                .ok_or_else(|| format!("--explain-cast {spec:?}: expected <file>:<line>"))?;
            let line: u32 = line
                .parse()
                .map_err(|_| format!("--explain-cast {spec:?}: bad line number {line:?}"))?;
            Some((file.replace('\\', "/"), line))
        }
        None => None,
    };

    let mut report = Report {
        show_timings: cfg.timings,
        ..Report::default()
    };
    let mut phase_started = Instant::now();
    let mut mark = |report: &mut Report, phase: &'static str| {
        let ms = u64::try_from(phase_started.elapsed().as_millis()).unwrap_or(u64::MAX);
        report.timings.push((phase, ms));
        phase_started = Instant::now();
    };
    let lib_files: BTreeSet<String> = LIB_CRATES
        .iter()
        .flat_map(|c| rust_files(&cfg.root.join("crates").join(c).join("src")))
        .map(|p| rel(&cfg.root, &p))
        .collect();

    // Product sources, then usage-only trees (tests/examples/benches) for
    // the dead-API mention census.
    let mut work: Vec<(PathBuf, bool)> = ALL_CRATES
        .iter()
        .flat_map(|c| rust_files(&cfg.root.join("crates").join(c).join("src")))
        .map(|p| (p, false))
        .collect();
    for c in ALL_CRATES {
        for sub in ["tests", "examples", "benches"] {
            work.extend(
                rust_files(&cfg.root.join("crates").join(c).join(sub))
                    .into_iter()
                    .map(|p| (p, true)),
            );
        }
    }
    // The workspace-root integration/example trees (registered in
    // crates/sim/Cargo.toml via explicit [[test]]/[[example]] paths)
    // count for the mention census too, so an API only they exercise
    // stays off the dead list.
    for sub in ["tests", "examples", "benches"] {
        work.extend(
            rust_files(&cfg.root.join(sub))
                .into_iter()
                .map(|p| (p, true)),
        );
    }

    // Pass 1 (parallel): lex, strip tests, parse, census mentions.
    let threads = num_threads(work.len());
    let mut loaded: Vec<Option<Result<FileData, String>>> = (0..work.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let work = &work;
        let root = cfg.root.as_path();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for (i, (path, usage_only)) in work.iter().enumerate().skip(t).step_by(threads)
                    {
                        out.push((i, load_file(root, path, *usage_only)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            if let Ok(items) = h.join() {
                for (i, r) in items {
                    if let Some(slot) = loaded.get_mut(i) {
                        *slot = Some(r);
                    }
                }
            }
        }
    });
    let mut files: Vec<FileData> = Vec::with_capacity(work.len());
    for slot in loaded {
        match slot {
            Some(Ok(data)) => files.push(data),
            Some(Err(e)) => return Err(e),
            None => return Err("xtask worker thread panicked".to_string()),
        }
    }
    mark(&mut report, "load+lex+parse");

    // Merge the mention census and build the signature table (sequential:
    // both folds are order-sensitive only in their merged totals).
    let mut mentions: BTreeMap<String, u32> = BTreeMap::new();
    let mut fn_defs: BTreeMap<String, u32> = BTreeMap::new();
    let mut sigs = Signatures::with_builtins();
    for data in &files {
        for (k, v) in &data.mentions {
            *mentions.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &data.fn_defs {
            *fn_defs.entry(k.clone()).or_insert(0) += v;
        }
        if !data.usage_only && lib_files.contains(&data.file) {
            semantic::collect_signatures(&data.ast, &mut sigs);
        }
    }

    // Pass 2 (parallel): the nine file-local checks, merged in file order.
    let checked: Vec<&FileData> = files.iter().filter(|d| !d.usage_only).collect();
    report.files_scanned = checked.len();
    let threads = num_threads(checked.len());
    let mut findings: Vec<Option<FileFindings>> = (0..checked.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let checked = &checked;
        let lib_files = &lib_files;
        let sigs = &sigs;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for (i, data) in checked.iter().enumerate().skip(t).step_by(threads) {
                        out.push((i, check_file(cfg, data, lib_files, sigs)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            if let Ok(items) = h.join() {
                for (i, r) in items {
                    if let Some(slot) = findings.get_mut(i) {
                        *slot = Some(r);
                    }
                }
            }
        }
    });
    for slot in findings {
        let Some(f) = slot else {
            return Err("xtask worker thread panicked".to_string());
        };
        report.errors.extend(f.errors);
        report.waived.extend(f.waived);
        for (file, cat, line, msg) in f.panic {
            *report
                .panic_counts
                .entry((file.clone(), cat.clone()))
                .or_insert(0) += 1;
            report.panic_sites.push((file, cat, line, msg));
        }
        for (file, cat, line, msg) in f.cast {
            *report
                .cast_counts
                .entry((file.clone(), cat.clone()))
                .or_insert(0) += 1;
            report.cast_sites.push((file, cat, line, msg));
        }
    }
    mark(&mut report, "file-local checks");

    // Passes 3 and 4 share the workspace symbol table. `cast-audit`
    // implies the cast prover: the ratchet it discharges into is
    // cast-audit's, so the baseline must not depend on `--only`.
    let interproc_needed = INTERPROC_CHECKS.iter().any(|c| enabled(cfg, c));
    let perfsem_needed = PERFSEM_CHECKS.iter().any(|c| enabled(cfg, c))
        || enabled(cfg, "cast-audit")
        || explain_site.is_some();
    if interproc_needed || perfsem_needed {
        let ast_files: Vec<(String, ast::File)> = files
            .iter_mut()
            .filter(|d| !d.usage_only)
            .map(|d| (d.file.clone(), std::mem::take(&mut d.ast)))
            .collect();
        let mut ws = Workspace::build(&ast_files);
        for d in files.iter().filter(|d| !d.usage_only) {
            ws.scan_hash_decls(&d.tokens);
            ws.scan_struct_decls(&d.tokens);
        }
        let graph = CallGraph::build(&ws);
        let facts = dataflow::compute(&ws);
        mark(&mut report, "symbol table + call graph");

        // Pass 3: the four interprocedural checks.
        if enabled(cfg, "determinism-taint") {
            let got = interproc::determinism_taint(&ws, &graph, &facts, HOT_PATH_ENTRIES);
            report.taint_counts = got.counts;
            report.taint_sites = got.sites;
            mark(&mut report, "determinism-taint");
        }
        if enabled(cfg, "changelog-completeness") {
            for (file, line, message) in
                interproc::changelog_completeness(&ws, &graph, &facts, CHANGELOG_HOME)
            {
                report.errors.push(Violation {
                    check: "changelog-completeness".to_string(),
                    file,
                    line,
                    message,
                });
            }
            let census = interproc::changelog_emit_census(&ws, &facts, CHANGELOG_HOME);
            report.emit_counts = census.counts;
            report.emit_sites = census.sites;
            mark(&mut report, "changelog-completeness");
        }
        if enabled(cfg, "panic-reachability") {
            let got = interproc::panic_reachability(&ws, &graph, &facts, HOT_PATH_ENTRIES);
            report.reach_counts = got.counts;
            report.reach_sites = got.sites;
            mark(&mut report, "panic-reachability");
        }
        if enabled(cfg, "dead-api") {
            let got = interproc::dead_api(&ws, &lib_files, &mentions, &fn_defs);
            report.dead_counts = got.counts;
            report.dead_sites = got.sites;
            mark(&mut report, "dead-api");
        }

        // Pass 4: the performance-semantics layer.
        if enabled(cfg, "alloc-hot-path") {
            let got = perfsem::alloc_hot_path(&ws, &graph, &facts, HOT_PATH_ENTRIES);
            report.alloc_counts = got.counts;
            report.alloc_sites = got.sites;
            mark(&mut report, "alloc-hot-path");
        }
        if enabled(cfg, "loop-complexity") {
            let got = perfsem::loop_complexity(&ws, &facts, &lib_files);
            report.loop_counts = got.counts;
            report.loop_sites = got.sites;
            mark(&mut report, "loop-complexity");
        }
        if enabled(cfg, "cast-audit") || enabled(cfg, "cast-proof") || explain_site.is_some() {
            discharge_proven_casts(&ws, &lib_files, explain_site.as_ref(), &mut report);
            mark(&mut report, "cast-proof");
        }
    }

    // Baselines: compare or rewrite each ratchet.
    let ratchets: [(&str, Ratchet); 8] = [
        ("panic-freedom", Ratchet::PanicFreedom),
        ("cast-audit", Ratchet::CastAudit),
        ("panic-reachability", Ratchet::PanicReach),
        ("dead-api", Ratchet::DeadApi),
        ("determinism-taint", Ratchet::DeterminismTaint),
        ("changelog-completeness", Ratchet::ChangelogEmits),
        ("alloc-hot-path", Ratchet::AllocHotPath),
        ("loop-complexity", Ratchet::LoopComplexity),
    ];
    for (check, ratchet) in ratchets {
        if !enabled(cfg, check) {
            continue;
        }
        let (counts, sites) = match ratchet {
            Ratchet::PanicFreedom => (&report.panic_counts, &report.panic_sites),
            Ratchet::CastAudit => (&report.cast_counts, &report.cast_sites),
            Ratchet::PanicReach => (&report.reach_counts, &report.reach_sites),
            Ratchet::DeadApi => (&report.dead_counts, &report.dead_sites),
            Ratchet::DeterminismTaint => (&report.taint_counts, &report.taint_sites),
            Ratchet::ChangelogEmits => (&report.emit_counts, &report.emit_sites),
            Ratchet::AllocHotPath => (&report.alloc_counts, &report.alloc_sites),
            Ratchet::LoopComplexity => (&report.loop_counts, &report.loop_sites),
        };
        if cfg.update_baseline && !ratchet.hand_maintained() {
            baseline::store(&cfg.root, ratchet, counts)?;
            report.baseline_updated = true;
            continue;
        }
        let base = baseline::load(&cfg.root, ratchet)?;
        let mut issues = Vec::new();
        for BaselineIssue {
            file,
            category,
            message,
            regression,
        } in baseline::compare(counts, &base)
        {
            let message = if ratchet == Ratchet::DeterminismTaint {
                // The exemption file is audited by hand; never suggest
                // `--update-baseline` for it.
                if regression {
                    format!(
                        "unaudited nondeterminism source(s) `{category}` on the engine hot \
                         path; make the code deterministic or add a justified exemption \
                         line to {}",
                        baseline::DETERMINISM_EXEMPTIONS_PATH
                    )
                } else {
                    format!(
                        "exemption `{category}` no longer matches any hot-path source; \
                         delete its line from {}",
                        baseline::DETERMINISM_EXEMPTIONS_PATH
                    )
                }
            } else {
                message
            };
            // Point regressions at the individual sites so the offender
            // is one click away.
            if regression {
                for (sfile, _, line, smsg) in sites
                    .iter()
                    .filter(|(sfile, scat, _, _)| *sfile == file && *scat == category)
                {
                    issues.push(Violation {
                        check: check.to_string(),
                        file: sfile.clone(),
                        line: *line,
                        message: format!("{smsg} [{message}]"),
                    });
                }
            } else {
                issues.push(Violation {
                    check: check.to_string(),
                    file,
                    line: 0,
                    message,
                });
            }
        }
        report.errors.extend(issues);
    }

    mark(&mut report, "baseline comparison");
    report
        .errors
        .sort_by(|a, b| (&a.file, a.line, &a.check).cmp(&(&b.file, b.line, &b.check)));
    report.elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    Ok(report)
}

/// Pass 4, check 14 — run the interval prover over every library function
/// (the conversions module excepted, matching cast-audit's scope), remove
/// each proven-lossless cast from the ratchet counts/sites, and collect
/// `--explain-cast` lines for the requested site.
fn discharge_proven_casts(
    ws: &Workspace<'_>,
    lib_files: &BTreeSet<String>,
    explain: Option<&(String, u32)>,
    report: &mut Report,
) {
    let mut proven: Vec<(String, u32, String)> = Vec::new();
    for (id, def) in ws.fns.iter().enumerate() {
        if !lib_files.contains(def.path) || def.path == CAST_HOME {
            continue;
        }
        for proof in interval::prove_fn(ws, id) {
            if let Some((efile, eline)) = explain {
                if def.path == efile && proof.line == *eline {
                    report.cast_explanations.push(format!(
                        "cast to `{}` at {}:{} in `{}`: operand range {}, {}",
                        proof.target,
                        def.path,
                        proof.line,
                        def.item.name,
                        render_ivl(proof.ivl),
                        if proof.proven {
                            "PROVEN lossless (discharged from the cast ratchet)"
                        } else {
                            "not provable (stays on the cast ratchet)"
                        }
                    ));
                }
            }
            if proof.proven {
                proven.push((def.path.to_string(), proof.line, proof.target.to_string()));
            }
        }
    }
    // Multiset subtraction: each proof discharges at most one audited
    // site (casts the audit already considers lossless, or waived sites,
    // have no entry to remove and are skipped).
    for (file, line, target) in proven {
        let Some(pos) = report
            .cast_sites
            .iter()
            .position(|(f, c, l, _)| *f == file && *c == target && *l == line)
        else {
            continue;
        };
        let site = report.cast_sites.remove(pos);
        if let Some(n) = report
            .cast_counts
            .get_mut(&(site.0.clone(), site.1.clone()))
        {
            *n = n.saturating_sub(1);
            if *n == 0 {
                report.cast_counts.remove(&(site.0.clone(), site.1.clone()));
            }
        }
        report.discharged_casts.push(site);
    }
    report.discharged_casts.sort();
    if let Some((efile, eline)) = explain {
        if report.cast_explanations.is_empty() {
            report.cast_explanations.push(format!(
                "no numeric cast found at {efile}:{eline} (the prover only sees casts \
                 inside function bodies of the library crates, outside {CAST_HOME})"
            ));
        }
    }
}

/// Pass 2 body: the nine file-local checks plus waiver accounting for one
/// file. Pure function of the parsed file, so it parallelises freely.
fn check_file(
    cfg: &Config,
    data: &FileData,
    lib_files: &BTreeSet<String>,
    sigs: &Signatures,
) -> FileFindings {
    let file = &data.file;
    let tokens = &data.tokens;
    let file_ast = &data.ast;
    let waivers = &data.waivers;
    let mut out = FileFindings::default();

    // Collect (check, findings) pairs for this file.
    let mut findings: Vec<(&str, Vec<Finding>)> = Vec::new();
    let in_lib = lib_files.contains(file);

    if enabled(cfg, "panic-freedom") && in_lib {
        findings.push(("panic-freedom", checks::check_panic_freedom(tokens)));
    }
    if enabled(cfg, "newtype") && in_lib && !NEWTYPE_HOMES.contains(&file.as_str()) {
        findings.push(("newtype", checks::check_newtype(tokens)));
    }
    if enabled(cfg, "dispatch") {
        let monitored: Vec<&str> = DISPATCH_ENUMS
            .iter()
            .filter(|(_, home)| *home != file)
            .map(|(name, _)| *name)
            .collect();
        findings.push(("dispatch", checks::check_dispatch(tokens, &monitored)));
    }
    if enabled(cfg, "float-cmp") && file != FLOAT_HOME {
        findings.push(("float-cmp", checks::check_float_cmp(tokens)));
    }
    if enabled(cfg, "determinism") {
        findings.push(("determinism", checks::check_determinism(tokens)));
    }
    if enabled(cfg, "cast-audit") && in_lib && file != CAST_HOME {
        findings.push(("cast-audit", semantic::check_cast_audit(file_ast)));
    }
    if enabled(cfg, "ignored-result") && in_lib {
        findings.push((
            "ignored-result",
            semantic::check_ignored_result(file_ast, sigs),
        ));
    }
    if enabled(cfg, "unit-safety") && in_lib && !UNIT_HOMES.contains(&file.as_str()) {
        findings.push(("unit-safety", semantic::check_unit_safety(file_ast)));
    }
    if enabled(cfg, "par-determinism") {
        findings.push(("par-determinism", semantic::check_par_determinism(file_ast)));
    }

    // Apply waivers: `// xtask-allow: <check>` covers findings on its
    // own line and the line directly below.
    let mut used_waivers: BTreeSet<usize> = BTreeSet::new();
    for (check, list) in findings {
        for f in list {
            let waiver = waivers
                .iter()
                .enumerate()
                .find(|(_, (wline, wname))| {
                    wname == check && (*wline == f.line || wline + 1 == f.line)
                })
                .map(|(idx, _)| idx);
            let v = Violation {
                check: check.to_string(),
                file: file.clone(),
                line: f.line,
                message: f.message.clone(),
            };
            if let Some(idx) = waiver {
                used_waivers.insert(idx);
                out.waived.push(v);
            } else if check == "panic-freedom" {
                // Ratcheted, not individually fatal: count it, and keep
                // the site so baseline regressions can be pinpointed.
                out.panic
                    .push((file.clone(), f.category.to_string(), f.line, f.message));
            } else if check == "cast-audit" {
                // The second ratchet: pre-existing raw casts are carried
                // in cast-baseline.txt, new ones are regressions.
                out.cast
                    .push((file.clone(), f.category.to_string(), f.line, f.message));
            } else {
                out.errors.push(v);
            }
        }
    }

    // A waiver that matched nothing is itself an error: stale waivers
    // rot into misleading documentation.
    for (idx, (wline, wname)) in waivers.iter().enumerate() {
        let known = checks::CHECK_NAMES.contains(&wname.as_str());
        // A waiver for a check that was scoped out by `--only` is not
        // stale — it just was not exercised this run.
        if known && !enabled(cfg, wname) {
            continue;
        }
        if !used_waivers.contains(&idx) {
            out.errors.push(Violation {
                check: "stale-waiver".to_string(),
                file: file.clone(),
                line: *wline,
                message: if known {
                    format!("`xtask-allow: {wname}` waives nothing on this or the next line")
                } else {
                    format!(
                        "unknown check {wname:?} in xtask-allow (valid: {})",
                        checks::CHECK_NAMES.join(", ")
                    )
                },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_only_name_is_an_error() {
        let cfg = Config {
            root: PathBuf::from("."),
            only: Some(vec!["no-such-check".to_string()]),
            update_baseline: false,
            ..Config::default()
        };
        assert!(run(&cfg).is_err());
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
