//! Orchestration: file discovery, check scoping, waivers, reporting.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::baseline::{self, BaselineIssue, Counts, Ratchet};
use crate::checks::{self, Finding};
use crate::semantic::{self, Signatures};
use crate::{ast, lexer};

/// Crates whose non-test code must be panic-free (ratcheted) and must keep
/// newtype discipline. The binaries (`cli`) and the bench harness are
/// allowed to panic at the edges but still get the other checks.
const LIB_CRATES: &[&str] = &["core", "fs", "trace", "sim", "obs", "oracle"];

/// Every product crate scanned by the workspace-wide checks. The vendored
/// dependency stubs under `stubs/` and xtask itself (whose sources literally
/// spell the needles it greps for) are deliberately out of scope.
const ALL_CRATES: &[&str] = &[
    "core", "fs", "trace", "sim", "obs", "oracle", "cli", "bench",
];

/// Files that define the integer/float newtypes: raw `.0` arithmetic is the
/// point of these modules, so the newtype check skips them.
const NEWTYPE_HOMES: &[&str] = &[
    "crates/core/src/time.rs",
    "crates/core/src/user.rs",
    "crates/core/src/files.rs",
    "crates/core/src/event.rs",
    "crates/core/src/rank.rs",
    "crates/fs/src/trie.rs",
];

/// Enums whose dispatch must stay exhaustive, with their defining file
/// (inside which wildcard arms are the module author's business).
const DISPATCH_ENUMS: &[(&str, &str)] = &[
    ("PolicyKind", "crates/sim/src/engine.rs"),
    ("ActivityClass", "crates/core/src/event.rs"),
    ("AccessKind", "crates/trace/src/records.rs"),
    ("Quadrant", "crates/core/src/classify.rs"),
];

/// The one module where exact float comparison is allowed (and documented).
const FLOAT_HOME: &str = "crates/core/src/approx.rs";

/// The module that exists to hold the workspace's numeric conversions: raw
/// `as` casts are its implementation technique, so cast-audit skips it.
const CAST_HOME: &str = "crates/core/src/convert.rs";

/// Modules that define the unit-bearing types and conversions: raw
/// second/day/byte arithmetic is their whole point, so unit-safety skips
/// them.
const UNIT_HOMES: &[&str] = &["crates/core/src/time.rs", "crates/core/src/convert.rs"];

/// How to invoke a run.
#[derive(Debug, Default)]
pub struct Config {
    /// Workspace root (the directory holding the top-level Cargo.toml).
    pub root: PathBuf,
    /// Restrict to these check names; `None` runs all nine.
    pub only: Option<Vec<String>>,
    /// Rewrite the panic-freedom and cast-audit baselines instead of
    /// comparing against them.
    pub update_baseline: bool,
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub check: String,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// Everything a run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Hard failures: non-ratcheted check findings, baseline regressions,
    /// stale baselines/waivers.
    pub errors: Vec<Violation>,
    /// Findings silenced by an `xtask-allow` waiver, kept for the summary.
    pub waived: Vec<Violation>,
    /// Current panic-freedom counts (after waivers).
    pub panic_counts: Counts,
    /// Every ratcheted panic site: `(file, category, line, message)`.
    pub panic_sites: Vec<(String, String, u32, String)>,
    /// Current cast-audit counts (after waivers), keyed by
    /// `(file, target type)`.
    pub cast_counts: Counts,
    /// Every ratcheted cast site: `(file, category, line, message)`.
    pub cast_sites: Vec<(String, String, u32, String)>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Set when `--update-baseline` rewrote the ratchet files.
    pub baseline_updated: bool,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Human-readable rendering: one `error[...]` block per violation (the
    /// `file:line` form is what editors and CI annotations pick up), then a
    /// one-paragraph summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.errors {
            out.push_str(&format!(
                "error[xtask::{}]: {}\n  --> {}:{}\n",
                v.check, v.message, v.file, v.line
            ));
        }
        let panic_total: u32 = self.panic_counts.values().sum();
        let cast_total: u32 = self.cast_counts.values().sum();
        out.push_str(&format!(
            "xtask check: {} files scanned, {} error(s), {} waived finding(s), \
             {} ratcheted panic site(s), {} ratcheted cast site(s)\n",
            self.files_scanned,
            self.errors.len(),
            self.waived.len(),
            panic_total,
            cast_total,
        ));
        if self.baseline_updated {
            out.push_str(&format!(
                "baselines rewritten: {}, {}\n",
                baseline::BASELINE_PATH,
                baseline::CAST_BASELINE_PATH
            ));
        }
        out
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn enabled(cfg: &Config, check: &str) -> bool {
    cfg.only
        .as_ref()
        .is_none_or(|names| names.iter().any(|n| n == check))
}

/// Run the configured checks over the workspace at `cfg.root`.
///
/// # Errors
/// Returns a message for infrastructure problems (unreadable files, broken
/// baseline, unknown check names) — distinct from check findings, which are
/// reported in the [`Report`].
pub fn run(cfg: &Config) -> Result<Report, String> {
    if let Some(names) = &cfg.only {
        for n in names {
            if !checks::CHECK_NAMES.contains(&n.as_str()) {
                return Err(format!(
                    "unknown check {n:?}; valid names: {}",
                    checks::CHECK_NAMES.join(", ")
                ));
            }
        }
    }

    let mut report = Report::default();
    let lib_files: BTreeSet<String> = LIB_CRATES
        .iter()
        .flat_map(|c| rust_files(&cfg.root.join("crates").join(c).join("src")))
        .map(|p| rel(&cfg.root, &p))
        .collect();

    let all_files: Vec<PathBuf> = ALL_CRATES
        .iter()
        .flat_map(|c| rust_files(&cfg.root.join("crates").join(c).join("src")))
        .collect();

    // Pass 1: lex and parse every file once, and build the workspace-wide
    // signature table from the library crates (ignored-result resolves
    // callee names against it, so `fs.create(…)` in `sim` sees the
    // `Result`-returning signature defined in `fs`).
    struct Parsed {
        file: String,
        waivers: Vec<(u32, String)>,
        tokens: Vec<lexer::Token>,
        ast: ast::File,
    }
    let mut parsed: Vec<Parsed> = Vec::with_capacity(all_files.len());
    let mut sigs = Signatures::with_builtins();
    for path in &all_files {
        let file = rel(&cfg.root, path);
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {file}: {e}"))?;
        let lexed = lexer::lex(&src);
        let tokens = lexer::strip_test_regions(lexed.tokens);
        let file_ast = ast::parse_file(&tokens);
        if lib_files.contains(&file) {
            semantic::collect_signatures(&file_ast, &mut sigs);
        }
        parsed.push(Parsed {
            file,
            waivers: lexed.waivers,
            tokens,
            ast: file_ast,
        });
    }

    // Pass 2: run the enabled checks over each parsed file.
    for Parsed {
        file,
        waivers,
        tokens,
        ast: file_ast,
    } in &parsed
    {
        let file = file.clone();
        report.files_scanned += 1;

        // Collect (check, findings) pairs for this file.
        let mut findings: Vec<(&str, Vec<Finding>)> = Vec::new();
        let in_lib = lib_files.contains(&file);

        if enabled(cfg, "panic-freedom") && in_lib {
            findings.push(("panic-freedom", checks::check_panic_freedom(tokens)));
        }
        if enabled(cfg, "newtype") && in_lib && !NEWTYPE_HOMES.contains(&file.as_str()) {
            findings.push(("newtype", checks::check_newtype(tokens)));
        }
        if enabled(cfg, "dispatch") {
            let monitored: Vec<&str> = DISPATCH_ENUMS
                .iter()
                .filter(|(_, home)| *home != file)
                .map(|(name, _)| *name)
                .collect();
            findings.push(("dispatch", checks::check_dispatch(tokens, &monitored)));
        }
        if enabled(cfg, "float-cmp") && file != FLOAT_HOME {
            findings.push(("float-cmp", checks::check_float_cmp(tokens)));
        }
        if enabled(cfg, "determinism") {
            findings.push(("determinism", checks::check_determinism(tokens)));
        }
        if enabled(cfg, "cast-audit") && in_lib && file != CAST_HOME {
            findings.push(("cast-audit", semantic::check_cast_audit(file_ast)));
        }
        if enabled(cfg, "ignored-result") && in_lib {
            findings.push((
                "ignored-result",
                semantic::check_ignored_result(file_ast, &sigs),
            ));
        }
        if enabled(cfg, "unit-safety") && in_lib && !UNIT_HOMES.contains(&file.as_str()) {
            findings.push(("unit-safety", semantic::check_unit_safety(file_ast)));
        }
        if enabled(cfg, "par-determinism") {
            findings.push(("par-determinism", semantic::check_par_determinism(file_ast)));
        }

        // Apply waivers: `// xtask-allow: <check>` covers findings on its
        // own line and the line directly below.
        let mut used_waivers: BTreeSet<usize> = BTreeSet::new();
        for (check, list) in findings {
            for f in list {
                let waiver = waivers
                    .iter()
                    .enumerate()
                    .find(|(_, (wline, wname))| {
                        wname == check && (*wline == f.line || wline + 1 == f.line)
                    })
                    .map(|(idx, _)| idx);
                let v = Violation {
                    check: check.to_string(),
                    file: file.clone(),
                    line: f.line,
                    message: f.message.clone(),
                };
                if let Some(idx) = waiver {
                    used_waivers.insert(idx);
                    report.waived.push(v);
                } else if check == "panic-freedom" {
                    // Ratcheted, not individually fatal: count it, and keep
                    // the site so baseline regressions can be pinpointed.
                    *report
                        .panic_counts
                        .entry((file.clone(), f.category.to_string()))
                        .or_insert(0) += 1;
                    report.panic_sites.push((
                        file.clone(),
                        f.category.to_string(),
                        f.line,
                        f.message.clone(),
                    ));
                } else if check == "cast-audit" {
                    // The second ratchet: pre-existing raw casts are carried
                    // in cast-baseline.txt, new ones are regressions.
                    *report
                        .cast_counts
                        .entry((file.clone(), f.category.to_string()))
                        .or_insert(0) += 1;
                    report.cast_sites.push((
                        file.clone(),
                        f.category.to_string(),
                        f.line,
                        f.message.clone(),
                    ));
                } else {
                    report.errors.push(v);
                }
            }
        }

        // A waiver that matched nothing is itself an error: stale waivers
        // rot into misleading documentation.
        for (idx, (wline, wname)) in waivers.iter().enumerate() {
            let known = checks::CHECK_NAMES.contains(&wname.as_str());
            // A waiver for a check that was scoped out by `--only` is not
            // stale — it just was not exercised this run.
            if known && !enabled(cfg, wname) {
                continue;
            }
            if !used_waivers.contains(&idx) {
                report.errors.push(Violation {
                    check: "stale-waiver".to_string(),
                    file: file.clone(),
                    line: *wline,
                    message: if known {
                        format!("`xtask-allow: {wname}` waives nothing on this or the next line")
                    } else {
                        format!(
                            "unknown check {wname:?} in xtask-allow (valid: {})",
                            checks::CHECK_NAMES.join(", ")
                        )
                    },
                });
            }
        }
    }

    // Baselines: compare or rewrite each ratchet.
    let ratchets: [(&str, Ratchet); 2] = [
        ("panic-freedom", Ratchet::PanicFreedom),
        ("cast-audit", Ratchet::CastAudit),
    ];
    for (check, ratchet) in ratchets {
        if !enabled(cfg, check) {
            continue;
        }
        let (counts, sites) = match ratchet {
            Ratchet::PanicFreedom => (&report.panic_counts, &report.panic_sites),
            Ratchet::CastAudit => (&report.cast_counts, &report.cast_sites),
        };
        if cfg.update_baseline {
            baseline::store(&cfg.root, ratchet, counts)?;
            report.baseline_updated = true;
            continue;
        }
        let base = baseline::load(&cfg.root, ratchet)?;
        let mut issues = Vec::new();
        for BaselineIssue {
            file,
            category,
            message,
            regression,
        } in baseline::compare(counts, &base)
        {
            // Point regressions at the individual sites so the offender
            // is one click away.
            if regression {
                for (sfile, _, line, smsg) in sites
                    .iter()
                    .filter(|(sfile, scat, _, _)| *sfile == file && *scat == category)
                {
                    issues.push(Violation {
                        check: check.to_string(),
                        file: sfile.clone(),
                        line: *line,
                        message: format!("{smsg} [{message}]"),
                    });
                }
            } else {
                issues.push(Violation {
                    check: check.to_string(),
                    file,
                    line: 0,
                    message,
                });
            }
        }
        report.errors.extend(issues);
    }

    report
        .errors
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_only_name_is_an_error() {
        let cfg = Config {
            root: PathBuf::from("."),
            only: Some(vec!["no-such-check".to_string()]),
            update_baseline: false,
        };
        assert!(run(&cfg).is_err());
    }
}
