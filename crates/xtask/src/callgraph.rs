//! Workspace call graph over the [`crate::resolve::Workspace`] symbol table.
//!
//! Nodes are function definitions; edges are resolved call sites *and* bare
//! path references (`map(Self::helper)`, `Box::new(ActiveDr::default)`), so
//! reachability covers functions passed as values. Trait dispatch is
//! over-approximated: a method call resolves to every impl of that name
//! (subject to the qualifier rules in [`crate::resolve`]), which is exactly
//! what a sound reachability certification wants — if *any* policy's `run`
//! can be invoked from the engine, all of them are on the hot path.

#![allow(
    clippy::indexing_slicing,
    reason = "function ids are dense indices produced by enumerate() over the same fn table the vectors here are sized from"
)]

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ast::{Expr, ExprKind};
use crate::resolve::Workspace;
use crate::visit;

/// The graph: `callees[f]` is the set of function ids `f` calls or
/// references; `called_by[f]` counts incoming references (for dead-API).
#[derive(Debug, Default)]
pub struct CallGraph {
    pub callees: Vec<BTreeSet<usize>>,
    pub callers: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Build the graph by resolving every call/reference in every body.
    pub fn build(ws: &Workspace<'_>) -> CallGraph {
        let n = ws.fns.len();
        let mut g = CallGraph {
            callees: vec![BTreeSet::new(); n],
            callers: vec![BTreeSet::new(); n],
        };
        for (id, def) in ws.fns.iter().enumerate() {
            let Some(body) = &def.item.body else {
                continue;
            };
            let mut targets: BTreeSet<usize> = BTreeSet::new();
            let mut on_expr = |e: &Expr| match &e.kind {
                ExprKind::Call { callee, .. } => {
                    if let ExprKind::Path(p) = &callee.kind {
                        targets.extend(ws.resolve_path_call(p, def));
                    }
                }
                ExprKind::Method { recv, name, .. } => {
                    let recv_is_self = matches!(&recv.kind, ExprKind::Path(p) if p == "self");
                    targets.extend(ws.resolve_method_call(name, recv_is_self, def));
                }
                // A bare path in argument position may be a function
                // reference; only qualified paths are trusted (a lone
                // `run` is usually a local variable, not `Engine::run`).
                ExprKind::Path(p) if p.contains("::") => {
                    targets.extend(ws.resolve_path_call(p, def));
                }
                _ => {}
            };
            for stmt in &body.stmts {
                visit_stmt_exprs(stmt, &mut on_expr);
            }
            targets.remove(&id); // self-recursion adds nothing to reachability
            for t in &targets {
                g.callers[*t].insert(id);
            }
            g.callees[id] = targets;
        }
        g
    }

    /// Every function reachable from `seeds` (seeds included), with, for
    /// each reached function, its BFS predecessor — enough to reconstruct
    /// one witness call path for diagnostics.
    pub fn reachable_from(&self, seeds: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut pred: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in seeds {
            if let Entry::Vacant(v) = pred.entry(s) {
                v.insert(None);
                queue.push_back(s);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &t in &self.callees[f] {
                if let Entry::Vacant(v) = pred.entry(t) {
                    v.insert(Some(f));
                    queue.push_back(t);
                }
            }
        }
        pred
    }

    /// Render one witness call path `seed → … → target` using BFS
    /// predecessors, as function names.
    pub fn witness_path(
        &self,
        ws: &Workspace<'_>,
        pred: &BTreeMap<usize, Option<usize>>,
        target: usize,
    ) -> String {
        let mut names: Vec<&str> = Vec::new();
        let mut cur = Some(target);
        while let Some(f) = cur {
            names.push(&ws.fns[f].item.name);
            cur = pred.get(&f).copied().flatten();
            if names.len() > 64 {
                break; // defensive: predecessor maps are acyclic by construction
            }
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// Visit every expression under one statement (shared with the builder).
fn visit_stmt_exprs(stmt: &crate::ast::Stmt, f: &mut dyn FnMut(&Expr)) {
    use crate::ast::Stmt;
    match stmt {
        Stmt::Let { init, .. } => {
            if let Some(e) = init {
                visit::visit_expr(e, f);
            }
        }
        Stmt::Expr { expr, .. } => visit::visit_expr(expr, f),
        // Nested items hold their own workspace-indexed functions.
        Stmt::Item(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::lexer::lex;

    fn build(sources: &[(&str, &str)]) -> (Vec<(String, crate::ast::File)>, Vec<usize>) {
        let files: Vec<(String, crate::ast::File)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), parse_file(&lex(s).tokens)))
            .collect();
        (files, Vec::new())
    }

    fn id_of(ws: &Workspace<'_>, name: &str) -> usize {
        ws.fns
            .iter()
            .enumerate()
            .find(|(_, d)| d.item.name == name)
            .map(|(i, _)| i)
            .expect("fn present")
    }

    #[test]
    fn cross_crate_calls_create_edges() {
        let (files, _) = build(&[
            (
                "crates/sim/src/engine.rs",
                "pub fn run() { helper(); } fn helper() { score(1.0); }",
            ),
            (
                "crates/core/src/rank.rs",
                "pub fn score(x: f64) -> f64 { x }",
            ),
        ]);
        let ws = Workspace::build(&files);
        let g = CallGraph::build(&ws);
        let run = id_of(&ws, "run");
        let score = id_of(&ws, "score");
        let reach = g.reachable_from(&[run]);
        assert!(reach.contains_key(&score));
        let path = g.witness_path(&ws, &reach, score);
        assert_eq!(path, "run -> helper -> score");
    }

    #[test]
    fn method_dispatch_over_approximates_trait_impls() {
        let (files, _) = build(&[
            (
                "crates/sim/src/engine.rs",
                "pub fn run_engine(p: &dyn RetentionPolicy) { p.decide(r); }",
            ),
            (
                "crates/core/src/policy/flt.rs",
                "impl RetentionPolicy for Flt { fn decide(&self, r: R) -> O { O } }",
            ),
            (
                "crates/core/src/policy/activedr.rs",
                "impl RetentionPolicy for ActiveDr { fn decide(&self, r: R) -> O { O } }",
            ),
        ]);
        let ws = Workspace::build(&files);
        let g = CallGraph::build(&ws);
        let run = id_of(&ws, "run_engine");
        let reach = g.reachable_from(&[run]);
        let decides = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, d)| d.item.name == "decide")
            .count();
        assert_eq!(decides, 2);
        assert_eq!(
            reach.len(),
            3,
            "both trait impls must be reachable from the dispatch site"
        );
    }

    #[test]
    fn function_references_count_as_edges() {
        let (files, _) = build(&[(
            "crates/core/src/x.rs",
            "impl S { pub fn drive(&self) { self.items.map(Self::score); } \
             fn score(x: u32) -> u32 { x } }",
        )]);
        let ws = Workspace::build(&files);
        let g = CallGraph::build(&ws);
        let drive = id_of(&ws, "drive");
        let score = id_of(&ws, "score");
        assert!(g.callees[drive].contains(&score));
    }
}
