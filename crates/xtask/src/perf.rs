//! `cargo xtask perf` — the perf-regression watchdog.
//!
//! Drives the release-mode benches (`bench_catalog`, `bench_obs`,
//! `bench_wal`) through the shared BENCH-v2 emitter, then diffs the
//! freshly written
//! `docs/results/BENCH_*.json` documents against the checked-in
//! baselines that were read *before* the benches overwrote them.
//!
//! Comparison policy (mirrors the schema contract in
//! `activedr-obs::benchfmt`):
//!
//! * **ratio** metrics are dimensionless and gated on every machine;
//! * **time** metrics are gated only when the baseline's env
//!   fingerprint (`os`/`arch`/`cpus`) matches the current machine —
//!   a laptop must not fail CI because the CI box is slower;
//! * **info** metrics are recorded, never gated;
//! * a gated metric present in the baseline but missing from the
//!   current results is itself a regression (silent gate erosion);
//! * a baseline that is missing, unparseable, or still schema v1 is a
//!   *note*, not a failure — the watchdog bootstraps itself on the
//!   first run after a schema migration;
//! * a zero or non-finite baseline value cannot anchor a relative
//!   comparison and is skipped with a note (`incremental_nochange`
//!   legitimately measures ~0 µs).
//!
//! Current results are always schema-validated
//! ([`crate::telemetry::validate_bench`]) — including the recomputed
//! summary reductions — and schema violations are fatal regardless of
//! `--check`. Regressions beyond tolerance fail the run only under
//! `--check` (which `smoke` and CI set); a bare `cargo xtask perf`
//! reports them as warnings.

use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::telemetry;

/// One bench the watchdog owns: the artifact it writes and the cargo
/// invocation that runs it.
pub struct BenchSpec {
    /// File name under the results directory.
    pub file: &'static str,
    /// `cargo` argument vector that reruns the bench.
    pub cargo: &'static [&'static str],
}

/// The benches gated by `cargo xtask perf`, in run order.
pub const BENCHES: [BenchSpec; 3] = [
    BenchSpec {
        file: "BENCH_catalog.json",
        cargo: &[
            "run",
            "--release",
            "-q",
            "-p",
            "activedr-sim",
            "--example",
            "bench_catalog",
        ],
    },
    BenchSpec {
        file: "BENCH_obs.json",
        cargo: &[
            "run",
            "--release",
            "-q",
            "-p",
            "activedr-obs",
            "--example",
            "bench_obs",
        ],
    },
    BenchSpec {
        file: "BENCH_wal.json",
        cargo: &[
            "run",
            "--release",
            "-q",
            "-p",
            "activedr-sim",
            "--example",
            "bench_wal",
        ],
    },
];

/// Default regression tolerance, percent. Generous because even
/// min-of-N microsecond timings jitter double digits on shared
/// hardware; the benches' own hard floors catch order-of-magnitude
/// breakage long before this gate would.
pub const DEFAULT_TOLERANCE_PCT: f64 = 50.0;

/// Watchdog configuration (CLI flags of `cargo xtask perf`).
pub struct PerfOptions {
    /// Fail (exit nonzero) on regressions beyond tolerance.
    pub check: bool,
    /// Skip rerunning the benches; diff the existing result files.
    pub no_run: bool,
    /// Allowed adverse change before a gated metric regresses, percent.
    pub tolerance_pct: f64,
    /// Directory the benches write into (and results are read from).
    pub results_dir: PathBuf,
    /// Directory the baselines are read from (defaults to the results
    /// directory: the checked-in files *are* the baseline until the
    /// benches overwrite them).
    pub baseline_dir: PathBuf,
}

impl PerfOptions {
    /// Defaults rooted at the workspace's `docs/results/`.
    #[must_use]
    pub fn new(workspace_root: &Path) -> Self {
        let results = workspace_root.join("docs").join("results");
        PerfOptions {
            check: false,
            no_run: false,
            tolerance_pct: DEFAULT_TOLERANCE_PCT,
            results_dir: results.clone(),
            baseline_dir: results,
        }
    }
}

/// Outcome of one watchdog pass.
#[derive(Debug, Default)]
pub struct PerfReport {
    /// Per-metric comparison rows, human-readable.
    pub rows: Vec<String>,
    /// Skipped comparisons and bootstrap conditions.
    pub notes: Vec<String>,
    /// Gated metrics that moved beyond tolerance in the bad direction.
    pub regressions: Vec<String>,
    /// Schema violations in the current results (always fatal).
    pub problems: Vec<String>,
}

impl PerfReport {
    /// Whether this pass should fail the process under `check`.
    #[must_use]
    pub fn failed(&self, check: bool) -> bool {
        !self.problems.is_empty() || (check && !self.regressions.is_empty())
    }

    /// Render the pass as the multi-line report `xtask perf` prints.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str("  ");
            out.push_str(row);
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("  note: ");
            out.push_str(note);
            out.push('\n');
        }
        for problem in &self.problems {
            out.push_str("  INVALID: ");
            out.push_str(problem);
            out.push('\n');
        }
        for regression in &self.regressions {
            out.push_str("  REGRESSION: ");
            out.push_str(regression);
            out.push('\n');
        }
        out
    }
}

/// Run the watchdog: snapshot baselines, rerun the benches (unless
/// `no_run`), validate the fresh results, and diff gated metrics.
///
/// `run_step` executes one cargo invocation; injected so `smoke` can
/// reuse its own step runner and tests can substitute a no-op.
///
/// # Errors
/// Returns `Err` when a bench fails to run or a result file cannot be
/// read — conditions where there is nothing to diff.
pub fn run(
    opts: &PerfOptions,
    run_step: &mut dyn FnMut(&[&str]) -> Result<(), String>,
) -> Result<PerfReport, String> {
    let mut report = PerfReport::default();
    // Baselines must be read before the benches clobber the files.
    let baselines: Vec<Option<String>> = BENCHES
        .iter()
        .map(|b| std::fs::read_to_string(opts.baseline_dir.join(b.file)).ok())
        .collect();

    if !opts.no_run {
        for bench in &BENCHES {
            run_step(bench.cargo)?;
        }
    }

    for (bench, baseline) in BENCHES.iter().zip(baselines.iter()) {
        let current_path = opts.results_dir.join(bench.file);
        let current = std::fs::read_to_string(&current_path)
            .map_err(|e| format!("cannot read {}: {e}", current_path.display()))?;
        if let Err(problems) = telemetry::validate_bench(&current) {
            for p in problems {
                report.problems.push(format!("{}: {p}", bench.file));
            }
            continue;
        }
        compare_documents(bench.file, baseline.as_deref(), &current, opts, &mut report);
    }
    Ok(report)
}

/// Diff one current BENCH document against its baseline, appending
/// rows/notes/regressions to `report`.
fn compare_documents(
    file: &str,
    baseline: Option<&str>,
    current: &str,
    opts: &PerfOptions,
    report: &mut PerfReport,
) {
    let Ok(current_doc) = serde_json::from_str::<Value>(current) else {
        // validate_bench already passed, so this cannot happen; guard
        // anyway rather than panic inside the gate.
        report
            .problems
            .push(format!("{file}: current document does not parse"));
        return;
    };
    let baseline_doc = baseline.and_then(|text| serde_json::from_str::<Value>(text).ok());
    let Some(baseline_doc) = baseline_doc else {
        report
            .notes
            .push(format!("{file}: no readable baseline, nothing gated"));
        return;
    };
    if baseline_doc.get("bench_schema").and_then(Value::as_u64) != Some(2) {
        report.notes.push(format!(
            "{file}: baseline is not bench schema v2, nothing gated (rerun to migrate)"
        ));
        return;
    }
    let env_matches = baseline_doc.get("env") == current_doc.get("env");
    if !env_matches {
        report.notes.push(format!(
            "{file}: env fingerprint differs from baseline, time metrics not gated"
        ));
    }

    let empty = Vec::new();
    let baseline_metrics = baseline_doc
        .get("metrics")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let current_metrics = current_doc
        .get("metrics")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    for metric in baseline_metrics {
        let Some(name) = metric.get("name").and_then(Value::as_str) else {
            continue;
        };
        let kind = metric.get("kind").and_then(Value::as_str).unwrap_or("info");
        let direction = metric
            .get("direction")
            .and_then(Value::as_str)
            .unwrap_or("none");
        let gated = match kind {
            "ratio" => direction != "none",
            "time" => env_matches && direction != "none",
            _ => false,
        };
        if !gated {
            continue;
        }
        let Some(base) = metric.get("value").and_then(Value::as_f64) else {
            continue;
        };
        let cur = current_metrics
            .iter()
            .find(|m| m.get("name").and_then(Value::as_str) == Some(name))
            .and_then(|m| m.get("value"))
            .and_then(Value::as_f64);
        let Some(cur) = cur else {
            report.regressions.push(format!(
                "{file}: gated metric {name:?} is in the baseline but missing from the results"
            ));
            continue;
        };
        if !(base.is_finite() && base > 0.0) {
            report.notes.push(format!(
                "{file}: {name} baseline {base} cannot anchor a relative comparison, skipped"
            ));
            continue;
        }
        let change_pct = (cur - base) / base * 100.0;
        report.rows.push(format!(
            "{file}: {name} {base:.3} -> {cur:.3} ({change_pct:+.1}%)"
        ));
        let worse = match direction {
            "higher_better" => change_pct < -opts.tolerance_pct,
            "lower_better" => change_pct > opts.tolerance_pct,
            _ => false,
        };
        if worse {
            report.regressions.push(format!(
                "{file}: {name} moved {change_pct:+.1}% ({base:.3} -> {cur:.3}), \
                 beyond the {:.0}% tolerance",
                opts.tolerance_pct
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(env_cpus: u64, speedup: f64, scan_nanos: f64) -> String {
        format!(
            r#"{{"bench_schema":2,"name":"t","env":{{"os":"testos","arch":"t","cpus":{env_cpus}}},
              "min_of":3,
              "metrics":[
                {{"name":"speedup","kind":"ratio","direction":"higher_better","value":{speedup},"unit":"x"}},
                {{"name":"scan_nanos","kind":"time","direction":"lower_better","value":{scan_nanos},"unit":"ns"}},
                {{"name":"files","kind":"info","direction":"none","value":10,"unit":"f"}}],
              "series":[]}}"#
        )
    }

    fn opts() -> PerfOptions {
        PerfOptions {
            check: true,
            no_run: true,
            tolerance_pct: 25.0,
            results_dir: PathBuf::new(),
            baseline_dir: PathBuf::new(),
        }
    }

    #[test]
    fn unchanged_results_are_clean() {
        let doc = bench_doc(8, 12.0, 100.0);
        let mut report = PerfReport::default();
        compare_documents("B.json", Some(&doc), &doc, &opts(), &mut report);
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        assert_eq!(report.rows.len(), 2);
        assert!(!report.failed(true));
    }

    #[test]
    fn ratio_drop_beyond_tolerance_regresses() {
        let base = bench_doc(8, 12.0, 100.0);
        let cur = bench_doc(8, 8.0, 100.0); // -33% < -25% tolerance
        let mut report = PerfReport::default();
        compare_documents("B.json", Some(&base), &cur, &opts(), &mut report);
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("speedup") && r.contains("-33.3%")));
        assert!(report.failed(true));
        assert!(!report.failed(false));
    }

    #[test]
    fn time_metrics_gate_only_on_matching_env() {
        let base = bench_doc(8, 12.0, 100.0);
        let slow = bench_doc(8, 12.0, 200.0);
        let mut report = PerfReport::default();
        compare_documents("B.json", Some(&base), &slow, &opts(), &mut report);
        assert!(report.regressions.iter().any(|r| r.contains("scan_nanos")));

        // Same slowdown on a different machine: noted, not gated.
        let other_env = bench_doc(4, 12.0, 200.0);
        let mut report = PerfReport::default();
        compare_documents("B.json", Some(&base), &other_env, &opts(), &mut report);
        assert!(report.regressions.is_empty());
        assert!(report.notes.iter().any(|n| n.contains("env fingerprint")));
    }

    #[test]
    fn missing_gated_metric_is_a_regression() {
        let base = bench_doc(8, 12.0, 100.0);
        let cur = bench_doc(8, 12.0, 100.0).replace("\"speedup\"", "\"renamed\"");
        let mut report = PerfReport::default();
        compare_documents("B.json", Some(&base), &cur, &opts(), &mut report);
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("speedup") && r.contains("missing")));
    }

    #[test]
    fn unusable_baselines_note_and_skip() {
        let cur = bench_doc(8, 1.0, 100.0);
        for baseline in [None, Some("not json"), Some(r#"{"reps":5}"#)] {
            let mut report = PerfReport::default();
            compare_documents("B.json", baseline, &cur, &opts(), &mut report);
            assert!(report.regressions.is_empty());
            assert!(report.problems.is_empty());
            assert_eq!(report.notes.len(), 1, "{:?}", report.notes);
        }
        // Zero baseline values cannot anchor a relative diff.
        let base = bench_doc(8, 12.0, 0.0);
        let mut report = PerfReport::default();
        compare_documents("B.json", Some(&base), &cur, &opts(), &mut report);
        assert!(report.notes.iter().any(|n| n.contains("cannot anchor")));
        // The huge speedup drop still gates.
        assert!(report.regressions.iter().any(|r| r.contains("speedup")));
    }
}
