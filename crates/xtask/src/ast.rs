//! A pragmatic Rust AST built on top of [`crate::lexer`].
//!
//! The PR-1 checks pattern-match flat token windows, which is sound for
//! needle-shaped invariants (`.unwrap()`, `Instant::now`) but cannot answer
//! expression-shaped questions: *what is being cast*, *is this statement's
//! value a discarded `Result`*, *do the two sides of this `+` carry the same
//! unit*, *is this closure the body of a rayon adapter*. Those need a tree.
//!
//! The workspace is fully offline (every external dependency is a vendored
//! stub), so `syn` is not available; this module is a hand-rolled
//! recursive-descent parser over the existing token stream instead. It is
//! *not* a full Rust grammar — it parses the item/statement/expression
//! subset this workspace actually uses, and on anything it cannot parse it
//! degrades to an [`ExprKind::Opaque`] node rather than failing, so checks
//! degrade to "no finding", never to a crash or a false parse. The checks in
//! [`crate::semantic`] are written against this guarantee.
//!
//! Every parsing loop consumes at least one token per iteration and
//! recursion is depth-limited, so the parser terminates on arbitrary input.

use crate::lexer::{Tok, Token};

/// Maximum expression nesting depth before the parser bails to
/// [`ExprKind::Opaque`]; real code in this workspace nests < 40 deep.
const MAX_DEPTH: u32 = 200;

/// A parsed source file: the flat list of its top-level items.
#[derive(Debug, Default)]
pub struct File {
    pub items: Vec<Item>,
}

/// One item. Only the kinds the checks reason about are represented
/// structurally; everything else (`use`, `struct`, `const`, …) is skipped.
#[derive(Debug)]
pub enum Item {
    Fn(FnItem),
    /// `impl [Trait for] Type { items }` — `self_ty` is the type text and
    /// `of_trait` distinguishes `impl Trait for Type` (and `trait` bodies,
    /// whose default methods are likewise obligations rather than API) from
    /// inherent impls.
    Impl {
        self_ty: String,
        of_trait: bool,
        items: Vec<Item>,
    },
    Mod {
        name: String,
        items: Vec<Item>,
    },
}

/// A function (free, impl method, or trait default method).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// `pub`/`pub(…)` present on the item.
    pub is_pub: bool,
    /// `#[must_use]` present on the item.
    pub must_use: bool,
    /// Parameters as `(pattern text, type text)` pairs, `self` receivers
    /// included (their type text is empty). The interval prover seeds
    /// value ranges from integer-typed parameters.
    pub params: Vec<(String, String)>,
    /// Return type text (`Result < Inserted , InsertError >`), `None` when
    /// the function returns `()`.
    pub ret: Option<String>,
    /// `None` for bodyless trait method declarations.
    pub body: Option<Block>,
    pub line: u32,
}

/// `{ stmts }` — the tail expression, if any, is the final
/// [`Stmt::Expr`] with `semi == false`.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat>[: ty] = init;` — `pat` is the raw pattern text.
    Let {
        pat: String,
        init: Option<Expr>,
        line: u32,
    },
    /// Expression statement; `semi` distinguishes `f();` from a tail `f()`.
    Expr { expr: Expr, semi: bool },
    /// A nested item (fn-in-fn, use-in-fn, …).
    Item(Box<Item>),
}

/// An expression with the 1-based line it starts on.
#[derive(Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

/// Expression shapes. Text fields hold space-joined token text — enough for
/// the checks, which only ever compare names, never re-parse.
#[derive(Debug)]
pub enum ExprKind {
    /// Path or lone identifier: `x`, `Timestamp::from_days`, `f64::MAX`.
    Path(String),
    Int(String),
    Float(String),
    Str,
    Char,
    Bool(bool),
    /// `callee(args)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    /// `recv.name::<turbofish>(args)`.
    Method {
        recv: Box<Expr>,
        name: String,
        turbofish: Option<String>,
        args: Vec<Expr>,
    },
    /// `base.name` — includes tuple fields (`name` = `"0"`).
    Field {
        base: Box<Expr>,
        name: String,
    },
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    Unary {
        op: &'static str,
        operand: Box<Expr>,
    },
    Binary {
        op: &'static str,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `lhs = rhs`, `lhs += rhs`, ….
    Assign {
        op: &'static str,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `operand as ty` — `ty` is the type text, e.g. `"f64"`.
    Cast {
        operand: Box<Expr>,
        ty: String,
    },
    /// `operand?`.
    Try(Box<Expr>),
    /// `&operand` / `&mut operand`.
    Ref(Box<Expr>),
    /// `|params| body` / `move |params| body`.
    Closure {
        body: Box<Expr>,
    },
    Block(Block),
    If {
        /// `if let <pat> = …` pattern text; `None` for a plain `if`.
        pat: Option<String>,
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    /// Arms are `(pattern text, arm expression)`.
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<(String, Expr)>,
    },
    While {
        /// `while let <pat> = …` pattern text; `None` for a plain `while`.
        pat: Option<String>,
        cond: Box<Expr>,
        body: Block,
    },
    ForLoop {
        /// Loop pattern text (`i`, `( k , v )`, …).
        pat: String,
        iter: Box<Expr>,
        body: Block,
    },
    Loop {
        body: Block,
    },
    Tuple(Vec<Expr>),
    Array(Vec<Expr>),
    /// `Path { field: expr, .. }` — field exprs only, names dropped.
    StructLit {
        path: String,
        fields: Vec<Expr>,
    },
    /// `name!(…)` — `args` is the best-effort parse of the interior as a
    /// comma-separated expression list (so casts inside `format!`/`assert!`
    /// bodies are still visible); unparseable interiors yield `Opaque`.
    MacroCall {
        name: String,
        args: Vec<Expr>,
    },
    Range {
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
    },
    Return(Option<Box<Expr>>),
    Break,
    Continue,
    /// Anything the parser does not understand. Checks must treat this as
    /// "unknown", never as evidence.
    Opaque,
}

/// Parse a (test-stripped) token stream into a [`File`]. Infallible by
/// design: malformed regions become `Opaque` nodes.
pub fn parse_file(tokens: &[Token]) -> File {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    File {
        items: p.parse_items(None),
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

const ASSIGN_OPS: [&str; 9] = ["=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|="];
const CMP_OPS: [&str; 6] = ["==", "!=", "<", ">", "<=", ">="];

/// Keywords that can never begin an operand, so a `<` after them is not a
/// comparison (irrelevant here) and an ident equal to one is not a path.
const EXPR_KEYWORDS: [&str; 12] = [
    "if", "match", "while", "for", "loop", "return", "break", "continue", "let", "else", "move",
    "unsafe",
];

impl<'a> Parser<'a> {
    fn tok(&self, k: usize) -> Option<&Tok> {
        self.toks.get(self.pos + k).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.line)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.tok(0), Some(Tok::Punct(s)) if *s == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.tok(0), Some(Tok::Ident(s)) if s == name)
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident_text(&self) -> Option<String> {
        match self.tok(0) {
            Some(Tok::Ident(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// Skip a balanced `open … close` group starting at the current token.
    /// Robust to truncation: stops at end of input.
    fn skip_group(&mut self, open: &str, close: &str) {
        if !self.eat_punct(open) {
            return;
        }
        let mut depth = 1u32;
        while !self.at_end() && depth > 0 {
            if self.at_punct(open) {
                depth += 1;
            } else if self.at_punct(close) {
                depth -= 1;
            }
            self.bump();
        }
    }

    /// Skip balanced angle brackets (`<…>`), treating `>>` as two closers.
    fn skip_angles(&mut self) {
        if !self.eat_punct("<") {
            return;
        }
        let mut depth = 1i32;
        while !self.at_end() && depth > 0 {
            if self.at_punct("<") || self.at_punct("<<") {
                depth += if self.at_punct("<<") { 2 } else { 1 };
            } else if self.at_punct(">") {
                depth -= 1;
            } else if self.at_punct(">>") {
                depth -= 2;
            } else if self.at_punct("->") || self.at_punct("=>") {
                // `->`/`=>` close nothing but contain `>`; plain skip.
            } else if self.at_punct("(") {
                self.skip_group("(", ")");
                continue;
            } else if self.at_punct("[") {
                self.skip_group("[", "]");
                continue;
            }
            self.bump();
        }
    }

    /// Skip one `#[…]` or `#![…]` attribute; report whether it was
    /// `#[must_use]`.
    fn skip_attr(&mut self) -> bool {
        let mut must_use = false;
        self.bump(); // '#'
        self.eat_punct("!");
        if self.at_punct("[") {
            if matches!(self.tok(1), Some(Tok::Ident(s)) if s == "must_use") {
                must_use = true;
            }
            self.skip_group("[", "]");
        }
        must_use
    }

    // -- items --------------------------------------------------------------

    /// Parse items until `closer` (or end of input). `closer` is `}` inside
    /// `mod`/`impl` bodies and `None` at top level.
    fn parse_items(&mut self, closer: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        let mut must_use = false;
        let mut is_pub = false;
        while !self.at_end() {
            if let Some(c) = closer {
                if self.at_punct(c) {
                    self.bump();
                    break;
                }
            }
            if self.at_punct("#") {
                must_use |= self.skip_attr();
                continue;
            }
            // Visibility qualifiers: remembered for the next `fn` item.
            if self.at_ident("pub") {
                self.bump();
                if self.at_punct("(") {
                    self.skip_group("(", ")");
                }
                is_pub = true;
                continue;
            }
            if self.at_ident("const") && matches!(self.tok(1), Some(Tok::Ident(s)) if s == "fn") {
                self.bump(); // `const fn` — fall through to `fn`
                continue;
            }
            if self.at_ident("async") || self.at_ident("unsafe") || self.at_ident("extern") {
                self.bump();
                continue;
            }
            if self.at_ident("fn") {
                items.push(Item::Fn(self.parse_fn(
                    std::mem::take(&mut must_use),
                    std::mem::take(&mut is_pub),
                )));
                continue;
            }
            if self.at_ident("impl") {
                must_use = false;
                is_pub = false;
                items.push(self.parse_impl());
                continue;
            }
            if self.at_ident("mod") && matches!(self.tok(1), Some(Tok::Ident(_))) {
                must_use = false;
                is_pub = false;
                self.bump();
                let name = self.ident_text().unwrap_or_default();
                self.bump();
                if self.at_punct("{") {
                    self.bump();
                    let inner = self.parse_items(Some("}"));
                    items.push(Item::Mod { name, items: inner });
                } else {
                    self.eat_punct(";");
                }
                continue;
            }
            if self.at_ident("trait") {
                // Default method bodies inside traits still matter for the
                // signature table; parse the trait body as an item list.
                must_use = false;
                is_pub = false;
                self.bump();
                while !self.at_end() && !self.at_punct("{") && !self.at_punct(";") {
                    if self.at_punct("<") {
                        self.skip_angles();
                    } else {
                        self.bump();
                    }
                }
                if self.at_punct("{") {
                    self.bump();
                    let inner = self.parse_items(Some("}"));
                    items.push(Item::Impl {
                        self_ty: String::new(),
                        of_trait: true,
                        items: inner,
                    });
                } else {
                    self.eat_punct(";");
                }
                continue;
            }
            // Anything else (`use`, `struct`, `enum`, `type`, `static`,
            // `const NAME`, `macro_rules!`, stray tokens): skip to the end of
            // the item — a `;` at depth 0 or a balanced `{…}` block. A stray
            // `}` with no enclosing body must still be consumed, or the loop
            // would stall on it.
            must_use = false;
            is_pub = false;
            if self.at_punct("}") {
                self.bump();
                continue;
            }
            self.skip_unknown_item();
        }
        items
    }

    fn skip_unknown_item(&mut self) {
        while !self.at_end() {
            if self.at_punct(";") {
                self.bump();
                return;
            }
            if self.at_punct("{") {
                self.skip_group("{", "}");
                return;
            }
            if self.at_punct("(") {
                self.skip_group("(", ")");
                continue;
            }
            if self.at_punct("[") {
                self.skip_group("[", "]");
                continue;
            }
            if self.at_punct("<") {
                self.skip_angles();
                continue;
            }
            if self.at_punct("}") {
                // Do not swallow the closer of an enclosing body.
                return;
            }
            self.bump();
        }
    }

    fn parse_fn(&mut self, must_use: bool, is_pub: bool) -> FnItem {
        let line = self.line();
        self.bump(); // `fn`
        let name = self.ident_text().unwrap_or_default();
        if !name.is_empty() {
            self.bump();
        }
        if self.at_punct("<") {
            self.skip_angles();
        }
        let params = if self.at_punct("(") {
            self.parse_params()
        } else {
            Vec::new()
        };
        let mut ret = None;
        if self.eat_punct("->") {
            ret = Some(self.capture_type_text(&["{", ";"], true));
        }
        if self.at_ident("where") {
            while !self.at_end() && !self.at_punct("{") && !self.at_punct(";") {
                if self.at_punct("<") {
                    self.skip_angles();
                } else {
                    self.bump();
                }
            }
        }
        let body = if self.at_punct("{") {
            self.bump();
            Some(self.parse_block_body())
        } else {
            self.eat_punct(";");
            None
        };
        FnItem {
            name,
            is_pub,
            must_use,
            params,
            ret,
            body,
            line,
        }
    }

    /// Parse a parenthesised parameter list into `(pattern, type)` text
    /// pairs, splitting entries on top-level commas and each entry on its
    /// first top-level `:`. A `self` receiver yields `("self", "")`-style
    /// entries (with any `&`/`mut` prefix folded into the pattern text).
    fn parse_params(&mut self) -> Vec<(String, String)> {
        let mut params = Vec::new();
        self.bump(); // `(`
        while !self.at_end() && !self.at_punct(")") {
            let start = self.pos;
            let mut colon: Option<usize> = None;
            let mut d = 0i32;
            while !self.at_end() {
                match self.tok(0) {
                    Some(Tok::Punct("(" | "[" | "{")) => {
                        d += 1;
                        self.bump();
                    }
                    Some(Tok::Punct(")" | "]" | "}")) => {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                        self.bump();
                    }
                    Some(Tok::Punct("<")) => self.skip_angles(),
                    Some(Tok::Punct(",")) if d == 0 => break,
                    Some(Tok::Punct(":")) if d == 0 && colon.is_none() => {
                        colon = Some(self.pos);
                        self.bump();
                    }
                    Some(_) => self.bump(),
                    None => break,
                }
            }
            let (pat, ty) = match colon {
                Some(c) => (self.slice_text(start, c), self.slice_text(c + 1, self.pos)),
                None => (self.slice_text(start, self.pos), String::new()),
            };
            if !pat.is_empty() {
                params.push((pat, ty));
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.eat_punct(")");
        params
    }

    fn parse_impl(&mut self) -> Item {
        self.bump(); // `impl`
        if self.at_punct("<") {
            self.skip_angles();
        }
        let mut ty = self.capture_type_text(&["{", "for", "where"], false);
        let mut of_trait = false;
        if self.eat_ident("for") {
            of_trait = true;
            ty = self.capture_type_text(&["{", "where"], false);
        }
        if self.at_ident("where") {
            while !self.at_end() && !self.at_punct("{") {
                if self.at_punct("<") {
                    self.skip_angles();
                } else {
                    self.bump();
                }
            }
        }
        let items = if self.at_punct("{") {
            self.bump();
            self.parse_items(Some("}"))
        } else {
            Vec::new()
        };
        Item::Impl {
            self_ty: ty,
            of_trait,
            items,
        }
    }

    /// Capture type text up to (not including) any of `stops` at bracket
    /// depth 0. `stops` entries are matched against punct text and, when
    /// alphabetic, against ident text.
    fn capture_type_text(&mut self, stops: &[&str], stop_at_where: bool) -> String {
        let mut out: Vec<String> = Vec::new();
        while !self.at_end() {
            if let Some(Tok::Punct(p)) = self.tok(0) {
                if stops.contains(p) {
                    break;
                }
                if *p == "<" {
                    let start = self.pos;
                    self.skip_angles();
                    out.push(self.slice_text(start, self.pos));
                    continue;
                }
                if *p == "(" {
                    let start = self.pos;
                    self.skip_group("(", ")");
                    out.push(self.slice_text(start, self.pos));
                    continue;
                }
                if *p == "[" {
                    let start = self.pos;
                    self.skip_group("[", "]");
                    out.push(self.slice_text(start, self.pos));
                    continue;
                }
                out.push((*p).to_string());
                self.bump();
                continue;
            }
            if let Some(Tok::Ident(s)) = self.tok(0) {
                if stops.contains(&s.as_str()) || (stop_at_where && s == "where") {
                    break;
                }
                out.push(s.clone());
                self.bump();
                continue;
            }
            // Lifetimes, literals in const generics, …
            let start = self.pos;
            self.bump();
            out.push(self.slice_text(start, self.pos));
        }
        out.join(" ")
    }

    /// Space-joined text of tokens in `[start, end)` — display/compare only.
    fn slice_text(&self, start: usize, end: usize) -> String {
        let mut out: Vec<&str> = Vec::new();
        let mut owned: Vec<String> = Vec::new();
        for t in self.toks.get(start..end).unwrap_or_default() {
            match &t.tok {
                Tok::Ident(s) | Tok::Int(s) | Tok::Float(s) => owned.push(s.clone()),
                Tok::Punct(p) => out.push(p),
                Tok::Str => out.push("\"…\""),
                Tok::Char => out.push("'…'"),
                Tok::Lifetime => out.push("'_"),
            }
        }
        // Interleave in original order: rebuild simply.
        let mut pieces: Vec<String> = Vec::new();
        let mut oi = 0usize;
        let mut pi = 0usize;
        for t in self.toks.get(start..end).unwrap_or_default() {
            match &t.tok {
                Tok::Ident(_) | Tok::Int(_) | Tok::Float(_) => {
                    if let Some(s) = owned.get(oi) {
                        pieces.push(s.clone());
                    }
                    oi += 1;
                }
                _ => {
                    if let Some(s) = out.get(pi) {
                        pieces.push((*s).to_string());
                    }
                    pi += 1;
                }
            }
        }
        pieces.join(" ")
    }

    // -- statements ---------------------------------------------------------

    /// Parse statements after an already-consumed `{`, up to and including
    /// the matching `}`.
    fn parse_block_body(&mut self) -> Block {
        let mut stmts = Vec::new();
        while !self.at_end() {
            if self.eat_punct("}") {
                break;
            }
            if self.eat_punct(";") {
                continue;
            }
            if self.at_punct("#") {
                self.skip_attr();
                continue;
            }
            if self.at_ident("let") {
                stmts.push(self.parse_let());
                continue;
            }
            // Nested items inside a function body.
            if self.at_ident("fn")
                || self.at_ident("use")
                || self.at_ident("struct")
                || self.at_ident("enum")
                || self.at_ident("impl")
                || (self.at_ident("mod") && matches!(self.tok(1), Some(Tok::Ident(_))))
            {
                if self.at_ident("fn") {
                    stmts.push(Stmt::Item(Box::new(Item::Fn(self.parse_fn(false, false)))));
                } else if self.at_ident("impl") {
                    stmts.push(Stmt::Item(Box::new(self.parse_impl())));
                } else {
                    self.skip_unknown_item();
                }
                continue;
            }
            let start = self.pos;
            let expr = self.parse_expr(0, false);
            if self.pos == start {
                // No progress: consume one token so the loop terminates.
                self.bump();
                continue;
            }
            let semi = self.eat_punct(";");
            stmts.push(Stmt::Expr { expr, semi });
        }
        Block { stmts }
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // `let`
                     // Capture the pattern (and optional type ascription) up to `=` or
                     // `;` at bracket depth 0. `==` cannot appear in pattern position.
        let start = self.pos;
        let mut depth = 0i32;
        while !self.at_end() {
            match self.tok(0) {
                Some(Tok::Punct(p)) => match *p {
                    "(" | "[" | "{" => {
                        depth += 1;
                        self.bump();
                    }
                    ")" | "]" | "}" => {
                        depth -= 1;
                        self.bump();
                    }
                    "<" => {
                        self.skip_angles();
                    }
                    "=" if depth == 0 => break,
                    ";" if depth == 0 => break,
                    _ => self.bump(),
                },
                Some(_) => self.bump(),
                None => break,
            }
        }
        let pat = self.slice_text(start, self.pos);
        let mut init = None;
        if self.eat_punct("=") {
            init = Some(self.parse_expr(0, false));
            // let-else: `let Some(x) = f() else { … };`
            if self.eat_ident("else") && self.at_punct("{") {
                self.bump();
                self.parse_block_body();
            }
        }
        self.eat_punct(";");
        Stmt::Let { pat, init, line }
    }

    // -- expressions ---------------------------------------------------------
    //
    // Precedence climbing. `min_bp` is the minimum binding power the next
    // operator must have; `no_struct` suppresses struct-literal parsing in
    // condition position (`if x { … }`).

    fn parse_expr(&mut self, depth: u32, no_struct: bool) -> Expr {
        if depth > MAX_DEPTH {
            let line = self.line();
            self.bump();
            return Expr {
                kind: ExprKind::Opaque,
                line,
            };
        }
        self.parse_assign(depth, no_struct)
    }

    fn parse_assign(&mut self, depth: u32, no_struct: bool) -> Expr {
        let lhs = self.parse_range(depth, no_struct);
        for op in ASSIGN_OPS {
            if self.at_punct(op) {
                let line = lhs.line;
                self.bump();
                let rhs = self.parse_expr(depth + 1, no_struct);
                return Expr {
                    kind: ExprKind::Assign {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    line,
                };
            }
        }
        lhs
    }

    fn parse_range(&mut self, depth: u32, no_struct: bool) -> Expr {
        if self.at_punct("..") || self.at_punct("..=") {
            let line = self.line();
            self.bump();
            let hi = if self.range_rhs_follows() {
                Some(Box::new(self.parse_binary(depth + 1, 0, no_struct)))
            } else {
                None
            };
            return Expr {
                kind: ExprKind::Range { lo: None, hi },
                line,
            };
        }
        let lo = self.parse_binary(depth, 0, no_struct);
        if self.at_punct("..") || self.at_punct("..=") {
            let line = lo.line;
            self.bump();
            let hi = if self.range_rhs_follows() {
                Some(Box::new(self.parse_binary(depth + 1, 0, no_struct)))
            } else {
                None
            };
            return Expr {
                kind: ExprKind::Range {
                    lo: Some(Box::new(lo)),
                    hi,
                },
                line,
            };
        }
        lo
    }

    fn range_rhs_follows(&self) -> bool {
        !matches!(
            self.tok(0),
            None | Some(Tok::Punct(")" | "]" | "}" | "," | ";" | "=>" | "{"))
        )
    }

    /// Binary operators by binding power (higher binds tighter).
    fn bin_power(&self, no_struct: bool) -> Option<(&'static str, u8)> {
        let p = match self.tok(0) {
            Some(Tok::Punct(p)) => *p,
            _ => return None,
        };
        let bp = match p {
            "||" => 1,
            "&&" => 2,
            _ if CMP_OPS.contains(&p) => 3,
            "|" => 4,
            "^" => 5,
            "&" => 6,
            "<<" | ">>" => 7,
            "+" | "-" => 8,
            "*" | "/" | "%" => 9,
            _ => return None,
        };
        // In no-struct position `<`/`>` are genuinely comparisons (we never
        // parse generic arguments at expression level except via `::<`).
        let _ = no_struct;
        Some((p, bp))
    }

    fn parse_binary(&mut self, depth: u32, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.parse_unary(depth, no_struct);
        while let Some((op, bp)) = self.bin_power(no_struct) {
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.parse_unary_then_binary(depth + 1, bp + 1, no_struct);
            let line = lhs.line;
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            };
        }
        lhs
    }

    fn parse_unary_then_binary(&mut self, depth: u32, min_bp: u8, no_struct: bool) -> Expr {
        if depth > MAX_DEPTH {
            let line = self.line();
            self.bump();
            return Expr {
                kind: ExprKind::Opaque,
                line,
            };
        }
        self.parse_binary(depth, min_bp, no_struct)
    }

    fn parse_unary(&mut self, depth: u32, no_struct: bool) -> Expr {
        if depth > MAX_DEPTH {
            let line = self.line();
            self.bump();
            return Expr {
                kind: ExprKind::Opaque,
                line,
            };
        }
        let line = self.line();
        if self.at_punct("&") || self.at_punct("&&") {
            let double = self.at_punct("&&");
            self.bump();
            self.eat_ident("mut");
            let mut inner = self.parse_unary(depth + 1, no_struct);
            if double {
                inner = Expr {
                    kind: ExprKind::Ref(Box::new(inner)),
                    line,
                };
            }
            return Expr {
                kind: ExprKind::Ref(Box::new(inner)),
                line,
            };
        }
        for op in ["!", "-", "*"] {
            if self.at_punct(op) {
                self.bump();
                let operand = self.parse_unary(depth + 1, no_struct);
                return Expr {
                    kind: ExprKind::Unary {
                        op,
                        operand: Box::new(operand),
                    },
                    line,
                };
            }
        }
        let mut expr = self.parse_primary(depth, no_struct);
        // Postfix: calls, method calls, field access, indexing, `?`, `as`.
        loop {
            if self.at_punct("(") {
                let args = self.parse_paren_args();
                let line = expr.line;
                expr = Expr {
                    kind: ExprKind::Call {
                        callee: Box::new(expr),
                        args,
                    },
                    line,
                };
                continue;
            }
            if self.at_punct("[") {
                self.bump();
                let index = self.parse_expr(depth + 1, false);
                self.eat_punct("]");
                let line = expr.line;
                expr = Expr {
                    kind: ExprKind::Index {
                        base: Box::new(expr),
                        index: Box::new(index),
                    },
                    line,
                };
                continue;
            }
            if self.at_punct("?") {
                self.bump();
                let line = expr.line;
                expr = Expr {
                    kind: ExprKind::Try(Box::new(expr)),
                    line,
                };
                continue;
            }
            if self.at_ident("as") {
                self.bump();
                let ty = self.capture_cast_type();
                let line = expr.line;
                expr = Expr {
                    kind: ExprKind::Cast {
                        operand: Box::new(expr),
                        ty,
                    },
                    line,
                };
                continue;
            }
            if self.at_punct(".") {
                let fline = self.toks.get(self.pos + 1).map_or(expr.line, |t| t.line);
                match self.tok(1) {
                    Some(Tok::Ident(name)) => {
                        let name = name.clone();
                        if name == "await" {
                            self.bump();
                            self.bump();
                            continue;
                        }
                        self.bump(); // '.'
                        self.bump(); // name
                        let mut turbofish = None;
                        if self.at_punct("::") && matches!(self.tok(1), Some(Tok::Punct("<"))) {
                            self.bump(); // '::'
                            let start = self.pos;
                            self.skip_angles();
                            turbofish = Some(self.slice_text(start, self.pos));
                        }
                        if self.at_punct("(") {
                            let args = self.parse_paren_args();
                            expr = Expr {
                                kind: ExprKind::Method {
                                    recv: Box::new(expr),
                                    name,
                                    turbofish,
                                    args,
                                },
                                line: fline,
                            };
                        } else {
                            expr = Expr {
                                kind: ExprKind::Field {
                                    base: Box::new(expr),
                                    name,
                                },
                                line: fline,
                            };
                        }
                        continue;
                    }
                    Some(Tok::Int(n)) => {
                        let name = n.clone();
                        self.bump();
                        self.bump();
                        expr = Expr {
                            kind: ExprKind::Field {
                                base: Box::new(expr),
                                name,
                            },
                            line: fline,
                        };
                        continue;
                    }
                    Some(Tok::Float(n)) => {
                        // `x.0.1` lexes the trailing `0.1` as a float; split
                        // it into two tuple-field accesses.
                        let name = n.clone();
                        self.bump();
                        self.bump();
                        for part in name.split('.') {
                            expr = Expr {
                                kind: ExprKind::Field {
                                    base: Box::new(expr),
                                    name: part.to_string(),
                                },
                                line: fline,
                            };
                        }
                        continue;
                    }
                    _ => break,
                }
            }
            break;
        }
        expr
    }

    /// Comma-separated expressions inside an already-present `( … )`.
    fn parse_paren_args(&mut self) -> Vec<Expr> {
        self.bump(); // '('
        let mut args = Vec::new();
        while !self.at_end() && !self.at_punct(")") {
            let start = self.pos;
            args.push(self.parse_expr(0, false));
            if self.pos == start {
                self.bump();
            }
            if !self.eat_punct(",") && !self.at_punct(")") {
                // Lost sync inside the argument list: skip to `,` or `)`.
                let mut depth = 0i32;
                while !self.at_end() {
                    match self.tok(0) {
                        Some(Tok::Punct("(" | "[" | "{")) => depth += 1,
                        Some(Tok::Punct(")" | "]" | "}")) if depth == 0 => break,
                        Some(Tok::Punct(")" | "]" | "}")) => depth -= 1,
                        Some(Tok::Punct(",")) if depth == 0 => break,
                        _ => {}
                    }
                    self.bump();
                }
                self.eat_punct(",");
            }
        }
        self.eat_punct(")");
        args
    }

    /// The type after `as` in a cast: a path with optional generic args.
    fn capture_cast_type(&mut self) -> String {
        let mut out: Vec<String> = Vec::new();
        while let Some(Tok::Ident(s)) = self.tok(0) {
            out.push(s.clone());
            self.bump();
            if self.at_punct("<") {
                let start = self.pos;
                self.skip_angles();
                out.push(self.slice_text(start, self.pos));
            }
            if self.at_punct("::") {
                out.push("::".to_string());
                self.bump();
                continue;
            }
            break;
        }
        out.join("")
    }

    fn parse_primary(&mut self, depth: u32, no_struct: bool) -> Expr {
        let line = self.line();
        let kind = 'k: {
            match self.tok(0) {
                Some(Tok::Int(n)) => {
                    let n = n.clone();
                    self.bump();
                    break 'k ExprKind::Int(n);
                }
                Some(Tok::Float(n)) => {
                    let n = n.clone();
                    self.bump();
                    break 'k ExprKind::Float(n);
                }
                Some(Tok::Str) => {
                    self.bump();
                    break 'k ExprKind::Str;
                }
                Some(Tok::Char) => {
                    self.bump();
                    break 'k ExprKind::Char;
                }
                Some(Tok::Lifetime) => {
                    // Loop label: `'a: loop { … }` — skip label and colon.
                    self.bump();
                    self.eat_punct(":");
                    return self.parse_primary(depth, no_struct);
                }
                _ => {}
            }

            if self.at_punct("(") {
                self.bump();
                let mut items = Vec::new();
                let mut trailing_comma = false;
                while !self.at_end() && !self.at_punct(")") {
                    let start = self.pos;
                    items.push(self.parse_expr(depth + 1, false));
                    if self.pos == start {
                        self.bump();
                    }
                    trailing_comma = self.eat_punct(",");
                }
                self.eat_punct(")");
                break 'k if items.len() == 1 && !trailing_comma {
                    match items.pop() {
                        Some(e) => e.kind,
                        None => ExprKind::Opaque,
                    }
                } else {
                    ExprKind::Tuple(items)
                };
            }
            if self.at_punct("[") {
                self.bump();
                let mut items = Vec::new();
                while !self.at_end() && !self.at_punct("]") {
                    let start = self.pos;
                    items.push(self.parse_expr(depth + 1, false));
                    if self.pos == start {
                        self.bump();
                    }
                    if !self.eat_punct(",") {
                        self.eat_punct(";"); // `[expr; len]`
                    }
                }
                self.eat_punct("]");
                break 'k ExprKind::Array(items);
            }
            if self.at_punct("{") {
                self.bump();
                break 'k ExprKind::Block(self.parse_block_body());
            }
            if self.at_punct("|") || self.at_punct("||") {
                break 'k self.parse_closure(depth);
            }
            if self.at_ident("move") {
                self.bump();
                if self.at_punct("|") || self.at_punct("||") {
                    break 'k self.parse_closure(depth);
                }
                if self.at_punct("{") {
                    self.bump();
                    break 'k ExprKind::Block(self.parse_block_body());
                }
                break 'k ExprKind::Opaque;
            }
            if self.at_punct("<") {
                // Qualified path `<T as Trait>::method`: skip the qualifier,
                // parse the rest as a path expression.
                self.skip_angles();
                if self.at_punct("::") {
                    self.bump();
                    break 'k self.parse_path_or_struct(depth, no_struct, "<_>".to_string());
                }
                break 'k ExprKind::Opaque;
            }
            if self.at_ident("if") {
                self.bump();
                break 'k self.parse_if(depth);
            }
            if self.at_ident("match") {
                self.bump();
                break 'k self.parse_match(depth);
            }
            if self.at_ident("while") {
                self.bump();
                let pat = if self.eat_ident("let") {
                    let p = self.skip_pattern_until_eq();
                    self.eat_punct("=");
                    Some(p)
                } else {
                    None
                };
                let cond = self.parse_expr(depth + 1, true);
                let body = if self.eat_punct("{") {
                    self.parse_block_body()
                } else {
                    Block::default()
                };
                break 'k ExprKind::While {
                    pat,
                    cond: Box::new(cond),
                    body,
                };
            }
            if self.at_ident("for") {
                self.bump();
                // Pattern up to `in` at depth 0.
                let start = self.pos;
                while !self.at_end() && !self.at_ident("in") {
                    match self.tok(0) {
                        Some(Tok::Punct("(")) => self.skip_group("(", ")"),
                        Some(Tok::Punct("[")) => self.skip_group("[", "]"),
                        _ => self.bump(),
                    }
                }
                let pat = self.slice_text(start, self.pos);
                self.eat_ident("in");
                let iter = self.parse_expr(depth + 1, true);
                let body = if self.eat_punct("{") {
                    self.parse_block_body()
                } else {
                    Block::default()
                };
                break 'k ExprKind::ForLoop {
                    pat,
                    iter: Box::new(iter),
                    body,
                };
            }
            if self.at_ident("loop") {
                self.bump();
                let body = if self.eat_punct("{") {
                    self.parse_block_body()
                } else {
                    Block::default()
                };
                break 'k ExprKind::Loop { body };
            }
            if self.at_ident("unsafe") {
                self.bump();
                if self.eat_punct("{") {
                    break 'k ExprKind::Block(self.parse_block_body());
                }
                break 'k ExprKind::Opaque;
            }
            if self.at_ident("return") {
                self.bump();
                let value = if self.expr_follows() {
                    Some(Box::new(self.parse_expr(depth + 1, no_struct)))
                } else {
                    None
                };
                break 'k ExprKind::Return(value);
            }
            if self.at_ident("break") {
                self.bump();
                if matches!(self.tok(0), Some(Tok::Lifetime)) {
                    self.bump();
                }
                if self.expr_follows() {
                    let _ = self.parse_expr(depth + 1, no_struct);
                }
                break 'k ExprKind::Break;
            }
            if self.at_ident("continue") {
                self.bump();
                if matches!(self.tok(0), Some(Tok::Lifetime)) {
                    self.bump();
                }
                break 'k ExprKind::Continue;
            }
            if self.at_ident("true") || self.at_ident("false") {
                let v = self.at_ident("true");
                self.bump();
                break 'k ExprKind::Bool(v);
            }
            if let Some(name) = self.ident_text() {
                if EXPR_KEYWORDS.contains(&name.as_str()) {
                    // A keyword we failed to handle above: opaque, consume.
                    self.bump();
                    break 'k ExprKind::Opaque;
                }
                self.bump();
                break 'k self.parse_path_or_struct(depth, no_struct, name);
            }
            // Unknown token: consume it so the caller makes progress.
            self.bump();
            ExprKind::Opaque
        };
        Expr { kind, line }
    }

    fn expr_follows(&self) -> bool {
        !matches!(
            self.tok(0),
            None | Some(Tok::Punct(";" | "," | ")" | "]" | "}"))
        )
    }

    /// Continue a path that began with `first`; decide macro call, struct
    /// literal, or plain path.
    fn parse_path_or_struct(&mut self, depth: u32, no_struct: bool, first: String) -> ExprKind {
        let mut path = first;
        loop {
            if self.at_punct("::") {
                match self.tok(1) {
                    Some(Tok::Ident(seg)) => {
                        path.push_str("::");
                        path.push_str(&seg.clone());
                        self.bump();
                        self.bump();
                        continue;
                    }
                    Some(Tok::Punct("<")) => {
                        self.bump();
                        self.skip_angles();
                        continue;
                    }
                    _ => break,
                }
            }
            break;
        }
        if self.at_punct("!") {
            // Macro call: `name!(…)` / `name![…]` / `name!{…}`. Parse the
            // interior as a best-effort comma/semicolon-separated expression
            // list so casts inside macro bodies stay visible.
            self.bump();
            let (open, close) = if self.at_punct("(") {
                ("(", ")")
            } else if self.at_punct("[") {
                ("[", "]")
            } else if self.at_punct("{") {
                ("{", "}")
            } else {
                return ExprKind::MacroCall {
                    name: path,
                    args: Vec::new(),
                };
            };
            self.bump();
            let mut args = Vec::new();
            while !self.at_end() && !self.at_punct(close) {
                let start = self.pos;
                args.push(self.parse_expr(depth + 1, false));
                if self.pos == start {
                    self.bump();
                }
                if !self.eat_punct(",") && !self.eat_punct(";") && !self.at_punct(close) {
                    // Token soup (e.g. `matches!` patterns): skip to the next
                    // separator at depth 0.
                    let mut d = 0i32;
                    while !self.at_end() {
                        match self.tok(0) {
                            Some(Tok::Punct(p)) if *p == open || matches!(*p, "(" | "[" | "{") => {
                                d += 1;
                            }
                            Some(Tok::Punct(p)) if matches!(*p, ")" | "]" | "}") => {
                                if d == 0 {
                                    break;
                                }
                                d -= 1;
                            }
                            Some(Tok::Punct("," | ";")) if d == 0 => break,
                            _ => {}
                        }
                        self.bump();
                    }
                    self.eat_punct(",");
                    self.eat_punct(";");
                }
            }
            self.eat_punct(close);
            return ExprKind::MacroCall { name: path, args };
        }
        if self.at_punct("{") && !no_struct && self.looks_like_struct_lit() {
            self.bump();
            let mut fields = Vec::new();
            while !self.at_end() && !self.at_punct("}") {
                if self.at_punct("..") {
                    self.bump();
                    let start = self.pos;
                    fields.push(self.parse_expr(depth + 1, false));
                    if self.pos == start {
                        self.bump();
                    }
                    break;
                }
                // `name: expr` or shorthand `name`.
                if matches!(self.tok(0), Some(Tok::Ident(_)))
                    && matches!(self.tok(1), Some(Tok::Punct(":")))
                {
                    self.bump();
                    self.bump();
                    let start = self.pos;
                    fields.push(self.parse_expr(depth + 1, false));
                    if self.pos == start {
                        self.bump();
                    }
                } else {
                    let start = self.pos;
                    fields.push(self.parse_expr(depth + 1, false));
                    if self.pos == start {
                        self.bump();
                    }
                }
                self.eat_punct(",");
            }
            self.eat_punct("}");
            return ExprKind::StructLit { path, fields };
        }
        ExprKind::Path(path)
    }

    /// Distinguish `Path { field: …, }` struct literals from a path followed
    /// by a block: a struct literal's first tokens are `}`/`ident :`/
    /// `ident ,`/`ident }`/`..`.
    fn looks_like_struct_lit(&self) -> bool {
        matches!(
            (self.tok(1), self.tok(2)),
            (Some(Tok::Punct("}" | "..")), _)
                | (Some(Tok::Ident(_)), Some(Tok::Punct(":" | "," | "}")))
        )
    }

    fn parse_closure(&mut self, depth: u32) -> ExprKind {
        if self.eat_punct("||") {
            // zero-parameter closure
        } else {
            self.bump(); // opening '|'
            let mut d = 0i32;
            while !self.at_end() {
                match self.tok(0) {
                    Some(Tok::Punct("(" | "[" | "<")) => {
                        if self.at_punct("<") {
                            self.skip_angles();
                            continue;
                        }
                        d += 1;
                        self.bump();
                    }
                    Some(Tok::Punct(")" | "]")) => {
                        d -= 1;
                        self.bump();
                    }
                    Some(Tok::Punct("|")) if d == 0 => {
                        self.bump();
                        break;
                    }
                    Some(_) => self.bump(),
                    None => break,
                }
            }
        }
        if self.eat_punct("->") {
            let _ = self.capture_type_text(&["{"], false);
        }
        let body = self.parse_expr(depth + 1, false);
        ExprKind::Closure {
            body: Box::new(body),
        }
    }

    fn parse_if(&mut self, depth: u32) -> ExprKind {
        let pat = if self.eat_ident("let") {
            let p = self.skip_pattern_until_eq();
            self.eat_punct("=");
            Some(p)
        } else {
            None
        };
        let cond = self.parse_expr(depth + 1, true);
        let then = if self.eat_punct("{") {
            self.parse_block_body()
        } else {
            Block::default()
        };
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                let line = self.line();
                self.bump();
                Some(Box::new(Expr {
                    kind: self.parse_if(depth + 1),
                    line,
                }))
            } else if self.eat_punct("{") {
                let line = self.line();
                Some(Box::new(Expr {
                    kind: ExprKind::Block(self.parse_block_body()),
                    line,
                }))
            } else {
                None
            }
        } else {
            None
        };
        ExprKind::If {
            pat,
            cond: Box::new(cond),
            then,
            els,
        }
    }

    fn parse_match(&mut self, depth: u32) -> ExprKind {
        let scrutinee = self.parse_expr(depth + 1, true);
        let mut arms = Vec::new();
        if self.eat_punct("{") {
            while !self.at_end() && !self.at_punct("}") {
                // Pattern (with optional guard) up to `=>` at depth 0.
                let start = self.pos;
                let mut d = 0i32;
                while !self.at_end() {
                    match self.tok(0) {
                        Some(Tok::Punct("(" | "[" | "{")) => {
                            d += 1;
                            self.bump();
                        }
                        Some(Tok::Punct(")" | "]" | "}")) => {
                            if d == 0 {
                                break;
                            }
                            d -= 1;
                            self.bump();
                        }
                        Some(Tok::Punct("=>")) if d == 0 => break,
                        Some(_) => self.bump(),
                        None => break,
                    }
                }
                let pat = self.slice_text(start, self.pos);
                if !self.eat_punct("=>") {
                    break;
                }
                let pstart = self.pos;
                let value = self.parse_expr(depth + 1, false);
                if self.pos == pstart {
                    self.bump();
                }
                arms.push((pat, value));
                self.eat_punct(",");
            }
            self.eat_punct("}");
        }
        ExprKind::Match {
            scrutinee: Box::new(scrutinee),
            arms,
        }
    }

    /// Inside `if let` / `while let`: skip the pattern up to the `=`,
    /// returning its text (the interval prover must see the bindings it
    /// introduces, or a shadowed name could keep a stale range).
    fn skip_pattern_until_eq(&mut self) -> String {
        let start = self.pos;
        let mut d = 0i32;
        while !self.at_end() {
            match self.tok(0) {
                Some(Tok::Punct("(" | "[" | "{")) => {
                    d += 1;
                    self.bump();
                }
                Some(Tok::Punct(")" | "]" | "}")) => {
                    d -= 1;
                    self.bump();
                }
                Some(Tok::Punct("=")) if d == 0 => break,
                Some(_) => self.bump(),
                None => break,
            }
        }
        self.slice_text(start, self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> File {
        parse_file(&lex(src).tokens)
    }

    fn first_fn(file: &File) -> &FnItem {
        for item in &file.items {
            if let Item::Fn(f) = item {
                return f;
            }
        }
        panic!("no fn item parsed");
    }

    fn casts(src: &str) -> Vec<String> {
        let file = parse(src);
        let mut out = Vec::new();
        crate::visit::visit_file(&file, &mut |e| {
            if let ExprKind::Cast { ty, .. } = &e.kind {
                out.push(ty.clone());
            }
        });
        out
    }

    #[test]
    fn fn_signature_is_captured() {
        let file = parse("#[must_use]\npub fn f(x: u32) -> Result<u32, Error> { Ok(x) }");
        let f = first_fn(&file);
        assert_eq!(f.name, "f");
        assert!(f.is_pub);
        assert!(f.must_use);
        assert!(f.ret.as_deref().unwrap_or("").starts_with("Result"));
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_methods_are_nested_items() {
        let file = parse("impl Foo { fn m(&self) -> Result<(), E> { Ok(()) } }");
        let Some(Item::Impl {
            self_ty,
            of_trait,
            items,
        }) = file.items.first()
        else {
            panic!("expected impl item");
        };
        assert_eq!(self_ty, "Foo");
        assert!(!of_trait);
        assert!(matches!(items.first(), Some(Item::Fn(f)) if f.name == "m"));
    }

    #[test]
    fn casts_are_found_in_plain_and_macro_context() {
        assert_eq!(casts("fn f(x: i64) -> f64 { x as f64 }"), vec!["f64"]);
        assert_eq!(
            casts("fn f(n: usize) { println!(\"{}\", n as u64); }"),
            vec!["u64"]
        );
        assert_eq!(
            casts("fn f(a: u8, b: u8) -> u32 { (a as u32) << (b as u32) }"),
            vec!["u32", "u32"]
        );
    }

    #[test]
    fn cast_binds_tighter_than_arithmetic() {
        let file = parse("fn f(x: i64, y: i64) -> f64 { x as f64 / y as f64 }");
        let f = first_fn(&file);
        let Some(Stmt::Expr { expr, semi: false }) = f.body.as_ref().and_then(|b| b.stmts.first())
        else {
            panic!("expected tail expr");
        };
        let ExprKind::Binary { op, lhs, rhs } = &expr.kind else {
            panic!("expected binary, got {:?}", expr.kind);
        };
        assert_eq!(*op, "/");
        assert!(matches!(lhs.kind, ExprKind::Cast { .. }));
        assert!(matches!(rhs.kind, ExprKind::Cast { .. }));
    }

    #[test]
    fn let_underscore_and_method_chains() {
        let file = parse("fn f(fs: &mut Vfs) { let _ = fs.create(1); }");
        let f = first_fn(&file);
        let Some(Stmt::Let { pat, init, .. }) = f.body.as_ref().and_then(|b| b.stmts.first())
        else {
            panic!("expected let");
        };
        assert_eq!(pat, "_");
        let Some(Expr {
            kind: ExprKind::Method { name, .. },
            ..
        }) = init.as_ref()
        else {
            panic!("expected method call init");
        };
        assert_eq!(name, "create");
    }

    #[test]
    fn struct_literal_vs_condition_block() {
        // `if x { 1 } else { 2 }` must not parse `x { 1 }` as a struct lit.
        let file = parse("fn f(x: bool) -> u32 { if x { 1 } else { 2 } }");
        let f = first_fn(&file);
        let Some(Stmt::Expr { expr, .. }) = f.body.as_ref().and_then(|b| b.stmts.first()) else {
            panic!("expected expr");
        };
        assert!(matches!(expr.kind, ExprKind::If { .. }));

        let file = parse("fn g() -> P { P { x: 1, y: 2 } }");
        let g = first_fn(&file);
        let Some(Stmt::Expr { expr, .. }) = g.body.as_ref().and_then(|b| b.stmts.first()) else {
            panic!("expected expr");
        };
        assert!(matches!(expr.kind, ExprKind::StructLit { .. }));
    }

    #[test]
    fn closures_and_turbofish() {
        let file = parse("fn f(v: Vec<f64>) -> f64 { v.iter().map(|x| x * 2.0).sum::<f64>() }");
        let f = first_fn(&file);
        let Some(Stmt::Expr { expr, .. }) = f.body.as_ref().and_then(|b| b.stmts.first()) else {
            panic!("expected expr");
        };
        let ExprKind::Method {
            name, turbofish, ..
        } = &expr.kind
        else {
            panic!("expected method");
        };
        assert_eq!(name, "sum");
        assert!(turbofish.as_deref().unwrap_or("").contains("f64"));
    }

    #[test]
    fn match_arms_parse() {
        let src = "fn f(k: K) -> u32 { match k { K::A => 1, K::B { x } => x, _ => 0 } }";
        let file = parse(src);
        let f = first_fn(&file);
        let Some(Stmt::Expr { expr, .. }) = f.body.as_ref().and_then(|b| b.stmts.first()) else {
            panic!("expected expr");
        };
        let ExprKind::Match { arms, .. } = &expr.kind else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms.get(2).map(|(p, _)| p.as_str()), Some("_"));
    }

    #[test]
    fn malformed_input_degrades_to_opaque_not_panic() {
        // Nothing here is valid Rust; the parser must terminate quietly.
        for src in [
            "fn f( { ) } ] =>",
            "fn f() { let = ; }",
            "impl { fn }",
            "fn f() { x. }",
            "@@@@ fn g() {} @@@@",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn deep_nesting_terminates() {
        let mut src = String::from("fn f() -> u32 { ");
        for _ in 0..500 {
            src.push('(');
        }
        src.push('1');
        for _ in 0..500 {
            src.push(')');
        }
        src.push_str(" }");
        let _ = parse(&src);
    }
}
