//! `cargo xtask` — workspace automation entry point.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::runner::{self, Config};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  check                 run all invariant checks
    --update-baseline   rewrite the machine-maintained ratchet files
                        (panic-freedom, cast-audit, panic-reachability,
                        dead-api, changelog census, alloc-hot-path,
                        loop-complexity; the hand-audited
                        determinism-exemptions.txt is never rewritten)
    --only <names>      comma-separated subset of checks to run
    --list              print the check names, one per line, and exit
    --root <dir>        workspace root (default: this repository)
    --json              print one JSON object per finding (check, file,
                        line, message), one per line, instead of the
                        human-readable report
    --timings           print a per-phase wall-time table after the report
    --explain-cast <file:line>
                        print the interval prover's derived operand range
                        for every numeric cast at that site
                        Environment: XTASK_THREADS caps the worker pool;
                        XTASK_CHECK_BUDGET_SECS fails the run if it takes
                        longer than the given wall-time budget; GitHub
                        annotations are emitted when GITHUB_ACTIONS is set
  smoke                 run the release-mode perf/equivalence smoke gates:
                        the catalog-mode equivalence test, the perf watchdog
                        in --check mode (reruns both benches and diffs the
                        rewritten BENCH_*.json against the checked-in
                        baselines), a telemetry-enabled streaming Tiny
                        replay whose telemetry.json, trace export, and
                        JSONL stream are schema-validated, and a bounded
                        differential fuzz pass
  perf                  rerun bench_catalog + bench_obs and diff the
                        rewritten docs/results/BENCH_*.json against the
                        checked-in baselines (read before the rerun).
                        Ratio metrics gate everywhere; time metrics only
                        when the env fingerprint matches; info never.
    --check             exit nonzero on regressions beyond tolerance
                        (schema violations always fail)
    --no-run            skip the benches, diff the existing files
    --tolerance <pct>   allowed adverse change, percent (default 50)
    --results <dir>     where the benches write (default docs/results)
    --baseline <dir>    where baselines are read (default: --results)
  fuzz                  run the model-based differential fuzzing oracle
                        (crates/oracle) in release mode
    --seeds <N>         number of seeds (default 32)
    --start <S>         first seed (default 0)
  help                  show this message

Checks: panic-freedom, newtype, dispatch, float-cmp, determinism,
        cast-audit, ignored-result, unit-safety, par-determinism,
        determinism-taint, changelog-completeness, panic-reachability,
        dead-api, cast-proof, alloc-hot-path, loop-complexity

CI runs `check --json` on every push (32-seed fuzz); the scheduled /
XTASK_DEEP=1 deep pass adds a 256-seed fuzz run.
";

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

/// Run one `cargo` invocation from the workspace root, reporting any
/// spawn failure or non-zero exit.
fn cargo_step(args: &[&str]) -> Result<(), String> {
    eprintln!("xtask: cargo {}", args.join(" "));
    let status = std::process::Command::new("cargo")
        .args(args)
        .current_dir(workspace_root())
        .status();
    match status {
        Ok(s) if s.success() => Ok(()),
        Ok(s) => Err(format!("cargo {} failed with {s}", args.join(" "))),
        Err(e) => Err(format!("failed to spawn cargo: {e}")),
    }
}

/// Read a smoke artifact and run a validator over it, flattening any
/// finding list into one error message.
fn validate_file(
    path: &std::path::Path,
    validate: fn(&str) -> Result<(), Vec<String>>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    validate(&text).map_err(|problems| {
        format!(
            "{} is malformed:\n  {}",
            path.display(),
            problems.join("\n  ")
        )
    })
}

/// The release-mode smoke gates: the trigger-by-trigger catalog-mode
/// equivalence test (all four policies, `Small` scale), the perf
/// watchdog in `--check` mode (reruns `bench_catalog` + `bench_obs` +
/// `bench_wal` — whose own hard floors still apply — and diffs the
/// rewritten `docs/results/BENCH_*.json` against the checked-in
/// baselines), a telemetry-enabled streaming Tiny replay through the
/// real CLI whose `telemetry.json`, trace export, and JSONL stream are
/// then schema-validated in process, a durable (`--wal-dir`) Tiny
/// replay whose `wal.log` is frame-validated against the documented
/// on-disk format, and a bounded differential fuzz pass.
fn smoke() -> ExitCode {
    let telemetry_path = workspace_root().join("target").join("smoke-telemetry.json");
    let trace_path = workspace_root()
        .join("target")
        .join("smoke-telemetry.trace.json");
    let stream_path = workspace_root()
        .join("target")
        .join("smoke-telemetry.jsonl");
    let wal_dir = workspace_root().join("target").join("smoke-wal");
    let telemetry_arg = telemetry_path.display().to_string();
    let stream_arg = stream_path.display().to_string();
    let wal_arg = wal_dir.display().to_string();
    // Cold-start the durable replay: stale state from an earlier smoke
    // run would turn it into a recovery run instead.
    std::fs::remove_dir_all(&wal_dir).ok();

    if let Err(msg) = cargo_step(&[
        "test",
        "--release",
        "-q",
        "-p",
        "activedr-sim",
        "--test",
        "integration_catalog_mode",
    ]) {
        eprintln!("xtask smoke: {msg}");
        return ExitCode::FAILURE;
    }

    let mut perf_opts = xtask::perf::PerfOptions::new(&workspace_root());
    perf_opts.check = true;
    match xtask::perf::run(&perf_opts, &mut cargo_step) {
        Ok(report) => {
            eprint!("{}", report.render());
            if report.failed(perf_opts.check) {
                eprintln!("xtask smoke: perf watchdog failed");
                return ExitCode::FAILURE;
            }
        }
        Err(msg) => {
            eprintln!("xtask smoke: {msg}");
            return ExitCode::FAILURE;
        }
    }

    let steps: [&[&str]; 3] = [
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "activedr-cli",
            "--",
            "simulate",
            "--scale",
            "tiny",
            "--lifetime",
            "30",
            "--telemetry",
            &telemetry_arg,
            "--telemetry-stream",
            &stream_arg,
            "--telemetry-every",
            "7",
        ],
        // Durable replay: write-ahead logged catalog with periodic
        // checkpoints; the produced wal.log is frame-validated below.
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "activedr-cli",
            "--",
            "simulate",
            "--scale",
            "tiny",
            "--lifetime",
            "30",
            "--wal-dir",
            &wal_arg,
            "--checkpoint-every",
            "2",
        ],
        // Bounded differential fuzz pass: every seed replays an op tape
        // through the reference model and the real engine matrix.
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "activedr-oracle",
            "--bin",
            "fuzz",
            "--",
            "--seeds",
            "32",
        ],
    ];
    for args in steps {
        if let Err(msg) = cargo_step(args) {
            eprintln!("xtask smoke: {msg}");
            return ExitCode::FAILURE;
        }
    }
    let validations = [
        (
            &telemetry_path,
            xtask::telemetry::validate_telemetry as fn(&str) -> Result<(), Vec<String>>,
        ),
        (&trace_path, xtask::telemetry::validate_trace),
        (&stream_path, xtask::telemetry::validate_jsonl),
    ];
    for (path, validate) in validations {
        if let Err(msg) = validate_file(path, validate) {
            eprintln!("xtask smoke: {msg}");
            return ExitCode::FAILURE;
        }
        eprintln!("xtask smoke: {} validated", path.display());
    }
    let wal_path = wal_dir.join("wal.log");
    match std::fs::read(&wal_path) {
        Ok(bytes) => {
            if let Err(problems) = xtask::telemetry::validate_wal(&bytes) {
                eprintln!(
                    "xtask smoke: {} is malformed:\n  {}",
                    wal_path.display(),
                    problems.join("\n  ")
                );
                return ExitCode::FAILURE;
            }
            eprintln!("xtask smoke: {} validated", wal_path.display());
        }
        Err(e) => {
            eprintln!(
                "xtask smoke: durable replay left no {}: {e}",
                wal_path.display()
            );
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask smoke: all gates passed");
    ExitCode::SUCCESS
}

/// The `perf` subcommand: parse flags, run the watchdog, print the
/// comparison report.
fn perf_cmd(rest: &[String]) -> ExitCode {
    let mut opts = xtask::perf::PerfOptions::new(&workspace_root());
    let mut baseline_set = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => opts.check = true,
            "--no-run" => opts.no_run = true,
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct.is_finite() && pct >= 0.0 => opts.tolerance_pct = pct,
                _ => {
                    eprintln!("--tolerance needs a non-negative percentage\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--results" => match it.next() {
                Some(dir) => opts.results_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--results needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match it.next() {
                Some(dir) => {
                    opts.baseline_dir = PathBuf::from(dir);
                    baseline_set = true;
                }
                None => {
                    eprintln!("--baseline needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !baseline_set {
        opts.baseline_dir = opts.results_dir.clone();
    }
    match xtask::perf::run(&opts, &mut cargo_step) {
        Ok(report) => {
            print!("{}", report.render());
            if report.failed(opts.check) {
                eprintln!("xtask perf: gate failed");
                ExitCode::FAILURE
            } else {
                eprintln!("xtask perf: ok");
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("xtask perf: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Delegate to the oracle's release-mode fuzz binary, forwarding
/// `--seeds`/`--start` verbatim (the binary validates them).
fn fuzz(rest: &[String]) -> ExitCode {
    let mut args: Vec<&str> = vec![
        "run",
        "--release",
        "-q",
        "-p",
        "activedr-oracle",
        "--bin",
        "fuzz",
        "--",
    ];
    args.extend(rest.iter().map(String::as_str));
    match cargo_step(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("xtask fuzz: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("smoke") => return smoke(),
        Some("perf") => return perf_cmd(it.as_slice()),
        Some("fuzz") => return fuzz(it.as_slice()),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        // A bare `cargo xtask` is almost always a typo'd CI line; succeeding
        // silently would make the invariant gate vacuous.
        None => {
            eprint!("missing command\n{USAGE}");
            return ExitCode::FAILURE;
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    let mut cfg = Config {
        root: workspace_root(),
        ..Config::default()
    };
    let mut json = false;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--update-baseline" => cfg.update_baseline = true,
            "--json" => json = true,
            "--timings" => cfg.timings = true,
            "--list" => {
                for name in xtask::checks::CHECK_NAMES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--explain-cast" => match it.next() {
                Some(site) => cfg.explain_cast = Some(site.clone()),
                None => {
                    eprintln!("--explain-cast needs a <file>:<line> site\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--only" => match it.next() {
                Some(names) => {
                    cfg.only = Some(names.split(',').map(|s| s.trim().to_string()).collect());
                }
                None => {
                    eprintln!("--only needs a comma-separated list of checks\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--root" => match it.next() {
                Some(dir) => cfg.root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    match runner::run(&cfg) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
                eprint!("{}", report.render());
            } else {
                print!("{}", report.render());
            }
            // `::error` workflow commands become inline annotations on the
            // offending lines of the pull request.
            if std::env::var_os("GITHUB_ACTIONS").is_some() {
                for v in &report.errors {
                    println!(
                        "::error file={},line={},title=xtask {}::{}",
                        v.file,
                        v.line.max(1),
                        v.check,
                        v.message.replace('%', "%25").replace('\n', "%0A")
                    );
                }
            }
            // Wall-time budget: catches the analysis quietly growing
            // superlinear as the workspace scales (CI sets the ceiling).
            let over_budget = std::env::var("XTASK_CHECK_BUDGET_SECS")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|budget| report.elapsed_ms > budget.saturating_mul(1000));
            if over_budget {
                eprintln!(
                    "xtask: check took {} ms, over the XTASK_CHECK_BUDGET_SECS budget",
                    report.elapsed_ms
                );
                return ExitCode::FAILURE;
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::FAILURE
        }
    }
}
