//! `cargo xtask` — workspace automation entry point.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::runner::{self, Config};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  check                 run all invariant checks
    --update-baseline   rewrite the panic-freedom and cast-audit ratchet files
    --only <names>      comma-separated subset of checks to run
    --root <dir>        workspace root (default: this repository)
  smoke                 run the release-mode perf/equivalence smoke gates:
                        the catalog-mode equivalence test and the
                        bench_catalog example (rewrites BENCH_catalog.json)
  help                  show this message

Checks: panic-freedom, newtype, dispatch, float-cmp, determinism,
        cast-audit, ignored-result, unit-safety, par-determinism
";

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

/// The release-mode smoke gates behind the incremental catalog: the
/// trigger-by-trigger equivalence test (all four policies, `Small` scale)
/// and the full-scan vs incremental timing run, which rewrites
/// `docs/results/BENCH_catalog.json` and fails below the 5x floor.
fn smoke() -> ExitCode {
    let steps: [&[&str]; 2] = [
        &[
            "test",
            "--release",
            "-q",
            "-p",
            "activedr-sim",
            "--test",
            "integration_catalog_mode",
        ],
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "activedr-sim",
            "--example",
            "bench_catalog",
        ],
    ];
    for args in steps {
        eprintln!("xtask smoke: cargo {}", args.join(" "));
        let status = std::process::Command::new("cargo")
            .args(args)
            .current_dir(workspace_root())
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("xtask smoke: cargo {} failed with {s}", args.join(" "));
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask smoke: failed to spawn cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("xtask smoke: all gates passed");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("smoke") => return smoke(),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        // A bare `cargo xtask` is almost always a typo'd CI line; succeeding
        // silently would make the invariant gate vacuous.
        None => {
            eprint!("missing command\n{USAGE}");
            return ExitCode::FAILURE;
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    let mut cfg = Config {
        root: workspace_root(),
        only: None,
        update_baseline: false,
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--update-baseline" => cfg.update_baseline = true,
            "--only" => match it.next() {
                Some(names) => {
                    cfg.only = Some(names.split(',').map(|s| s.trim().to_string()).collect());
                }
                None => {
                    eprintln!("--only needs a comma-separated list of checks\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--root" => match it.next() {
                Some(dir) => cfg.root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    match runner::run(&cfg) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::FAILURE
        }
    }
}
