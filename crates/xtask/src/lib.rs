//! Repo-specific static analysis for the ActiveDR workspace.
//!
//! `cargo xtask check` enforces sixteen invariants that rustc and clippy
//! cannot express because they are about *this* codebase's architecture.
//! Five are token-level (over the [`lexer`] stream):
//!
//! 1. **panic-freedom** — no `.unwrap()`/`.expect()`/panicking macros/index
//!    expressions in non-test library code, ratcheted by a checked-in
//!    baseline ([`baseline`]).
//! 2. **newtype** — no raw arithmetic on `.0` of the domain newtypes
//!    (`Timestamp`, `TimeDelta`, `UserId`, `FileId`, …) outside their
//!    defining modules.
//! 3. **dispatch** — no `_` wildcard arms in matches over the policy and
//!    activity enums, so adding a variant forces every dispatch site to be
//!    revisited.
//! 4. **float-cmp** — no `==`/`!=` against floats outside `core::approx`.
//! 5. **determinism** — no wall clocks or ambient-entropy RNGs; replay must
//!    be reproducible from a seed.
//!
//! Four are semantic, over the expression tree built by [`ast`] and
//! traversed via [`visit`] (see [`semantic`]):
//!
//! 6. **cast-audit** — every potentially lossy numeric `as` cast in library
//!    code is counted per file and target type against a second ratchet
//!    file (`cast-baseline.txt`); new casts must go through `core::convert`.
//! 7. **ignored-result** — no `let _ =` or bare-statement discards of
//!    `Result`-returning or `#[must_use]` calls resolved against a
//!    workspace-wide signature table.
//! 8. **unit-safety** — no arithmetic mixing seconds, days, bytes, and
//!    timestamps without going through the typed conversions.
//! 9. **par-determinism** — no `RefCell`/`Cell` captures, held locks, or
//!    order-sensitive float reductions inside rayon parallel pipelines.
//!
//! Four are interprocedural, over the workspace symbol table ([`resolve`]),
//! the call graph ([`callgraph`]), and per-function dataflow facts
//! ([`dataflow`]) — see [`interproc`]:
//!
//! 10. **determinism-taint** — no function reachable from the engine's
//!     replay entry points (`run`, `run_instrumented`, trigger evaluation)
//!     may transitively reach a nondeterminism source (hash-container
//!     iteration, wall clocks, `RandomState`, thread ids) except through
//!     the hand-audited exemption file `determinism-exemptions.txt`.
//! 11. **changelog-completeness** — every path in `fs::vfs` that mutates
//!     the trie must also reach a changelog emit (`Delta::Upsert`/`Touch`/
//!     `Remove`), and an emit census pins the exact number of emit sites.
//! 12. **panic-reachability** — the panic ratchet, restricted to panic
//!     sites reachable from the engine hot path, with its own baseline.
//! 13. **dead-api** — pub functions in the library crates that nothing in
//!     the workspace references, ratcheted so the public surface only
//!     shrinks.
//!
//! Three are performance-semantic, layered on the same workspace table plus
//! a per-function interval abstract interpreter ([`interval`]) — see
//! [`perfsem`]:
//!
//! 14. **cast-proof** — the interval prover re-examines every cast-audit
//!     site and *discharges* the ones whose operand range provably fits the
//!     target (literal ranges, `len()` bounds, `min`/`clamp`/mask
//!     narrowing, `core::convert` checked constructors), so the cast
//!     ratchet only counts casts that could actually lose data.
//!     `check --explain-cast <file:line>` prints the derived range.
//! 15. **alloc-hot-path** — allocation sites (`Vec::new`, `Box::new`,
//!     `clone`, `collect`, `to_owned`/`to_string`, `format!`, `vec!`)
//!     in functions reachable from the engine hot-path entries, with a BFS
//!     witness path per finding, ratcheted in `alloc-baseline.txt`.
//! 16. **loop-complexity** — loop-carried superlinear shapes
//!     (`Vec::insert`/`remove` shifting in a loop, binary-search-then-
//!     insert, sort/contains on a growing collection, nested loops over
//!     the same collection), ratcheted in `loop-baseline.txt`.
//!
//! Individual findings from the file-local checks can be waived in place
//! with a `// xtask-allow: <check> -- <reason>` comment on the same line or
//! the line above; unused waivers are themselves errors. The
//! interprocedural checks deliberately ignore inline waivers — their
//! findings are properties of call paths, not lines — and are governed by
//! their ratchet/exemption files instead.

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod checks;
pub mod dataflow;
pub mod interproc;
pub mod interval;
pub mod lexer;
pub mod perf;
pub mod perfsem;
pub mod resolve;
pub mod runner;
pub mod semantic;
pub mod telemetry;
pub mod visit;
