//! Repo-specific static analysis for the ActiveDR workspace.
//!
//! `cargo xtask check` enforces five invariants that rustc and clippy cannot
//! express because they are about *this* codebase's architecture:
//!
//! 1. **panic-freedom** — no `.unwrap()`/`.expect()`/panicking macros/index
//!    expressions in non-test library code, ratcheted by a checked-in
//!    baseline ([`baseline`]).
//! 2. **newtype** — no raw arithmetic on `.0` of the domain newtypes
//!    (`Timestamp`, `TimeDelta`, `UserId`, `FileId`, …) outside their
//!    defining modules.
//! 3. **dispatch** — no `_` wildcard arms in matches over the policy and
//!    activity enums, so adding a variant forces every dispatch site to be
//!    revisited.
//! 4. **float-cmp** — no `==`/`!=` against floats outside `core::approx`.
//! 5. **determinism** — no wall clocks or ambient-entropy RNGs; replay must
//!    be reproducible from a seed.
//!
//! Individual findings can be waived in place with a
//! `// xtask-allow: <check> -- <reason>` comment on the same line or the
//! line above; unused waivers are themselves errors.

pub mod baseline;
pub mod checks;
pub mod lexer;
pub mod runner;
