//! The four AST-based check families (semantic analysis v2).
//!
//! These checks reason about expressions, which the token-window checks in
//! [`crate::checks`] cannot:
//!
//! * **cast-audit** — every potentially lossy numeric `as` cast is a
//!   finding, categorised by target type and ratcheted per file against
//!   `crates/xtask/cast-baseline.txt`.
//! * **ignored-result** — `let _ = …` and bare `…;` statements that discard
//!   the value of a `Result`-returning or `#[must_use]` function.
//! * **unit-safety** — arithmetic or comparison mixing values of different
//!   physical units (seconds, days, bytes) or mixing the raw units with the
//!   `Timestamp`/`TimeDelta` newtypes outside their typed operations.
//! * **par-determinism** — constructs inside rayon parallel chains that
//!   break bit-identical replay: interior-mutability captures, locks, and
//!   order-sensitive floating-point reductions.
//!
//! Like the token checks, every function here is pure: file scoping lives in
//! [`crate::runner`], and each check degrades to "no finding" on code the
//! parser abstracted to [`ExprKind::Opaque`].

use std::collections::BTreeSet;

use crate::ast::{Block, Expr, ExprKind, File, FnItem, Item, Stmt};
use crate::checks::Finding;
use crate::visit;

// ---------------------------------------------------------------------------
// Signature table (shared by ignored-result)
// ---------------------------------------------------------------------------

/// Function names whose return value must not be silently discarded.
/// Collected by name across the whole library tree — the checker has no type
/// inference, so names are the resolution unit. Names that collide with
/// ubiquitous infallible std methods ([`AMBIGUOUS_NAMES`]) are excluded:
/// resolving `map.insert(…)` against a `Result`-returning trie `insert`
/// would drown the report in false positives.
#[derive(Debug, Default, Clone)]
pub struct Signatures {
    /// Functions returning `Result<…>` (any path spelling containing the
    /// `Result` ident).
    pub result_fns: BTreeSet<String>,
    /// Functions annotated `#[must_use]`.
    pub must_use_fns: BTreeSet<String>,
}

/// `Result`-returning std functions and macros commonly discarded by
/// accident. Deliberately short: every entry is a name that appears in this
/// workspace's non-test code paths. `flush` is NOT here: the workspace's
/// own `CatalogIndex::flush` is infallible (returns `()`), so the name is
/// ambiguous — it lives in [`AMBIGUOUS_NAMES`] and the lone `io::Write`
/// flush site is covered by rustc's `unused_must_use` at its concrete type.
const STD_RESULT_FNS: [&str; 4] = [
    "write_all",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
];

/// Macros that expand to a `Result` value.
const RESULT_MACROS: [&str; 2] = ["write", "writeln"];

/// Method names so common on std containers (where they return `Option`,
/// `bool`, or `()`) that a same-named workspace function cannot be resolved
/// by name alone. These never enter the signature table; fallible functions
/// should not reuse these names (and the ones that do are covered by
/// rustc's `unused_must_use` at their concrete type).
const AMBIGUOUS_NAMES: [&str; 9] = [
    "insert", "remove", "push", "pop", "replace", "take", "swap", "extend", "flush",
];

impl Signatures {
    /// A table pre-seeded with the std builtins.
    pub fn with_builtins() -> Self {
        Signatures {
            result_fns: STD_RESULT_FNS.iter().map(|s| (*s).to_string()).collect(),
            must_use_fns: BTreeSet::new(),
        }
    }

    fn is_flagged(&self, name: &str) -> bool {
        self.result_fns.contains(name) || self.must_use_fns.contains(name)
    }
}

/// Fold `file`'s function signatures into `sigs`.
pub fn collect_signatures(file: &File, sigs: &mut Signatures) {
    fn item(it: &Item, sigs: &mut Signatures) {
        match it {
            Item::Fn(FnItem {
                name,
                must_use,
                ret,
                ..
            }) => {
                if AMBIGUOUS_NAMES.contains(&name.as_str()) {
                    return;
                }
                if *must_use {
                    sigs.must_use_fns.insert(name.clone());
                }
                if ret.as_deref().is_some_and(returns_result) {
                    sigs.result_fns.insert(name.clone());
                }
            }
            Item::Impl { items, .. } | Item::Mod { items, .. } => {
                for it in items {
                    item(it, sigs);
                }
            }
        }
    }
    for it in &file.items {
        item(it, sigs);
    }
}

/// Does a return-type text name `Result` as a path segment (`Result<…>`,
/// `io :: Result<…>`, `std :: io :: Result<…>`)?
fn returns_result(ret: &str) -> bool {
    ret.split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|seg| seg == "Result")
}

// ---------------------------------------------------------------------------
// 6. cast-audit
// ---------------------------------------------------------------------------

/// The closed set of numeric cast targets; returning `&'static str` lets the
/// target type double as the baseline category. Shared with the interval
/// prover ([`crate::interval`]), which discharges the provable subset.
pub(crate) fn numeric_target(ty: &str) -> Option<&'static str> {
    Some(match ty {
        "u8" => "u8",
        "u16" => "u16",
        "u32" => "u32",
        "u64" => "u64",
        "u128" => "u128",
        "usize" => "usize",
        "i8" => "i8",
        "i16" => "i16",
        "i32" => "i32",
        "i64" => "i64",
        "i128" => "i128",
        "isize" => "isize",
        "f32" => "f32",
        "f64" => "f64",
        _ => return None,
    })
}

/// Parse an integer literal's value (underscores stripped, radix prefixes
/// honoured, type suffix ignored). `None` for anything unparseable.
pub(crate) fn int_literal_value(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let (radix, digits) = if let Some(rest) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X"))
    {
        (16u32, rest)
    } else if let Some(rest) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (8, rest)
    } else if let Some(rest) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (2, rest)
    } else {
        (10, t.as_str())
    };
    // Cut the type suffix: the first char that is not a digit of the radix.
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    let digits = digits.get(..end).unwrap_or("");
    if digits.is_empty() {
        return None;
    }
    u128::from_str_radix(digits, radix).ok()
}

/// Does the literal value `v` (negated when `neg`) convert exactly into
/// `target`? `usize`/`isize` are treated as 64-bit — this workspace only
/// targets 64-bit platforms.
fn literal_fits(v: u128, neg: bool, target: &str) -> bool {
    // Exactly-representable integer bound for the float targets.
    const F64_EXACT: u128 = 1 << 53;
    const F32_EXACT: u128 = 1 << 24;
    let unsigned_max: u128 = match target {
        "u8" => u128::from(u8::MAX),
        "u16" => u128::from(u16::MAX),
        "u32" => u128::from(u32::MAX),
        "u64" | "usize" => u128::from(u64::MAX),
        "u128" => u128::MAX,
        _ => 0,
    };
    match target {
        "f64" => v <= F64_EXACT,
        "f32" => v <= F32_EXACT,
        "i8" | "i16" | "i32" | "i64" | "i128" | "isize" => {
            let max: u128 = match target {
                "i8" => i8::MAX as u128,
                "i16" => i16::MAX as u128,
                "i32" => i32::MAX as u128,
                "i64" | "isize" => i64::MAX as u128,
                _ => i128::MAX as u128,
            };
            if neg {
                v <= max + 1 // |i::MIN| = i::MAX + 1
            } else {
                v <= max
            }
        }
        _ => !neg && v <= unsigned_max,
    }
}

/// Is this cast provably lossless from the operand's syntax alone?
fn cast_is_lossless(operand: &Expr, target: &str) -> bool {
    match &operand.kind {
        ExprKind::Int(text) => {
            int_literal_value(text).is_some_and(|v| literal_fits(v, false, target))
        }
        ExprKind::Unary { op: "-", operand } => match &operand.kind {
            ExprKind::Int(text) => {
                int_literal_value(text).is_some_and(|v| literal_fits(v, true, target))
            }
            _ => false,
        },
        // Float literals default to f64; a cast to f64 is the identity.
        ExprKind::Float(_) => target == "f64",
        // char -> u32 and wider is defined lossless; bool -> any int is 0/1.
        ExprKind::Char => matches!(target, "u32" | "u64" | "u128" | "i64" | "i128"),
        ExprKind::Bool(_) => !matches!(target, "f32" | "f64"),
        _ => false,
    }
}

/// Every potentially lossy numeric `as` cast. The category is the target
/// type, so the ratchet file reads `3 f64 crates/sim/src/report.rs`.
pub fn check_cast_audit(file: &File) -> Vec<Finding> {
    let mut out = Vec::new();
    visit::visit_file(file, &mut |e| {
        if let ExprKind::Cast { operand, ty } = &e.kind {
            if let Some(target) = numeric_target(ty) {
                if !cast_is_lossless(operand, target) {
                    out.push(Finding {
                        line: e.line,
                        category: target,
                        message: format!(
                            "raw `as {target}` cast (possible truncation/precision loss); \
                             use the typed ops or core::convert helpers"
                        ),
                    });
                }
            }
        }
    });
    out
}

// ---------------------------------------------------------------------------
// 7. ignored-result
// ---------------------------------------------------------------------------

/// The function name a discarded expression resolves to, if its outermost
/// node is a call. `f()?` is excluded — the `?` already handled the error.
fn discarded_call_name(e: &Expr) -> Option<(String, bool)> {
    match &e.kind {
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(p) => p.rsplit("::").next().map(|last| (last.to_string(), false)),
            _ => None,
        },
        ExprKind::Method { name, .. } => Some((name.clone(), false)),
        ExprKind::MacroCall { name, .. } => {
            let last = name.rsplit("::").next().unwrap_or(name);
            RESULT_MACROS
                .contains(&last)
                .then(|| (last.to_string(), true))
        }
        _ => None,
    }
}

/// `let _ = f(…);` and bare `f(…);` where `f` is `Result`-returning or
/// `#[must_use]` per the signature table.
pub fn check_ignored_result(file: &File, sigs: &Signatures) -> Vec<Finding> {
    let mut out = Vec::new();
    visit::visit_blocks(file, &mut |block: &Block| {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let {
                    pat,
                    init: Some(init),
                    line,
                } if pat == "_" => {
                    if let Some((name, is_macro)) = discarded_call_name(init) {
                        if is_macro || sigs.is_flagged(&name) {
                            let what = if is_macro {
                                format!("`{name}!`")
                            } else {
                                format!("`{name}`")
                            };
                            out.push(Finding {
                                line: *line,
                                category: "",
                                message: format!(
                                    "`let _ =` discards the Result of {what}; handle the error \
                                     or waive with a reason"
                                ),
                            });
                        }
                    }
                }
                Stmt::Expr { expr, semi: true } => {
                    if let Some((name, is_macro)) = discarded_call_name(expr) {
                        if is_macro || sigs.result_fns.contains(&name) {
                            let what = if is_macro {
                                format!("`{name}!`")
                            } else {
                                format!("`{name}`")
                            };
                            out.push(Finding {
                                line: expr.line,
                                category: "",
                                message: format!(
                                    "Result of {what} dropped by `;`; handle the error or \
                                     waive with a reason"
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    });
    out
}

// ---------------------------------------------------------------------------
// 8. unit-safety
// ---------------------------------------------------------------------------

/// The unit a syntactic expression provably carries, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    /// Raw seconds (`.secs()`, `SECS_PER_DAY` in additive position).
    Secs,
    /// Raw days (`.day()`, `.whole_days()`, `.days_f64()`, year constants).
    Days,
    /// Raw byte counts (`*_bytes()` accessors).
    Bytes,
    /// The `Timestamp` newtype itself.
    Timestamp,
    /// The `TimeDelta` newtype itself.
    Delta,
}

impl Unit {
    fn name(self) -> &'static str {
        match self {
            Unit::Secs => "seconds",
            Unit::Days => "days",
            Unit::Bytes => "bytes",
            Unit::Timestamp => "Timestamp",
            Unit::Delta => "TimeDelta",
        }
    }
}

/// Accessor methods whose name pins down the unit of their result.
fn unit_of_method(name: &str) -> Option<Unit> {
    match name {
        "secs" => Some(Unit::Secs),
        "day" | "whole_days" | "days_f64" => Some(Unit::Days),
        "age_since" => Some(Unit::Delta),
        _ if name.ends_with("_bytes") || name == "bytes" => Some(Unit::Bytes),
        _ => None,
    }
}

fn unit_of_path(path: &str) -> Option<Unit> {
    let last = path.rsplit("::").next().unwrap_or(path);
    match last {
        "SECS_PER_DAY" => Some(Unit::Secs),
        "REPLAY_YEAR_DAYS" | "WARMUP_YEAR_DAYS" => Some(Unit::Days),
        "EPOCH" if path.contains("Timestamp") => Some(Unit::Timestamp),
        "ZERO" if path.contains("TimeDelta") => Some(Unit::Delta),
        _ => None,
    }
}

fn unit_of_call(path: &str) -> Option<Unit> {
    let mut segs = path.rsplit("::");
    let last = segs.next().unwrap_or(path);
    let prev = segs.next().unwrap_or("");
    match (prev, last) {
        (_, "Timestamp") => Some(Unit::Timestamp),
        (_, "TimeDelta") => Some(Unit::Delta),
        ("Timestamp", "from_days" | "from_days_f64") => Some(Unit::Timestamp),
        ("TimeDelta", "from_days" | "from_days_f64" | "from_hours") => Some(Unit::Delta),
        _ => None,
    }
}

/// Infer the unit of an expression, seeing through casts, negation,
/// references and `?`.
fn unit_of(e: &Expr) -> Option<Unit> {
    match &e.kind {
        ExprKind::Cast { operand, .. } => unit_of(operand),
        ExprKind::Unary { operand, .. } => unit_of(operand),
        ExprKind::Ref(inner) | ExprKind::Try(inner) => unit_of(inner),
        ExprKind::Method { name, .. } => unit_of_method(name),
        ExprKind::Path(p) => unit_of_path(p),
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(p) => unit_of_call(p),
            _ => None,
        },
        // Same-unit arithmetic preserves the unit; anything else is unknown.
        ExprKind::Binary { op, lhs, rhs } if matches!(*op, "+" | "-") => {
            let (l, r) = (unit_of(lhs), unit_of(rhs));
            if l == r {
                l
            } else {
                None
            }
        }
        _ => None,
    }
}

/// May `l` and `r` legally meet across an additive or comparison operator?
fn units_compatible(l: Unit, r: Unit) -> bool {
    if l == r {
        return true;
    }
    // The typed ops: Timestamp ± TimeDelta, Timestamp - Timestamp.
    matches!(
        (l, r),
        (Unit::Timestamp, Unit::Delta) | (Unit::Delta, Unit::Timestamp)
    )
}

/// Is this expression literally the `SECS_PER_DAY` constant (possibly cast)?
fn is_secs_per_day(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Cast { operand, .. } => is_secs_per_day(operand),
        ExprKind::Path(p) => p.rsplit("::").next() == Some("SECS_PER_DAY"),
        _ => false,
    }
}

/// Arithmetic mixing different units, and manual day↔second conversion by
/// multiplying/dividing with `SECS_PER_DAY` outside the unit home modules.
pub fn check_unit_safety(file: &File) -> Vec<Finding> {
    const ADDITIVE_OR_CMP: [&str; 8] = ["+", "-", "<", ">", "<=", ">=", "==", "!="];
    let mut out = Vec::new();
    visit::visit_file(file, &mut |e| {
        let (op, lhs, rhs) = match &e.kind {
            ExprKind::Binary { op, lhs, rhs } => (*op, lhs, rhs),
            ExprKind::Assign { op, lhs, rhs } if matches!(*op, "+=" | "-=") => (*op, lhs, rhs),
            _ => return,
        };
        if matches!(op, "*" | "/") {
            if is_secs_per_day(lhs) || is_secs_per_day(rhs) {
                out.push(Finding {
                    line: e.line,
                    category: "",
                    message: format!(
                        "manual day\u{2194}second conversion (`{op}` with SECS_PER_DAY); use \
                         Timestamp/TimeDelta::from_days or core::convert"
                    ),
                });
            }
            return;
        }
        if ADDITIVE_OR_CMP.contains(&op) || matches!(op, "+=" | "-=") {
            if let (Some(l), Some(r)) = (unit_of(lhs), unit_of(rhs)) {
                if !units_compatible(l, r) {
                    out.push(Finding {
                        line: e.line,
                        category: "",
                        message: format!(
                            "`{op}` mixes {} and {}; convert explicitly through the typed ops \
                             or core::convert",
                            l.name(),
                            r.name()
                        ),
                    });
                }
            }
        }
    });
    out
}

// ---------------------------------------------------------------------------
// 9. par-determinism
// ---------------------------------------------------------------------------

/// Methods that introduce a rayon parallel iterator.
const PAR_INTROS: [&str; 8] = [
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_bridge",
    "par_chunks",
    "par_chunks_mut",
    "par_windows",
    "par_drain",
];

/// Order-sensitive terminal reductions (grouping varies run to run).
const REDUCTIONS: [&str; 5] = ["reduce", "sum", "fold", "fold_with", "product"];

/// Does the method-receiver chain of `e` pass through a parallel intro?
fn chain_has_par(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Method { recv, name, .. } => {
            PAR_INTROS.contains(&name.as_str()) || chain_has_par(recv)
        }
        ExprKind::Try(inner) | ExprKind::Ref(inner) => chain_has_par(inner),
        _ => false,
    }
}

/// Does any float evidence appear in the reduction: an `::<f64>`-style
/// turbofish, a float literal in a closure body, or arithmetic on
/// identifiable float values?
fn reduction_is_float(turbofish: Option<&str>, args: &[Expr]) -> bool {
    if turbofish.is_some_and(|t| t.contains("f64") || t.contains("f32")) {
        return true;
    }
    let mut float = false;
    for arg in args {
        visit::visit_expr(arg, &mut |e| match &e.kind {
            ExprKind::Float(_) => float = true,
            ExprKind::Path(p) if p.starts_with("f64") || p.starts_with("f32") => float = true,
            ExprKind::Cast { ty, .. } if ty == "f64" || ty == "f32" => float = true,
            _ => {}
        });
    }
    float
}

/// Scan one closure body for replay-determinism hazards.
fn scan_par_closure(body: &Expr, out: &mut Vec<Finding>) {
    visit::visit_expr(body, &mut |e| match &e.kind {
        ExprKind::Path(p) => {
            let first = p.split("::").next().unwrap_or(p);
            if first == "RefCell" || first == "Cell" {
                out.push(Finding {
                    line: e.line,
                    category: "",
                    message: format!(
                        "`{first}` inside a rayon closure: interior mutability across parallel \
                         tasks breaks deterministic replay"
                    ),
                });
            }
        }
        ExprKind::Method { name, .. } if name == "borrow" || name == "borrow_mut" => {
            out.push(Finding {
                line: e.line,
                category: "",
                message: format!(
                    "`.{name}()` inside a rayon closure: RefCell access across parallel tasks \
                     breaks deterministic replay"
                ),
            });
        }
        ExprKind::Method { name, .. } if name == "lock" => {
            out.push(Finding {
                line: e.line,
                category: "",
                message: "lock acquired inside a rayon closure: cross-task ordering becomes \
                          schedule-dependent"
                    .to_string(),
            });
        }
        _ => {}
    });
}

/// Does a subtree contain a `.lock()` call (for "lock held across
/// `par_iter`" detection on the receiver side)?
fn subtree_locks(e: &Expr) -> Option<u32> {
    let mut line = None;
    visit::visit_expr(e, &mut |x| {
        if let ExprKind::Method { name, .. } = &x.kind {
            if name == "lock" && line.is_none() {
                line = Some(x.line);
            }
        }
    });
    line
}

/// Replay-determinism hazards inside rayon parallel chains.
pub fn check_par_determinism(file: &File) -> Vec<Finding> {
    let mut out = Vec::new();
    visit::visit_file(file, &mut |e| {
        let ExprKind::Method {
            recv,
            name,
            turbofish,
            args,
        } = &e.kind
        else {
            return;
        };
        // A lock held on the receiver side of the par intro serializes (or
        // deadlocks) the parallel loop and orders tasks by acquisition.
        if PAR_INTROS.contains(&name.as_str()) {
            if let Some(line) = subtree_locks(recv) {
                out.push(Finding {
                    line,
                    category: "",
                    message: format!(
                        "lock held across `.{name}()`: parallel tasks run under one guard, \
                         making progress schedule-dependent"
                    ),
                });
            }
            return;
        }
        if !chain_has_par(recv) {
            return;
        }
        // Inside the parallel part of the chain.
        if REDUCTIONS.contains(&name.as_str()) && reduction_is_float(turbofish.as_deref(), args) {
            out.push(Finding {
                line: e.line,
                category: "",
                message: format!(
                    "floating-point `.{name}()` on a parallel iterator: rayon's reduction \
                     grouping is nondeterministic, so results are not bit-identical across runs"
                ),
            });
        }
        for arg in args {
            if let ExprKind::Closure { body } = &arg.kind {
                scan_par_closure(body, &mut out);
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::lexer::{lex, strip_test_regions};

    fn file(src: &str) -> File {
        parse_file(&strip_test_regions(lex(src).tokens))
    }

    fn cast_findings(src: &str) -> Vec<Finding> {
        check_cast_audit(&file(src))
    }

    #[test]
    fn lossy_casts_are_findings_lossless_literals_are_not() {
        assert_eq!(cast_findings("fn f(n: usize) -> f64 { n as f64 }").len(), 1);
        assert!(cast_findings("fn f() -> f64 { 7 as f64 }").is_empty());
        assert!(cast_findings("fn f() -> i64 { -1 as i64 }").is_empty());
        assert!(cast_findings("fn f() -> u8 { 255 as u8 }").is_empty());
        assert_eq!(cast_findings("fn f() -> u8 { 256 as u8 }").len(), 1);
        // 2^53 + 1 is not exactly representable in f64.
        assert_eq!(
            cast_findings("fn f() -> f64 { 9007199254740993 as f64 }").len(),
            1
        );
        // Non-numeric target types are out of scope.
        assert!(cast_findings("fn f(x: u8) -> Level { x as Level }").is_empty());
    }

    #[test]
    fn cast_category_is_target_type() {
        let f = cast_findings("fn f(n: i64) -> usize { n as usize }");
        assert_eq!(f.first().map(|f| f.category), Some("usize"));
    }

    #[test]
    fn casts_inside_macros_and_closures_are_audited() {
        assert_eq!(
            cast_findings("fn f(n: usize) { println!(\"{}\", n as u64); }").len(),
            1
        );
        assert_eq!(
            cast_findings("fn f(v: &[i64]) -> Vec<f64> { v.iter().map(|x| *x as f64).collect() }")
                .len(),
            1
        );
    }

    fn sigs_for(src: &str) -> Signatures {
        let mut sigs = Signatures::with_builtins();
        collect_signatures(&file(src), &mut sigs);
        sigs
    }

    #[test]
    fn signature_table_finds_result_and_must_use() {
        let src = r#"
            fn plain() -> u32 { 1 }
            fn fallible() -> Result<u32, Error> { Ok(1) }
            impl Foo { fn io_like(&self) -> io::Result<()> { Ok(()) } }
            #[must_use]
            fn important() -> u32 { 2 }
        "#;
        let sigs = sigs_for(src);
        assert!(sigs.result_fns.contains("fallible"));
        assert!(sigs.result_fns.contains("io_like"));
        assert!(!sigs.result_fns.contains("plain"));
        assert!(sigs.must_use_fns.contains("important"));
    }

    #[test]
    fn let_underscore_on_result_is_flagged() {
        let src = r#"
            fn fallible() -> Result<u32, E> { Ok(1) }
            fn caller() { let _ = fallible(); }
        "#;
        let f = file(src);
        let sigs = sigs_for(src);
        assert_eq!(check_ignored_result(&f, &sigs).len(), 1);
    }

    #[test]
    fn question_mark_and_bound_results_are_fine() {
        let src = r#"
            fn fallible() -> Result<u32, E> { Ok(1) }
            fn caller() -> Result<(), E> {
                let _ = fallible()?;
                let x = fallible();
                drop(x);
                Ok(())
            }
        "#;
        let f = file(src);
        let sigs = sigs_for(src);
        assert!(check_ignored_result(&f, &sigs).is_empty());
    }

    #[test]
    fn bare_semicolon_discard_is_flagged() {
        let src = r#"
            impl S { fn save(&self) -> Result<(), E> { Ok(()) } }
            fn caller(s: &S) { s.save(); }
        "#;
        let f = file(src);
        let sigs = sigs_for(src);
        let findings = check_ignored_result(&f, &sigs);
        assert_eq!(findings.len(), 1);
        assert!(findings
            .first()
            .is_some_and(|f| f.message.contains("dropped by `;`")));
    }

    #[test]
    fn writeln_discard_is_flagged() {
        let src = "fn f(out: &mut String) { let _ = writeln!(out, \"x\"); }";
        let f = file(src);
        let sigs = Signatures::with_builtins();
        assert_eq!(check_ignored_result(&f, &sigs).len(), 1);
    }

    fn unit_findings(src: &str) -> Vec<Finding> {
        check_unit_safety(&file(src))
    }

    #[test]
    fn mixing_seconds_and_days_is_flagged() {
        assert_eq!(
            unit_findings("fn f(a: Timestamp, d: TimeDelta) -> i64 { a.secs() + d.whole_days() }")
                .len(),
            1
        );
        assert_eq!(
            unit_findings("fn f(a: Timestamp, d: TimeDelta) -> bool { a.day() < d.secs() }").len(),
            1
        );
    }

    #[test]
    fn same_unit_and_typed_ops_are_fine() {
        assert!(
            unit_findings("fn f(a: Timestamp, b: Timestamp) -> i64 { a.secs() - b.secs() }")
                .is_empty()
        );
        assert!(
            unit_findings("fn f(a: Timestamp, d: TimeDelta) -> Timestamp { a + d }").is_empty()
        );
        assert!(unit_findings(
            "fn f(t: Timestamp, d: i64) -> bool { t < Timestamp::from_days(d) }"
        )
        .is_empty());
    }

    #[test]
    fn bytes_never_meet_time() {
        assert_eq!(
            unit_findings("fn f(fs: &Vfs, t: TimeDelta) -> i64 { fs.used_bytes() + t.secs() }")
                .len(),
            1
        );
    }

    #[test]
    fn manual_secs_per_day_conversion_is_flagged() {
        assert_eq!(
            unit_findings("fn f(days: i64) -> i64 { days * SECS_PER_DAY }").len(),
            1
        );
        assert_eq!(
            unit_findings("fn f(secs: i64) -> i64 { secs / SECS_PER_DAY }").len(),
            1
        );
        assert!(unit_findings("fn f(s: i64) -> i64 { s + SECS_PER_DAY - 1 }").is_empty());
    }

    fn par_findings(src: &str) -> Vec<Finding> {
        check_par_determinism(&file(src))
    }

    #[test]
    fn float_reduction_in_par_chain_is_flagged() {
        assert_eq!(
            par_findings("fn f(v: Vec<f64>) -> f64 { v.par_iter().map(|x| x * 2.0).sum::<f64>() }")
                .len(),
            1
        );
        // Integer sum is order-insensitive.
        assert!(par_findings(
            "fn f(v: Vec<u64>) -> u64 { v.par_iter().map(|x| x + 1).sum::<u64>() }"
        )
        .is_empty());
        // Sequential float sum is fine.
        assert!(par_findings(
            "fn f(v: Vec<f64>) -> f64 { v.iter().map(|x| x * 2.0).sum::<f64>() }"
        )
        .is_empty());
    }

    #[test]
    fn refcell_and_lock_in_par_closures_are_flagged() {
        assert_eq!(
            par_findings(
                "fn f(v: &[u32], c: &RefCell<u32>) { v.par_iter().for_each(|x| { *c.borrow_mut() += x; }); }"
            )
            .len(),
            1
        );
        assert_eq!(
            par_findings(
                "fn f(v: &[u32], m: &Mutex<u32>) { v.par_iter().for_each(|x| { *m.lock() += x; }); }"
            )
            .len(),
            1
        );
    }

    #[test]
    fn lock_held_across_par_intro_is_flagged() {
        assert_eq!(
            par_findings(
                "fn f(m: &Mutex<Vec<u32>>) { m.lock().par_iter().for_each(|x| use_it(x)); }"
            )
            .len(),
            1
        );
    }
}
