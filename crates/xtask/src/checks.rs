//! The five invariant checks.
//!
//! Every check is a pure function from a (test-stripped) token stream to a
//! list of findings. File-level scoping — which crates a check covers, which
//! files are exempt — lives in [`crate::runner`]; the functions here only
//! look at tokens. That split keeps each check unit-testable against fixture
//! files without touching the real tree.

use crate::lexer::{Tok, Token};

/// One finding, before waivers are applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub line: u32,
    pub message: String,
    /// Category used by the panic-freedom baseline; empty for other checks.
    pub category: &'static str,
}

impl Finding {
    fn new(line: u32, category: &'static str, message: String) -> Self {
        Finding {
            line,
            message,
            category,
        }
    }
}

/// Names of the checks as used on the command line and in waiver comments.
/// The first five are the token-window checks in this module; the next four
/// are the AST-based families in [`crate::semantic`]; the next four are the
/// interprocedural checks in [`crate::interproc`], which run over the
/// workspace call graph rather than one file at a time; the last three are
/// the performance-semantics layer ([`crate::interval`] and
/// [`crate::perfsem`]) built on the same workspace table.
pub const CHECK_NAMES: [&str; 16] = [
    "panic-freedom",
    "newtype",
    "dispatch",
    "float-cmp",
    "determinism",
    "cast-audit",
    "ignored-result",
    "unit-safety",
    "par-determinism",
    "determinism-taint",
    "changelog-completeness",
    "panic-reachability",
    "dead-api",
    "cast-proof",
    "alloc-hot-path",
    "loop-complexity",
];

fn tok_at(tokens: &[Token], i: usize) -> Option<&Tok> {
    tokens.get(i).map(|t| &t.tok)
}

fn is_ident(tokens: &[Token], i: usize, name: &str) -> bool {
    matches!(tok_at(tokens, i), Some(Tok::Ident(s)) if s == name)
}

fn is_punct(tokens: &[Token], i: usize, p: &str) -> bool {
    matches!(tok_at(tokens, i), Some(Tok::Punct(s)) if *s == p)
}

fn line_of(tokens: &[Token], i: usize) -> u32 {
    tokens.get(i).map_or(0, |t| t.line)
}

// ---------------------------------------------------------------------------
// 1. panic-freedom
// ---------------------------------------------------------------------------

/// Can the token at `i` end an expression (so a following `[` indexes it)?
fn ends_expression(tokens: &[Token], i: usize) -> bool {
    match tok_at(tokens, i) {
        Some(Tok::Ident(name)) => {
            // Keywords that precede a `[` without forming an index
            // expression: `return [..]`, `in [..]`, `as [T; N]` etc. are
            // not possible for `as`, but be conservative about the common
            // statement keywords.
            !matches!(
                name.as_str(),
                "return"
                    | "break"
                    | "in"
                    | "if"
                    | "else"
                    | "match"
                    | "mut"
                    | "ref"
                    | "box"
                    | "move"
                    | "static"
                    | "const"
                    | "dyn"
                    | "impl"
                    | "where"
                    | "let"
            )
        }
        Some(Tok::Punct(")") | Tok::Punct("]")) => true,
        _ => false,
    }
}

/// Potentially panicking constructs: `.unwrap()`, `.expect(…)`, the
/// panicking macros, and index expressions `base[…]`. Slice/array *types*
/// and macro brackets (`vec![…]`) are not flagged; the distinction is made
/// from the preceding token.
pub fn check_panic_freedom(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if is_punct(tokens, i, ".") && is_punct(tokens, i + 2, "(") {
            if is_ident(tokens, i + 1, "unwrap") {
                out.push(Finding::new(
                    line_of(tokens, i + 1),
                    "unwrap",
                    "call to .unwrap() in non-test code".to_string(),
                ));
            } else if is_ident(tokens, i + 1, "expect") {
                out.push(Finding::new(
                    line_of(tokens, i + 1),
                    "expect",
                    "call to .expect() in non-test code".to_string(),
                ));
            }
        }
        if is_punct(tokens, i + 1, "!") {
            for (name, cat) in [
                ("panic", "panic"),
                ("unreachable", "unreachable"),
                ("todo", "todo"),
                ("unimplemented", "unimplemented"),
            ] {
                if is_ident(tokens, i, name) {
                    out.push(Finding::new(
                        line_of(tokens, i),
                        cat,
                        format!("{name}! macro in non-test code"),
                    ));
                }
            }
        }
        if is_punct(tokens, i, "[") && i > 0 && ends_expression(tokens, i - 1) {
            out.push(Finding::new(
                line_of(tokens, i),
                "index",
                "index expression (can panic on out-of-bounds) in non-test code".to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// 2. newtype discipline
// ---------------------------------------------------------------------------

const ARITH_OPS: [&str; 10] = ["+", "-", "*", "/", "%", "+=", "-=", "*=", "/=", "%="];

fn is_arith(tok: Option<&Tok>) -> bool {
    matches!(tok, Some(Tok::Punct(p)) if ARITH_OPS.contains(p))
}

/// Raw representation arithmetic on newtypes: a tuple-field access `x.0`
/// (or `.1`) with an arithmetic operator directly on either side, optionally
/// through an `as` cast and closing parentheses. Arithmetic on the raw field
/// belongs in the newtype's own module (`Timestamp`/`TimeDelta` ops in
/// `core::time`, `UserId::index` in `core::user`, …); everywhere else the
/// wrapper's methods must be used so unit errors stay impossible.
pub fn check_newtype(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        // Tuple-field access: <expr-end> . <0|1>
        let field_ok = matches!(tok_at(tokens, i + 2), Some(Tok::Int(n)) if n == "0" || n == "1");
        if !(is_punct(tokens, i + 1, ".") && field_ok && ends_expression(tokens, i)) {
            continue;
        }
        let line = line_of(tokens, i + 2);
        // Walk past an optional `as <ty>` cast and closing parens.
        let mut j = i + 3;
        if is_ident(tokens, j, "as") && matches!(tok_at(tokens, j + 1), Some(Tok::Ident(_))) {
            j += 2;
        }
        while is_punct(tokens, j, ")") {
            j += 1;
        }
        let after = is_arith(tok_at(tokens, j));
        // The token before the accessed expression: only meaningful when the
        // base is a single identifier (for `)`/`]` bases the real expression
        // start is further left; skip the before-check there).
        let before = matches!(tok_at(tokens, i), Some(Tok::Ident(_)))
            && i > 0
            && is_arith(tok_at(tokens, i - 1));
        if after || before {
            out.push(Finding::new(
                line,
                "",
                "arithmetic on raw newtype field (.0/.1) outside the type's own module".to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// 3. exhaustive policy dispatch
// ---------------------------------------------------------------------------

/// A `match` that names a monitored enum in a pattern must not also have a
/// `_` wildcard arm: when a new policy kind or activity class is added, every
/// dispatch site has to be revisited, and wildcards silently swallow the new
/// variant. Returns the enums matched wildcard-ly, one finding per match.
pub fn check_dispatch(tokens: &[Token], monitored: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_ident(tokens, i, "match") {
            i += 1;
            continue;
        }
        let match_line = line_of(tokens, i);
        // Find the arm block: first `{` outside any parens/brackets opened
        // by the scrutinee expression.
        let mut j = i + 1;
        let mut paren = 0i32;
        while j < tokens.len() {
            match tok_at(tokens, j) {
                Some(Tok::Punct("(") | Tok::Punct("[")) => paren += 1,
                Some(Tok::Punct(")") | Tok::Punct("]")) => paren -= 1,
                Some(Tok::Punct("{")) if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= tokens.len() {
            break;
        }
        // Walk the arms: pattern position is depth 1, patterns end at `=>`.
        let mut depth = 1i32;
        let mut k = j + 1;
        let mut in_pattern = true;
        let mut pattern_start = k;
        let mut mentioned: Vec<String> = Vec::new();
        let mut wildcard_line: Option<u32> = None;
        while k < tokens.len() && depth > 0 {
            match tok_at(tokens, k) {
                Some(Tok::Punct("{") | Tok::Punct("(") | Tok::Punct("[")) => depth += 1,
                Some(Tok::Punct("}") | Tok::Punct(")") | Tok::Punct("]")) => depth -= 1,
                Some(Tok::Punct("=>")) if depth == 1 && in_pattern => {
                    // Analyse the pattern tokens [pattern_start, k).
                    for p in pattern_start..k {
                        if let Some(Tok::Ident(name)) = tok_at(tokens, p) {
                            if monitored.contains(&name.as_str())
                                && is_punct(tokens, p + 1, "::")
                                && !mentioned.contains(name)
                            {
                                mentioned.push(name.clone());
                            }
                        }
                    }
                    let first = tok_at(tokens, pattern_start);
                    let is_wild = matches!(first, Some(Tok::Ident(s)) if s == "_")
                        && (pattern_start + 1 == k || is_ident(tokens, pattern_start + 1, "if"));
                    if is_wild {
                        wildcard_line = Some(line_of(tokens, pattern_start));
                    }
                    in_pattern = false;
                }
                Some(Tok::Punct(",")) if depth == 1 && !in_pattern => {
                    in_pattern = true;
                    pattern_start = k + 1;
                }
                _ => {}
            }
            // A braced arm body returning to depth 1 also ends the arm.
            if depth == 1 && !in_pattern && matches!(tok_at(tokens, k), Some(Tok::Punct("}"))) {
                in_pattern = true;
                pattern_start = k + 1;
            }
            k += 1;
        }
        if let (Some(line), false) = (wildcard_line, mentioned.is_empty()) {
            out.push(Finding::new(
                line,
                "",
                format!(
                    "wildcard `_` arm in a match dispatching on {} (match at line {match_line}); \
                     spell out every variant so new ones cannot be silently swallowed",
                    mentioned.join(", ")
                ),
            ));
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// 4. float comparison
// ---------------------------------------------------------------------------

/// Direct `==`/`!=` involving a float: a float literal on either side, or an
/// `f64::`/`f32::` constant path on the right. Exact float equality belongs
/// in the designated helper module (`core::approx`) where each comparison
/// documents why exactness is correct.
pub fn check_float_cmp(tokens: &[Token]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let op = match tok_at(tokens, i) {
            Some(Tok::Punct(p)) if *p == "==" || *p == "!=" => *p,
            _ => continue,
        };
        let float_left = matches!(tok_at(tokens, i.wrapping_sub(1)), Some(Tok::Float(_)))
            || (i >= 3
                && matches!(tok_at(tokens, i - 3), Some(Tok::Ident(s)) if s == "f64" || s == "f32")
                && is_punct(tokens, i - 2, "::"));
        let float_right = matches!(tok_at(tokens, i + 1), Some(Tok::Float(_)))
            || (matches!(tok_at(tokens, i + 1), Some(Tok::Ident(s)) if s == "f64" || s == "f32")
                && is_punct(tokens, i + 2, "::"));
        if float_left || float_right {
            out.push(Finding::new(
                line_of(tokens, i),
                "",
                format!("`{op}` on floating-point values outside core::approx"),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// 5. determinism
// ---------------------------------------------------------------------------

/// Sources of nondeterminism: wall clocks and entropy-seeded RNGs. The
/// simulation must replay bit-identically from a seed, so shipping code may
/// only use the deterministic seeded RNG plumbing; wall-clock reads for
/// performance *reporting* carry an explicit `xtask-allow` waiver.
pub fn check_determinism(tokens: &[Token]) -> Vec<Finding> {
    const PATHS: [(&str, &str); 2] = [("SystemTime", "now"), ("Instant", "now")];
    const IDENTS: [&str; 5] = [
        "thread_rng",
        "from_entropy",
        "from_os_rng",
        "OsRng",
        "getrandom",
    ];
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        for (ty, method) in PATHS {
            if is_ident(tokens, i, ty)
                && is_punct(tokens, i + 1, "::")
                && is_ident(tokens, i + 2, method)
            {
                out.push(Finding::new(
                    line_of(tokens, i),
                    "",
                    format!("{ty}::{method}() is nondeterministic; replay must be seed-driven"),
                ));
            }
        }
        if is_ident(tokens, i, "rand")
            && is_punct(tokens, i + 1, "::")
            && is_ident(tokens, i + 2, "random")
        {
            out.push(Finding::new(
                line_of(tokens, i),
                "",
                "rand::random() draws from ambient entropy; use a seeded StdRng".to_string(),
            ));
        }
        for name in IDENTS {
            if is_ident(tokens, i, name) {
                out.push(Finding::new(
                    line_of(tokens, i),
                    "",
                    format!("`{name}` is an ambient-entropy source; use a seeded StdRng"),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_regions};

    fn run(check: fn(&[Token]) -> Vec<Finding>, src: &str) -> Vec<Finding> {
        check(&strip_test_regions(lex(src).tokens))
    }

    #[test]
    fn panic_freedom_distinguishes_macro_brackets_from_indexing() {
        let f = run(check_panic_freedom, "let v = vec![1, 2]; let x = v[0];");
        assert_eq!(f.len(), 1);
        assert_eq!(f.first().map(|f| f.category), Some("index"));
    }

    #[test]
    fn panic_freedom_ignores_strings_and_tests() {
        let src = r#"
            fn a() { let m = "don't .unwrap() here"; }
            #[cfg(test)]
            mod tests { fn b(x: Option<u8>) { x.unwrap(); } }
        "#;
        assert!(run(check_panic_freedom, src).is_empty());
    }

    #[test]
    fn newtype_flags_cast_then_modulo() {
        let f = run(check_newtype, "let shard = (u.0 as usize) % shards;");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn newtype_ignores_plain_reads_and_float_literals() {
        let src = "let id = p.id.0; let x = 1.0 + 2.0; let t = (a.0, b.1);";
        assert!(run(check_newtype, src).is_empty());
    }

    #[test]
    fn dispatch_needs_both_enum_and_wildcard() {
        let with_wild = "match k { PolicyKind::Flt => 1, _ => 0 }";
        let exhaustive = "match k { PolicyKind::Flt => 1, PolicyKind::ActiveDr => 0 }";
        let other_enum = "match k { Other::A => 1, _ => 0 }";
        let monitored = ["PolicyKind"];
        assert_eq!(check_dispatch(&lex(with_wild).tokens, &monitored).len(), 1);
        assert!(check_dispatch(&lex(exhaustive).tokens, &monitored).is_empty());
        assert!(check_dispatch(&lex(other_enum).tokens, &monitored).is_empty());
    }

    #[test]
    fn dispatch_handles_struct_variant_patterns_and_guards() {
        let src = "match k { AccessKind::Write { size } => size, _ if cold => 0, _ => 1 }";
        let f = check_dispatch(&lex(src).tokens, &["AccessKind"]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn float_cmp_flags_literals_and_const_paths() {
        assert_eq!(run(check_float_cmp, "if x == 0.0 {}").len(), 1);
        assert_eq!(run(check_float_cmp, "a != f64::NEG_INFINITY").len(), 1);
        assert!(run(check_float_cmp, "if n == 0 {}").is_empty());
        assert!(run(check_float_cmp, "(a - b).abs() < 1e-9").is_empty());
    }

    #[test]
    fn determinism_flags_clocks_and_entropy() {
        assert_eq!(run(check_determinism, "let t = Instant::now();").len(), 1);
        assert_eq!(run(check_determinism, "let r = thread_rng();").len(), 1);
        assert!(run(check_determinism, "StdRng::seed_from_u64(7)").is_empty());
    }
}
