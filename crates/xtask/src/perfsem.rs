//! The performance-semantics checks (15 and 16): hot-path allocation
//! census and loop-complexity detection.
//!
//! Both run over the same stack as [`crate::interproc`] — workspace table,
//! call graph, per-function facts — and return [`RatchetFindings`] for the
//! runner to compare against `alloc-baseline.txt` / `loop-baseline.txt`.
//! (Check 14, cast-proof, lives in [`crate::interval`]: it *discharges*
//! findings from an existing ratchet instead of producing its own.)
//!
//! **alloc-hot-path** mirrors panic-reachability: every allocation fact in
//! a function reachable from the engine entry points is counted per file
//! and category, with a BFS witness path in the message. The retention
//! engine's hot loop runs once per simulated day over every user; an
//! allocation there is O(users × days) even when the code reads as
//! innocent, which is exactly the class of regression a reviewer cannot
//! see in a diff.
//!
//! **loop-complexity** walks each function body with a stack of enclosing
//! loops and flags loop-carried superlinear shapes:
//!
//! * `binary-insert` — `binary_search*` followed by `.insert` on the same
//!   receiver inside one loop: O(n²) element shifting that reads as
//!   O(n log n).
//! * `growing-insert` — `.insert` into a struct-field-rooted collection
//!   inside a loop, either directly or one resolved call away (the
//!   `CatalogIndex::apply` → `upsert` shape: the loop is in the caller,
//!   the insert in the callee).
//! * `shift-remove` — positional `.remove(i)` in a loop (a by-key
//!   `.remove(&k)` passes: its argument is a reference).
//! * `sort-in-loop` / `contains-in-loop` — sorting or linearly scanning a
//!   collection that persists across iterations of the innermost loop.
//!   Loop-local bindings are exempt: they are fresh per iteration.
//! * `nested-loop` — an inner `for` over the same iterated expression as
//!   an enclosing loop.
//!
//! Like the other interprocedural checks these ignore inline waivers —
//! their findings are properties of call paths and loop nests, not single
//! lines — and are governed by their ratchet files instead.

#![allow(
    clippy::indexing_slicing,
    reason = "function ids are dense indices produced by enumerate() over the same fn table the facts vector is sized from"
)]

use std::collections::BTreeSet;

use crate::ast::{Block, Expr, ExprKind, Stmt};
use crate::callgraph::CallGraph;
use crate::dataflow::{expr_text, rooted_in_field, FnFacts};
use crate::interproc::RatchetFindings;
use crate::resolve::{FnDef, Workspace};

/// Check 15 — **alloc-hot-path**: allocation sites inside functions
/// reachable from the engine entry points, counted per file and category
/// against `alloc-baseline.txt`.
pub fn alloc_hot_path(
    ws: &Workspace<'_>,
    graph: &CallGraph,
    facts: &[FnFacts],
    entries: &[(&str, &str)],
) -> RatchetFindings {
    let seeds = ws.find_entries(entries);
    let pred = graph.reachable_from(&seeds);
    let mut out = RatchetFindings::default();
    for &f in pred.keys() {
        let def = &ws.fns[f];
        for fact in &facts[f].allocs {
            let path = graph.witness_path(ws, &pred, f);
            out.push(
                def.path,
                fact.category.to_string(),
                fact.line,
                format!(
                    "{} inside `{}`, reachable from the engine hot path ({path})",
                    fact.what, def.item.name
                ),
            );
        }
    }
    out.sites.sort();
    out
}

/// Check 16 — **loop-complexity**: loop-carried superlinear shapes in the
/// library crates, counted per file and category against
/// `loop-baseline.txt`.
pub fn loop_complexity(
    ws: &Workspace<'_>,
    facts: &[FnFacts],
    lib_files: &BTreeSet<String>,
) -> RatchetFindings {
    let mut out = RatchetFindings::default();
    for (id, def) in ws.fns.iter().enumerate() {
        if !lib_files.contains(def.path) {
            continue;
        }
        let Some(body) = &def.item.body else {
            continue;
        };
        let _ = id;
        let mut walk = LoopWalk {
            ws,
            def,
            facts,
            out: &mut out,
            stack: Vec::new(),
        };
        walk.block(body);
    }
    out.sites.sort();
    out
}

/// One enclosing loop while walking a body.
struct LoopCtx {
    /// Dotted text of the iterated expression (`for` loops), empty for
    /// `while`/`loop`.
    iter_text: String,
    /// Names bound by `let` inside this loop's body — fresh per iteration.
    locals: BTreeSet<String>,
    /// Receiver texts of `binary_search*` calls seen in this loop.
    binsearch_recvs: Vec<String>,
}

struct LoopWalk<'w, 'a, 'o> {
    ws: &'w Workspace<'a>,
    def: &'w FnDef<'a>,
    facts: &'w [FnFacts],
    out: &'o mut RatchetFindings,
    stack: Vec<LoopCtx>,
}

/// The single root binding name of a receiver chain (`v.windows(2)` → `v`,
/// `self.users` → `None`: not a lone binding).
fn root_name(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Path(p) => {
            let mut segs = p.split_whitespace();
            let first = segs.next()?;
            segs.next().is_none().then_some(first)
        }
        ExprKind::Field { base, .. }
        | ExprKind::Index { base, .. }
        | ExprKind::Method { recv: base, .. }
        | ExprKind::Ref(base)
        | ExprKind::Try(base)
        | ExprKind::Unary { operand: base, .. } => root_name(base),
        _ => None,
    }
}

impl LoopWalk<'_, '_, '_> {
    fn push_finding(&mut self, category: &str, line: u32, message: String) {
        self.out
            .push(self.def.path, category.to_string(), line, message);
    }

    /// Does the receiver persist across iterations of the innermost loop?
    /// Field-rooted chains always do; lone bindings only when they were
    /// not introduced inside that loop (its pattern variables were added
    /// to `locals` on entry).
    fn persists(&self, recv: &Expr) -> bool {
        if rooted_in_field(recv) {
            return true;
        }
        match (root_name(recv), self.stack.last()) {
            (Some(name), Some(ctx)) => name != "self" && !ctx.locals.contains(name),
            _ => false,
        }
    }

    fn enter_loop(&mut self, iter_text: String, pat: &str, body: &Block) {
        let mut locals = BTreeSet::new();
        for w in pat.split(|c: char| !c.is_alphanumeric() && c != '_') {
            if !w.is_empty()
                && w != "mut"
                && w != "ref"
                && w.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                locals.insert(w.to_string());
            }
        }
        self.stack.push(LoopCtx {
            iter_text,
            locals,
            binsearch_recvs: Vec::new(),
        });
        self.block(body);
        self.stack.pop();
    }

    fn block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let { pat, init, .. } => {
                    if let Some(e) = init {
                        self.expr(e);
                    }
                    if let Some(ctx) = self.stack.last_mut() {
                        for w in pat.split(|c: char| !c.is_alphanumeric() && c != '_') {
                            if !w.is_empty() && w != "mut" && w != "ref" {
                                ctx.locals.insert(w.to_string());
                            }
                        }
                    }
                }
                Stmt::Expr { expr, .. } => self.expr(expr),
                Stmt::Item(_) => {}
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::ForLoop { pat, iter, body } => {
                let text = expr_text(iter);
                if text != "?" {
                    if let Some(outer) = self
                        .stack
                        .iter()
                        .find(|c| !c.iter_text.is_empty() && c.iter_text == text)
                    {
                        let _ = outer;
                        self.push_finding(
                            "nested-loop",
                            e.line,
                            format!(
                                "nested `for` over `{text}` inside a loop already iterating \
                                 `{text}` in `{}` — O(n²) over the same collection",
                                self.def.item.name
                            ),
                        );
                    }
                }
                self.expr(iter);
                self.enter_loop(text, pat, body);
            }
            ExprKind::While { cond, body, pat } => {
                self.expr(cond);
                self.enter_loop(String::new(), pat.as_deref().unwrap_or(""), body);
            }
            ExprKind::Loop { body } => {
                self.enter_loop(String::new(), "", body);
            }
            ExprKind::Method {
                recv, name, args, ..
            } => {
                if !self.stack.is_empty() {
                    self.method_in_loop(e.line, recv, name, args);
                }
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Call { callee, args } => {
                if !self.stack.is_empty() {
                    if let ExprKind::Path(p) = &callee.kind {
                        let targets = self.ws.resolve_path_call(p, self.def);
                        self.call_hop(e.line, &targets, &expr_text(callee));
                    }
                }
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            _ => crate::visit::walk_expr(e, &mut |child| self.expr(child)),
        }
    }

    fn method_in_loop(&mut self, line: u32, recv: &Expr, name: &str, args: &[Expr]) {
        let fn_name = &self.def.item.name;
        let recv_text = expr_text(recv);
        if name.starts_with("binary_search") {
            if let Some(ctx) = self.stack.last_mut() {
                ctx.binsearch_recvs.push(recv_text.clone());
            }
        }
        if name == "insert" {
            let binary = self
                .stack
                .last()
                .is_some_and(|c| c.binsearch_recvs.contains(&recv_text));
            if binary {
                self.push_finding(
                    "binary-insert",
                    line,
                    format!(
                        "binary-search-then-insert on `{recv_text}` in a loop in `{fn_name}` \
                         — each insert shifts O(n) elements, O(n²) total; batch and sort \
                         once, or use a BTreeMap"
                    ),
                );
            } else if rooted_in_field(recv) {
                self.push_finding(
                    "growing-insert",
                    line,
                    format!(
                        "`.insert` into `{recv_text}` (a struct field that outlives the \
                         call) inside a loop in `{fn_name}` — per-element churn on a \
                         growing collection"
                    ),
                );
            }
            return;
        }
        if name == "remove"
            && args.len() == 1
            && !matches!(&args[0].kind, ExprKind::Ref(_))
            && self.persists(recv)
        {
            self.push_finding(
                "shift-remove",
                line,
                format!(
                    "positional `.remove(i)` on `{recv_text}` in a loop in `{fn_name}` — \
                     each remove shifts O(n) elements; use retain, swap_remove, or drain"
                ),
            );
        }
        if name.starts_with("sort") && self.persists(recv) {
            self.push_finding(
                "sort-in-loop",
                line,
                format!(
                    "`.{name}()` on `{recv_text}` inside a loop in `{fn_name}` — re-sorting \
                     a persistent collection per iteration is O(n² log n); sort once after \
                     the loop"
                ),
            );
        }
        if name == "contains" && args.len() == 1 && self.persists(recv) {
            self.push_finding(
                "contains-in-loop",
                line,
                format!(
                    "`.contains(…)` linear scan of `{recv_text}` inside a loop in \
                     `{fn_name}` — O(n²) membership testing; use a set"
                ),
            );
        }
        // One call hop: a loop calling a function that inserts into a
        // field-rooted collection is the same growing-insert shape with
        // the loop and the insert in different frames.
        if name != "insert" {
            let recv_is_self = matches!(&recv.kind, ExprKind::Path(p) if p.trim() == "self");
            let targets = self.ws.resolve_method_call(name, recv_is_self, self.def);
            self.call_hop(line, &targets, name);
        }
    }

    fn call_hop(&mut self, line: u32, targets: &[usize], callee_text: &str) {
        let fn_name = &self.def.item.name;
        for &t in targets {
            if t < self.facts.len() && !self.facts[t].field_inserts.is_empty() {
                let inner = &self.facts[t].field_inserts[0];
                let callee = &self.ws.fns[t].item.name;
                self.push_finding(
                    "growing-insert",
                    line,
                    format!(
                        "loop in `{fn_name}` calls `{callee_text}` → `{callee}`, which \
                         inserts into `{}` (line {}) — per-element churn on a growing \
                         collection; consider batching the whole delta set",
                        inner.what, inner.line
                    ),
                );
                return; // one finding per call site, not per candidate
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::dataflow;
    use crate::lexer::lex;

    fn findings(sources: &[(&str, &str)]) -> RatchetFindings {
        let files: Vec<(String, crate::ast::File)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), parse_file(&lex(s).tokens)))
            .collect();
        let ws = Workspace::build(&files);
        let facts = dataflow::compute(&ws);
        let lib: BTreeSet<String> = sources.iter().map(|(p, _)| p.to_string()).collect();
        loop_complexity(&ws, &facts, &lib)
    }

    fn cats(f: &RatchetFindings) -> Vec<&str> {
        f.sites.iter().map(|s| s.1.as_str()).collect()
    }

    #[test]
    fn binary_search_then_insert_is_flagged() {
        let src = "fn merge(dst: &mut Vec<u32>, src: &[u32]) { for x in src { \
                   if let Err(i) = dst.binary_search(x) { dst.insert(i, *x); } } }";
        let f = findings(&[("crates/core/src/x.rs", src)]);
        assert_eq!(cats(&f), vec!["binary-insert"], "{:?}", f.sites);
    }

    #[test]
    fn batched_sort_after_the_loop_passes() {
        let src = "fn merge(dst: &mut Vec<u32>, src: &[u32]) { \
                   for x in src { dst.push(*x); } dst.sort_unstable(); dst.dedup(); }";
        let f = findings(&[("crates/core/src/x.rs", src)]);
        assert!(f.sites.is_empty(), "{:?}", f.sites);
    }

    #[test]
    fn field_insert_in_loop_is_growing_insert_direct_and_one_hop() {
        let direct = "impl Index { fn apply(&mut self, deltas: Vec<Delta>) { \
                      for d in deltas { self.files.insert(d.key, d.meta); } } }";
        let f = findings(&[("crates/fs/src/x.rs", direct)]);
        assert_eq!(cats(&f), vec!["growing-insert"], "{:?}", f.sites);

        let hop = "impl Index { fn apply(&mut self, deltas: Vec<Delta>) { \
                   for d in deltas { self.upsert(d); } } \
                   fn upsert(&mut self, d: Delta) { self.files.insert(d.key, d.meta); } }";
        let f = findings(&[("crates/fs/src/x.rs", hop)]);
        assert_eq!(cats(&f), vec!["growing-insert"], "{:?}", f.sites);
        assert!(f.sites[0].3.contains("upsert"), "{:?}", f.sites);
    }

    #[test]
    fn sort_and_contains_on_persistent_collections_are_flagged_loop_locals_pass() {
        let src = "fn f(names: &mut Vec<String>, batches: &[Batch]) { \
                   for b in batches { names.sort(); \
                   if names.contains(&b.name) { skip(b); } \
                   let mut scratch = Vec::new(); scratch.push(b.id); scratch.sort(); } }";
        let f = findings(&[("crates/core/src/x.rs", src)]);
        assert_eq!(
            cats(&f),
            vec!["contains-in-loop", "sort-in-loop"],
            "{:?}",
            f.sites
        );
    }

    #[test]
    fn positional_remove_is_flagged_and_by_key_remove_passes() {
        let src = "fn f(v: &mut Vec<u32>, m: &mut BTreeMap<u32, u32>, idxs: &[usize]) { \
                   for i in idxs { v.remove(*i); m.remove(&3); } }";
        let f = findings(&[("crates/core/src/x.rs", src)]);
        assert_eq!(cats(&f), vec!["shift-remove"], "{:?}", f.sites);
    }

    #[test]
    fn nested_loop_over_the_same_collection_is_flagged() {
        let src = "fn f(items: &[u32]) -> u32 { let mut hits = 0; \
                   for a in items { for b in items { if a == b { hits += 1; } } } hits }";
        let f = findings(&[("crates/core/src/x.rs", src)]);
        assert_eq!(cats(&f), vec!["nested-loop"], "{:?}", f.sites);
    }

    #[test]
    fn alloc_census_counts_only_reachable_functions() {
        let sources = &[
            (
                "crates/sim/src/engine.rs",
                "pub fn run() { hot(); } fn hot() { let v: Vec<u32> = Vec::new(); go(v); }",
            ),
            (
                "crates/core/src/cold.rs",
                "pub fn cold() -> String { format!(\"never on the hot path\") }",
            ),
        ];
        let files: Vec<(String, crate::ast::File)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), parse_file(&lex(s).tokens)))
            .collect();
        let ws = Workspace::build(&files);
        let graph = CallGraph::build(&ws);
        let facts = dataflow::compute(&ws);
        let got = alloc_hot_path(&ws, &graph, &facts, &[("crates/sim/src/engine.rs", "run")]);
        assert_eq!(got.sites.len(), 1, "{:?}", got.sites);
        assert_eq!(got.sites[0].1, "vec-new");
        assert!(got.sites[0].3.contains("run -> hot"));
    }
}
