//! Per-function forward dataflow: local facts for the interprocedural
//! checks.
//!
//! For every function in the [`crate::resolve::Workspace`] this module
//! computes, in one forward pass over the body (closures included):
//!
//! * **nondeterminism sources** — wall-clock reads (`Instant::now`,
//!   `SystemTime::now`), ambient entropy (`thread_rng`, `OsRng`,
//!   `RandomState`, `getrandom`), thread identity (`thread::current`), and
//!   — the one a token grep cannot see — *iteration over a hash
//!   container*. Hash-typed values are tracked by a small gen-only taint
//!   lattice: a binding is tainted when its declared type or initializer
//!   is a `HashMap`/`HashSet` (literally, via a hash-returning function,
//!   or by copy from another tainted binding), and iterating any tainted
//!   value, hash-typed field, or hash-returning call result is a source.
//! * **panic sites** — `unwrap`/`expect` calls, panicking macros, index
//!   expressions — with the same categories as the token-level check, so
//!   the panic-reachability ratchet reads like the file-local one.
//! * **trie mutations and changelog emits** — method calls on the `trie`
//!   field of `VirtualFs` that structurally mutate it, and `Delta`
//!   constructions handed to `Changelog::record`; the
//!   changelog-completeness check matches the two sets up.
//!
//! The pass is deliberately gen-only (no kill on rebinding): rebinding a
//! name away from a hash container and then iterating it is rare enough
//! that the false positive is worth the simpler, obviously-terminating
//! analysis.

#![allow(
    clippy::indexing_slicing,
    reason = "function ids are dense indices produced by enumerate() over the same fn table the facts vector is sized from"
)]

use std::collections::BTreeSet;

use crate::ast::{Block, Expr, ExprKind, Stmt};
use crate::resolve::Workspace;

/// Hash-container methods that observe iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// `PathTrie` methods that structurally mutate the index.
const TRIE_MUTATORS: &[&str] = &[
    "insert",
    "remove_id",
    "rename",
    "remove_subtree",
    "meta_mut",
];

/// One located fact.
#[derive(Debug, Clone)]
pub struct Fact {
    pub line: u32,
    /// Baseline category (`instant-now`, `hash-iter`, `unwrap`, `index`,
    /// `upsert`, …).
    pub category: &'static str,
    /// Human-readable description of the site.
    pub what: String,
}

/// Everything the interprocedural checks need to know about one function
/// body in isolation.
#[derive(Debug, Default)]
pub struct FnFacts {
    pub nondet: Vec<Fact>,
    pub panics: Vec<Fact>,
    /// Mutating method calls on a `trie` receiver (vfs only in practice).
    pub trie_muts: Vec<Fact>,
    /// `Delta::…` constructions (changelog emits).
    pub emits: Vec<Fact>,
    /// Heap-allocation sites (`Vec::new`, `Box::new`, `clone`, `collect`,
    /// `to_owned`/`to_string`, `vec!`/`format!`), for the alloc-hot-path
    /// census.
    pub allocs: Vec<Fact>,
    /// `.insert(…)` calls whose receiver is rooted in a struct field —
    /// inserts into a collection that outlives the call, which the
    /// loop-complexity check charges to callers that loop over deltas
    /// (`what` holds the dotted receiver text).
    pub field_inserts: Vec<Fact>,
}

/// Compute [`FnFacts`] for every function in the workspace, indexed like
/// [`Workspace::fns`].
pub fn compute(ws: &Workspace<'_>) -> Vec<FnFacts> {
    ws.fns
        .iter()
        .map(|def| {
            let mut a = Analysis {
                ws,
                facts: FnFacts::default(),
                tainted: BTreeSet::new(),
            };
            if let Some(body) = &def.item.body {
                a.block(body);
            }
            a.facts
        })
        .collect()
}

struct Analysis<'w, 'a> {
    ws: &'w Workspace<'a>,
    facts: FnFacts,
    /// Names of hash-typed local bindings (gen-only).
    tainted: BTreeSet<String>,
}

/// Last path segment of a space-joined path (`std :: thread :: current`
/// → `current`).
fn segments(path: &str) -> Vec<&str> {
    path.split("::")
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.split_whitespace().next().unwrap_or(""))
        .collect()
}

/// The binding name a `let` pattern introduces (`mut cursors` → `cursors`);
/// `None` for `_`, tuple and struct patterns.
fn binding_name(pat: &str) -> Option<&str> {
    let words: Vec<&str> = pat
        .split_whitespace()
        .filter(|w| *w != "mut" && *w != "ref")
        .collect();
    match words.as_slice() {
        [name, rest @ ..] if (rest.is_empty() || rest.first() == Some(&":")) => {
            if *name == "_" || !name.chars().next().is_some_and(unicode_ident_start) {
                None
            } else {
                Some(name)
            }
        }
        _ => None,
    }
}

fn unicode_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Render a receiver chain as dotted text (`self.shard.files`,
/// `deltas[i].path`), for comparing "the same collection" across sites.
/// Shapes outside the chain fragment render as `?`.
pub fn expr_text(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Path(p) => segments(p).join("::"),
        ExprKind::Field { base, name } => format!("{}.{}", expr_text(base), name),
        ExprKind::Index { base, index } => {
            format!("{}[{}]", expr_text(base), expr_text(index))
        }
        ExprKind::Method { recv, name, .. } => format!("{}.{}()", expr_text(recv), name),
        ExprKind::Call { callee, .. } => format!("{}()", expr_text(callee)),
        ExprKind::Ref(inner) | ExprKind::Try(inner) => expr_text(inner),
        ExprKind::Unary { operand, .. } => expr_text(operand),
        ExprKind::Int(s) => s.clone(),
        _ => "?".to_string(),
    }
}

/// Does this receiver chain bottom out in a struct field (`self.x`,
/// `shard.files`) rather than a local binding?
pub fn rooted_in_field(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Field { name, .. } => name.parse::<u32>().is_err(),
        ExprKind::Index { base, .. }
        | ExprKind::Method { recv: base, .. }
        | ExprKind::Ref(base)
        | ExprKind::Try(base)
        | ExprKind::Unary { operand: base, .. } => rooted_in_field(base),
        _ => false,
    }
}

impl Analysis<'_, '_> {
    /// Is this expression a hash container, as far as the local lattice and
    /// the workspace type facts can tell?
    fn is_hash(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Path(p) => {
                let segs = segments(p);
                segs.len() == 1
                    && segs.first().is_some_and(|n| {
                        self.tainted.contains(*n) || self.ws.hash_fields.contains(*n)
                    })
            }
            ExprKind::Field { name, .. } => {
                self.ws.hash_fields.contains(name) || self.tainted.contains(name)
            }
            ExprKind::Call { callee, .. } => {
                if let ExprKind::Path(p) = &callee.kind {
                    let segs = segments(p);
                    // `HashMap::new()` / `HashSet::with_capacity(…)` or a
                    // call to a hash-returning function.
                    segs.iter().any(|s| *s == "HashMap" || *s == "HashSet")
                        || segs
                            .last()
                            .is_some_and(|n| self.ws.hash_returning.contains(n))
                } else {
                    false
                }
            }
            ExprKind::Method { name, recv, .. } => {
                self.ws.hash_returning.contains(name.as_str())
                    || (name == "clone" && self.is_hash(recv))
            }
            ExprKind::Ref(inner) | ExprKind::Try(inner) => self.is_hash(inner),
            ExprKind::Block(b) => b.stmts.last().is_some_and(
                |s| matches!(s, Stmt::Expr { expr, semi: false } if self.is_hash(expr)),
            ),
            _ => false,
        }
    }

    fn block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let { pat, init, line } => {
                    if let Some(e) = init {
                        self.expr(e);
                    }
                    let hash_ascribed = pat
                        .split_whitespace()
                        .any(|w| w == "HashMap" || w == "HashSet");
                    let hash_init = init.as_ref().is_some_and(|e| self.is_hash(e));
                    if hash_ascribed || hash_init {
                        if let Some(name) = binding_name(pat) {
                            let _ = line;
                            self.tainted.insert(name.to_string());
                        }
                    }
                }
                Stmt::Expr { expr, .. } => self.expr(expr),
                Stmt::Item(item) => {
                    // Nested fn items are indexed as their own workspace
                    // functions; don't double-count their bodies here.
                    let _ = item;
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Path(p) => self.path_facts(p, e.line),
            ExprKind::Call { callee, args } => {
                if let ExprKind::Path(p) = &callee.kind {
                    self.call_alloc_facts(p, e.line);
                }
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Method {
                recv, name, args, ..
            } => {
                self.method_facts(recv, name, args, e.line);
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::MacroCall { name, args } => {
                for (mac, cat) in [
                    ("panic", "panic"),
                    ("unreachable", "unreachable"),
                    ("todo", "todo"),
                    ("unimplemented", "unimplemented"),
                ] {
                    if name == mac {
                        self.facts.panics.push(Fact {
                            line: e.line,
                            category: cat,
                            what: format!("{mac}! macro"),
                        });
                    }
                }
                if name == "vec" {
                    self.push_alloc(e.line, "vec-new", "vec! literal allocates");
                }
                if name == "format" {
                    self.push_alloc(e.line, "format", "format! allocates a String");
                }
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Index { base, index } => {
                self.facts.panics.push(Fact {
                    line: e.line,
                    category: "index",
                    what: "index expression (can panic on out-of-bounds)".to_string(),
                });
                self.expr(base);
                self.expr(index);
            }
            ExprKind::ForLoop { iter, body, .. } => {
                if self.is_hash(iter) {
                    self.facts.nondet.push(Fact {
                        line: e.line,
                        category: "hash-iter",
                        what: "for-loop over a HashMap/HashSet (iteration order is arbitrary)"
                            .to_string(),
                    });
                }
                self.expr(iter);
                self.block(body);
            }
            ExprKind::StructLit { fields, .. } => {
                // `Delta::…` literals only count as emits when they are
                // handed to `record` (see `method_facts`): a constructed-
                // but-unrecorded delta is precisely the bug the
                // changelog-completeness check exists to catch.
                for f in fields {
                    self.expr(f);
                }
            }
            ExprKind::Block(b) => self.block(b),
            ExprKind::If {
                cond, then, els, ..
            } => {
                self.expr(cond);
                self.block(then);
                if let Some(els) = els {
                    self.expr(els);
                }
            }
            ExprKind::While { cond, body, .. } => {
                self.expr(cond);
                self.block(body);
            }
            ExprKind::Loop { body } => self.block(body),
            ExprKind::Match { scrutinee, arms } => {
                self.expr(scrutinee);
                for (_, v) in arms {
                    self.expr(v);
                }
            }
            _ => crate::visit::walk_expr(e, &mut |child| self.expr(child)),
        }
    }

    fn path_facts(&mut self, path: &str, line: u32) {
        let segs = segments(path);
        let suffix2 = |a: &str, b: &str| {
            segs.len() >= 2 && segs[segs.len() - 2] == a && segs[segs.len() - 1] == b
        };
        if suffix2("Instant", "now") {
            self.push_nondet(line, "instant-now", "Instant::now() wall-clock read");
        }
        if suffix2("SystemTime", "now") {
            self.push_nondet(line, "systemtime-now", "SystemTime::now() wall-clock read");
        }
        if suffix2("thread", "current") {
            self.push_nondet(line, "thread-id", "thread::current() identity read");
        }
        if segs.contains(&"RandomState") {
            self.push_nondet(line, "random-state", "RandomState is entropy-seeded");
        }
        for ent in [
            "thread_rng",
            "from_entropy",
            "from_os_rng",
            "OsRng",
            "getrandom",
        ] {
            if segs.contains(&ent) {
                self.push_nondet(line, "entropy", &format!("`{ent}` ambient-entropy source"));
            }
        }
        if suffix2("rand", "random") {
            self.push_nondet(line, "entropy", "rand::random() ambient-entropy draw");
        }
    }

    fn push_nondet(&mut self, line: u32, category: &'static str, what: &str) {
        self.facts.nondet.push(Fact {
            line,
            category,
            what: what.to_string(),
        });
    }

    fn method_facts(&mut self, recv: &Expr, name: &str, args: &[Expr], line: u32) {
        if (name == "unwrap" || name == "expect") && args.len() <= 1 {
            self.facts.panics.push(Fact {
                line,
                category: if name == "unwrap" { "unwrap" } else { "expect" },
                what: format!("call to .{name}()"),
            });
        }
        if HASH_ITER_METHODS.contains(&name) && self.is_hash(recv) {
            self.facts.nondet.push(Fact {
                line,
                category: "hash-iter",
                what: format!(".{name}() over a HashMap/HashSet (iteration order is arbitrary)"),
            });
        }
        if TRIE_MUTATORS.contains(&name)
            && matches!(&recv.kind, ExprKind::Field { name: f, .. } if f == "trie")
        {
            self.facts.trie_muts.push(Fact {
                line,
                category: "trie-mut",
                what: format!(".{name}() on the trie"),
            });
        }
        if name == "record" {
            // `log.record(Delta::…)` — scan the argument for the variant.
            for a in args {
                self.scan_delta(a);
            }
        }
        match (name, args.len()) {
            ("clone", 0) => self.push_alloc(line, "clone", ".clone() deep-copies"),
            ("collect", 0) => self.push_alloc(line, "collect", ".collect() materialises"),
            ("to_owned", 0) => self.push_alloc(line, "to-owned", ".to_owned() copies"),
            ("to_string", 0) => self.push_alloc(line, "to-string", ".to_string() allocates"),
            ("to_vec", 0) => self.push_alloc(line, "collect", ".to_vec() copies"),
            _ => {}
        }
        if name == "insert" && rooted_in_field(recv) {
            self.facts.field_inserts.push(Fact {
                line,
                category: "growing-insert",
                what: expr_text(recv),
            });
        }
    }

    /// Allocation facts for direct constructor calls (`Vec::new()`,
    /// `Box::new(x)`, `Vec::with_capacity(n)`).
    fn call_alloc_facts(&mut self, path: &str, line: u32) {
        let segs = segments(path);
        let suffix2 = |a: &str, b: &str| {
            segs.len() >= 2 && segs[segs.len() - 2] == a && segs[segs.len() - 1] == b
        };
        if suffix2("Vec", "new") || suffix2("Vec", "with_capacity") {
            self.push_alloc(line, "vec-new", "Vec construction allocates");
        }
        if suffix2("Box", "new") {
            self.push_alloc(line, "box-new", "Box::new heap-allocates");
        }
        if suffix2("String", "new")
            || suffix2("String", "with_capacity")
            || suffix2("String", "from")
        {
            self.push_alloc(line, "to-string", "String construction allocates");
        }
    }

    fn push_alloc(&mut self, line: u32, category: &'static str, what: &str) {
        self.facts.allocs.push(Fact {
            line,
            category,
            what: what.to_string(),
        });
    }

    /// Record `Delta::Variant`/`Delta::Variant { … }` constructions.
    fn scan_delta(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Path(p) => self.delta_facts(p, e.line),
            ExprKind::StructLit { path, fields } => {
                self.delta_facts(path, e.line);
                for f in fields {
                    self.scan_delta(f);
                }
            }
            _ => crate::visit::walk_expr(e, &mut |child| self.scan_delta(child)),
        }
    }

    fn delta_facts(&mut self, path: &str, line: u32) {
        let segs = segments(path);
        if segs.len() >= 2 && segs[segs.len() - 2] == "Delta" {
            let category = match segs[segs.len() - 1] {
                "Upsert" => "upsert",
                "Touch" => "touch",
                "Remove" => "remove",
                _ => "other",
            };
            self.facts.emits.push(Fact {
                line,
                category,
                what: format!("Delta::{} emit", segs[segs.len() - 1]),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::lexer::lex;

    fn facts_of(sources: &[(&str, &str)], fn_name: &str) -> FnFacts {
        let files: Vec<(String, crate::ast::File)> = sources
            .iter()
            .map(|(p, s)| (p.to_string(), parse_file(&lex(s).tokens)))
            .collect();
        let mut ws = Workspace::build(&files);
        for (_, s) in sources {
            ws.scan_hash_decls(&lex(s).tokens);
        }
        let all = compute(&ws);
        let (idx, _) = ws
            .fns
            .iter()
            .enumerate()
            .find(|(_, d)| d.item.name == fn_name)
            .expect("fn indexed");
        let f = &all[idx];
        FnFacts {
            nondet: f.nondet.clone(),
            panics: f.panics.clone(),
            trie_muts: f.trie_muts.clone(),
            emits: f.emits.clone(),
            allocs: f.allocs.clone(),
            field_inserts: f.field_inserts.clone(),
        }
    }

    #[test]
    fn local_hash_iteration_is_tainted() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); \
                   for (k, v) in m.iter() { use_it(k, v); } }";
        let f = facts_of(&[("crates/core/src/x.rs", src)], "f");
        assert_eq!(f.nondet.len(), 1);
        assert_eq!(f.nondet[0].category, "hash-iter");
    }

    #[test]
    fn hash_returning_call_iteration_is_tainted() {
        let src = "pub fn by_user() -> HashMap<u32, u64> { HashMap::new() }\n\
                   fn g() { let v: Vec<_> = by_user().into_iter().collect(); v.len(); }";
        let f = facts_of(&[("crates/core/src/x.rs", src)], "g");
        assert_eq!(f.nondet.len(), 1, "{:?}", f.nondet);
    }

    #[test]
    fn hash_field_iteration_is_tainted_and_btreemap_is_not() {
        let src = "struct S { by_id: HashMap<u32, u64>, sorted: BTreeMap<u32, u64> }\n\
                   impl S { fn a(&self) { for x in self.by_id.values() { go(x); } } \n\
                            fn b(&self) { for x in self.sorted.values() { go(x); } } }";
        let fa = facts_of(&[("crates/core/src/x.rs", src)], "a");
        assert_eq!(fa.nondet.len(), 1);
        let fb = facts_of(&[("crates/core/src/x.rs", src)], "b");
        assert!(fb.nondet.is_empty());
    }

    #[test]
    fn clocks_and_entropy_are_sources() {
        let src = "fn f() { let t = Instant::now(); let r = rand::random(); t.elapsed(); r }";
        let f = facts_of(&[("crates/core/src/x.rs", src)], "f");
        let cats: Vec<&str> = f.nondet.iter().map(|x| x.category).collect();
        assert!(cats.contains(&"instant-now"));
        assert!(cats.contains(&"entropy"));
    }

    #[test]
    fn panic_sites_are_categorised() {
        let src = "fn f(v: Vec<u32>, o: Option<u32>) -> u32 { \
                   if v.is_empty() { panic!(\"empty\"); } o.unwrap() + v[0] }";
        let f = facts_of(&[("crates/core/src/x.rs", src)], "f");
        let cats: Vec<&str> = f.panics.iter().map(|x| x.category).collect();
        assert_eq!(cats, vec!["panic", "unwrap", "index"]);
    }

    #[test]
    fn alloc_sites_are_categorised() {
        let src = "fn f() -> Vec<String> { let mut v = Vec::new(); \
                   v.push(format!(\"x\")); let w = v.clone(); \
                   w.iter().map(|s| s.to_string()).collect() }";
        let f = facts_of(&[("crates/core/src/x.rs", src)], "f");
        let cats: Vec<&str> = f.allocs.iter().map(|x| x.category).collect();
        // Pre-order: the outer `.collect()` is visited before the closure
        // body's `.to_string()`.
        assert_eq!(
            cats,
            vec!["vec-new", "format", "clone", "collect", "to-string"]
        );
    }

    #[test]
    fn field_rooted_inserts_are_recorded_and_local_ones_are_not() {
        let src = "impl Shard { fn up(&mut self, k: Key, v: V) { \
                   self.files.insert(k, v); \
                   let mut local = BTreeMap::new(); local.insert(1, 2); } }";
        let f = facts_of(&[("crates/fs/src/x.rs", src)], "up");
        assert_eq!(f.field_inserts.len(), 1, "{:?}", f.field_inserts);
        assert_eq!(f.field_inserts[0].what, "self.files");
    }

    #[test]
    fn trie_mutations_and_delta_emits_are_seen() {
        let src = "impl VirtualFs { fn insert_meta(&mut self) { \
                   let inserted = self.trie.insert(path, meta); \
                   if let Some(log) = self.changelog.as_mut() { \
                   log.record(Delta::Upsert { path: p, id, meta }); } } }";
        let f = facts_of(&[("crates/fs/src/vfs.rs", src)], "insert_meta");
        assert_eq!(f.trie_muts.len(), 1);
        assert_eq!(f.emits.len(), 1);
        assert_eq!(f.emits[0].category, "upsert");
    }
}
