//! Compact checkpoints of the live catalog state.
//!
//! A checkpoint is a JSONL file (the same wire idiom as
//! [`crate::snapshot`]) capturing everything the recovery path needs to
//! rebuild the *exact* live `(CatalogIndex, DeltaBuffer)` pair:
//!
//! ```text
//! {"version":1,"covered_seq":S,"files":F,"buffer_deltas":B,"raw_pending":R}
//! <F index entries, each a JSON Upsert delta in (user, path) order>
//! <B pending buffer deltas, each a JSON delta in node-id order>
//! {"footer_crc":C}
//! ```
//!
//! `covered_seq` is the last WAL sequence folded into this state —
//! recovery replays only records past it. The pending buffer rides
//! along (with its raw-delta count) so a checkpoint taken mid-backlog —
//! e.g. during a stretch of scan fallbacks — is still a complete cut.
//! The footer CRC32 covers every preceding byte; a checkpoint whose
//! footer is missing, unparsable, or wrong is rejected wholesale and
//! recovery falls back to the previous one (two are retained). Writes
//! go through a `.tmp` + rename so a crash mid-checkpoint can never
//! shadow a good file with a half-written one.

use super::checksum::Crc32;
use super::{FsyncPolicy, StorageError};
use crate::changelog::Delta;
use crate::delta_buffer::DeltaBuffer;
use crate::exemption::ExemptionList;
use crate::index::CatalogIndex;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// How many checkpoint generations stay on disk.
pub const RETAINED_CHECKPOINTS: usize = 2;

/// First line of a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointHeader {
    /// Format version (currently 1).
    pub version: u32,
    /// Last WAL sequence whose effects are folded into this state.
    pub covered_seq: u64,
    /// Index entry lines that follow.
    pub files: u64,
    /// Pending-buffer delta lines that follow the index entries.
    pub buffer_deltas: u64,
    /// The buffer's raw (pre-coalescing) pending count at capture time.
    pub raw_pending: u64,
}

/// Trailing integrity line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CheckpointFooter {
    footer_crc: u32,
}

/// A successfully loaded checkpoint, ready to rehydrate.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    pub header: CheckpointHeader,
    /// Index entries (Upsert deltas) followed by nothing else.
    pub index_entries: Vec<Delta>,
    /// Pending buffer deltas in drain order.
    pub buffer_entries: Vec<Delta>,
}

impl LoadedCheckpoint {
    /// Rebuild the live pair this checkpoint captured. `exemptions`
    /// must be the run's list (exemption flags are derived, not
    /// stored — the engine's list is fixed per run, and callers that
    /// mutate theirs re-checkpoint at the mutation).
    pub fn rehydrate(
        self,
        buffer_cap: usize,
        exemptions: &ExemptionList,
    ) -> (CatalogIndex, DeltaBuffer) {
        let mut index = CatalogIndex::new();
        let mut seed = DeltaBuffer::unbounded();
        seed.absorb(self.index_entries);
        index.flush(&mut seed, exemptions);
        let mut buffer = DeltaBuffer::with_capacity(buffer_cap);
        buffer.absorb(self.buffer_entries);
        buffer.set_raw_pending(self.header.raw_pending);
        (index, buffer)
    }
}

/// The file name for a checkpoint covering `seq` (zero-padded so
/// lexical and numeric order agree).
pub fn checkpoint_file_name(seq: u64) -> String {
    format!("checkpoint-{seq:020}.ckpt")
}

/// Write a checkpoint of `(index, buffer)` covering `covered_seq` into
/// `dir`, pruning generations beyond [`RETAINED_CHECKPOINTS`]. Returns
/// the bytes written.
pub fn write_checkpoint(
    dir: &Path,
    covered_seq: u64,
    index: &CatalogIndex,
    buffer: &DeltaBuffer,
    fsync: FsyncPolicy,
) -> Result<u64, StorageError> {
    let mut body: Vec<u8> = Vec::new();
    let mut crc = Crc32::new();
    let line = |body: &mut Vec<u8>, crc: &mut Crc32, value: &[u8]| {
        body.extend_from_slice(value);
        body.push(b'\n');
        crc.update(value);
        crc.update(b"\n");
    };

    let index_entries: Vec<Delta> = index.export_deltas().collect();
    let buffer_entries: Vec<&Delta> = buffer.pending_deltas().collect();
    let header = CheckpointHeader {
        version: 1,
        covered_seq,
        files: u64::try_from(index_entries.len()).unwrap_or(u64::MAX),
        buffer_deltas: u64::try_from(buffer_entries.len()).unwrap_or(u64::MAX),
        raw_pending: buffer.raw_pending(),
    };
    line(&mut body, &mut crc, &encode_line(&header)?);
    for entry in &index_entries {
        line(&mut body, &mut crc, &encode_line(entry)?);
    }
    for entry in buffer_entries {
        line(&mut body, &mut crc, &encode_line(entry)?);
    }
    let footer = CheckpointFooter {
        footer_crc: crc.finish(),
    };
    body.extend_from_slice(&encode_line(&footer)?);
    body.push(b'\n');

    let final_path = dir.join(checkpoint_file_name(covered_seq));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(covered_seq)));
    {
        let mut file = std::fs::File::create(&tmp_path).map_err(StorageError::Io)?;
        file.write_all(&body).map_err(StorageError::Io)?;
        if matches!(fsync, FsyncPolicy::Always) {
            file.sync_all().map_err(StorageError::Io)?;
        }
    }
    std::fs::rename(&tmp_path, &final_path).map_err(StorageError::Io)?;
    prune_checkpoints(dir)?;
    Ok(u64::try_from(body.len()).unwrap_or(0))
}

/// List `(covered_seq, path)` of every checkpoint in `dir`, newest
/// first.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StorageError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StorageError::Io(e)),
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(StorageError::Io)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((seq, entry.path()));
    }
    found.sort_by_key(|entry| std::cmp::Reverse(entry.0));
    Ok(found)
}

/// Delete checkpoint generations beyond the newest
/// [`RETAINED_CHECKPOINTS`].
fn prune_checkpoints(dir: &Path) -> Result<(), StorageError> {
    for (_, path) in list_checkpoints(dir)?
        .into_iter()
        .skip(RETAINED_CHECKPOINTS)
    {
        std::fs::remove_file(path).map_err(StorageError::Io)?;
    }
    Ok(())
}

/// Load and verify one checkpoint file. Any framing, parse, count, or
/// checksum problem is a `Corrupt` error — the caller falls back to an
/// older generation.
pub fn load_checkpoint(path: &Path) -> Result<LoadedCheckpoint, StorageError> {
    let text = std::fs::read_to_string(path).map_err(StorageError::Io)?;
    let corrupt = |what: &str| StorageError::Corrupt(format!("{}: {what}", path.display()));

    // Split the footer (last non-empty line) from the covered body.
    let trimmed = text.trim_end_matches('\n');
    let Some((body, footer_line)) = trimmed.rsplit_once('\n') else {
        return Err(corrupt("no footer line"));
    };
    let footer: CheckpointFooter =
        serde_json::from_str(footer_line).map_err(|_| corrupt("footer does not parse"))?;
    let mut crc = Crc32::new();
    crc.update(body.as_bytes());
    crc.update(b"\n");
    if crc.finish() != footer.footer_crc {
        return Err(corrupt("footer checksum mismatch"));
    }

    let mut lines = body.lines();
    let header: CheckpointHeader = lines
        .next()
        .ok_or_else(|| corrupt("missing header"))
        .and_then(|l| serde_json::from_str(l).map_err(|_| corrupt("header does not parse")))?;
    if header.version != 1 {
        return Err(corrupt("unsupported version"));
    }
    let mut index_entries = Vec::new();
    let mut buffer_entries = Vec::new();
    for line in lines {
        let delta: Delta =
            serde_json::from_str(line).map_err(|_| corrupt("entry does not parse"))?;
        if u64::try_from(index_entries.len()).unwrap_or(u64::MAX) < header.files {
            index_entries.push(delta);
        } else {
            buffer_entries.push(delta);
        }
    }
    if u64::try_from(index_entries.len()).unwrap_or(u64::MAX) != header.files
        || u64::try_from(buffer_entries.len()).unwrap_or(u64::MAX) != header.buffer_deltas
    {
        return Err(corrupt("entry counts disagree with the header"));
    }
    Ok(LoadedCheckpoint {
        header,
        index_entries,
        buffer_entries,
    })
}

/// Serialize one JSONL line's value.
fn encode_line<T: Serialize>(value: &T) -> Result<Vec<u8>, StorageError> {
    serde_json::to_vec(value).map_err(|e| StorageError::Encode(format!("{e:?}")))
}
