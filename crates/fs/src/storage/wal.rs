//! Append-only write-ahead log of catalog delta batches.
//!
//! # Record framing
//!
//! Every record is one length-prefixed binary frame:
//!
//! ```text
//! [payload_len: u32 LE][seq: u64 LE][kind: u8][payload][crc32: u32 LE]
//! ```
//!
//! `kind` is 0 for a [`WalPayload::Batch`] (JSON-encoded `Vec<Delta>`,
//! the raw deltas drained from the changelog at one boundary) and 1 for
//! a [`WalPayload::FlushMark`] (empty payload — the buffer was folded
//! into the index here). The CRC covers `seq ++ kind ++ payload`, so a
//! torn length prefix, a short payload, and a bit flip all surface as a
//! checksum or framing failure. Sequence numbers are assigned by the
//! appender, strictly monotone from 1; the recovery replayer skips any
//! record whose sequence it has already applied, which makes duplicated
//! frames (a re-appended batch after a torn write) idempotent.
//!
//! [`scan_wal`] walks a file front to back and stops at the first
//! record that fails to frame or checksum — everything before it is the
//! durable prefix, everything from it on is a torn tail to truncate.
//! This is the classic ARIES-style contract: an append is atomic iff
//! its whole frame (including the trailing CRC) made it to disk.

use super::checksum::crc32;
use super::fault::CrashFs;
use super::{FsyncPolicy, StorageError};
use crate::changelog::Delta;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// The WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// Frame overhead: length prefix + sequence + kind + CRC.
pub const FRAME_OVERHEAD: u64 = 4 + 8 + 1 + 4;

/// Defensive ceiling on one record's payload (16 MiB): a corrupt length
/// prefix must not drive a multi-gigabyte allocation during recovery.
const MAX_PAYLOAD: u32 = 16 << 20;

const KIND_BATCH: u8 = 0;
const KIND_FLUSH_MARK: u8 = 1;

/// What one WAL record says happened at a catalog boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalPayload {
    /// Raw deltas drained from the changelog at a trigger or day-end
    /// boundary, logged *before* they are absorbed into the buffer.
    Batch(Vec<Delta>),
    /// The staging buffer was flushed into the index at this point
    /// (adaptive trigger flush or forced over-capacity flush).
    FlushMark,
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    pub payload: WalPayload,
}

/// Encode one record frame (exposed for the torture tests, which plant
/// corruptions against real frames).
pub fn encode_record(seq: u64, payload: &WalPayload) -> Result<Vec<u8>, StorageError> {
    let (kind, body) = match payload {
        WalPayload::Batch(deltas) => (
            KIND_BATCH,
            serde_json::to_vec(deltas).map_err(|e| StorageError::Encode(format!("{e:?}")))?,
        ),
        WalPayload::FlushMark => (KIND_FLUSH_MARK, Vec::new()),
    };
    let len = u32::try_from(body.len())
        .ok()
        .filter(|&l| l <= MAX_PAYLOAD)
        .ok_or_else(|| StorageError::Encode(format!("payload of {} bytes", body.len())))?;
    let mut frame = Vec::with_capacity(body.len() + 17);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(&body);
    let crc = crc32(frame.get(4..).unwrap_or_default());
    frame.extend_from_slice(&crc.to_le_bytes());
    Ok(frame)
}

/// The append half of the WAL: owns the file, assigns sequence numbers,
/// and writes through the [`CrashFs`] fault shim so crash-point tests
/// can tear any append at any byte.
#[derive(Debug)]
pub struct Wal {
    sink: CrashFs<File>,
    path: PathBuf,
    fsync: FsyncPolicy,
    next_seq: u64,
    appended: u64,
    appended_bytes: u64,
}

impl Wal {
    /// Open `dir/wal.log` for appending. `next_seq` is the sequence the
    /// next record gets — recovery hands back `last applied + 1`, a
    /// cold start passes 1 over a fresh (truncated) file.
    pub fn open_for_append(
        dir: &Path,
        fsync: FsyncPolicy,
        next_seq: u64,
    ) -> Result<Self, StorageError> {
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(StorageError::Io)?;
        let len = file.metadata().map_err(StorageError::Io)?.len();
        Ok(Wal {
            sink: CrashFs::new(file, len),
            path,
            fsync,
            next_seq,
            appended: 0,
            appended_bytes: 0,
        })
    }

    /// Arm the injected-fault shim: the append whose frame crosses the
    /// absolute byte `offset` is torn there.
    pub fn arm_fault(&mut self, offset: u64) {
        self.sink.kill_at(offset);
    }

    /// Append one record, returning `(seq, frame_bytes)`. On an error
    /// (torn write included) the in-memory writer is stale — the owner
    /// must discard it and re-run recovery, which truncates the torn
    /// tail on disk.
    pub fn append_record(&mut self, payload: &WalPayload) -> Result<(u64, u64), StorageError> {
        let seq = self.next_seq;
        let frame = encode_record(seq, payload)?;
        self.sink.write_all(&frame).map_err(StorageError::Io)?;
        if matches!(self.fsync, FsyncPolicy::Always) {
            self.sink.get_ref().sync_all().map_err(StorageError::Io)?;
        }
        self.next_seq += 1;
        self.appended += 1;
        let bytes = u64::try_from(frame.len()).unwrap_or(0);
        self.appended_bytes += bytes;
        Ok((seq, bytes))
    }

    /// The sequence number of the most recently appended record (0 if
    /// none yet).
    pub fn last_seq(&self) -> u64 {
        self.next_seq.saturating_sub(1)
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Frame bytes appended through this handle.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Outcome of scanning a WAL file front to back.
#[derive(Debug)]
pub struct WalScan {
    /// Every record that framed and checksummed, in file order
    /// (duplicate sequences included — the replayer deduplicates).
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix; everything past it is torn.
    pub valid_len: u64,
    /// Why the scan stopped early, if it did.
    pub torn: Option<String>,
}

/// Scan `dir/wal.log`. A missing file is an empty log, not an error.
pub fn scan_wal(dir: &Path) -> Result<WalScan, StorageError> {
    let path = dir.join(WAL_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(StorageError::Io(e)),
    };
    Ok(scan_wal_bytes(&bytes))
}

/// Scan an in-memory WAL image (the file reader above, and the torture
/// tests, both funnel here).
pub fn scan_wal_bytes(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut torn = None;
    while offset < bytes.len() {
        match decode_at(bytes, offset) {
            Ok((record, next)) => {
                records.push(record);
                offset = next;
            }
            Err(reason) => {
                torn = Some(format!("record at byte {offset}: {reason}"));
                break;
            }
        }
    }
    WalScan {
        records,
        valid_len: u64::try_from(offset).unwrap_or(0),
        torn,
    }
}

/// Decode the record starting at `offset`; returns the record and the
/// offset just past it, or the reason the frame is invalid.
fn decode_at(bytes: &[u8], offset: usize) -> Result<(WalRecord, usize), String> {
    let take = |at: usize, n: usize| -> Result<&[u8], String> {
        bytes.get(at..at.saturating_add(n)).ok_or_else(|| {
            format!(
                "truncated after {} of {n} bytes",
                bytes.len().saturating_sub(at)
            )
        })
    };
    let le_u32 = |s: &[u8]| -> u32 {
        let mut b = [0u8; 4];
        for (d, &x) in b.iter_mut().zip(s.iter()) {
            *d = x;
        }
        u32::from_le_bytes(b)
    };
    let le_u64 = |s: &[u8]| -> u64 {
        let mut b = [0u8; 8];
        for (d, &x) in b.iter_mut().zip(s.iter()) {
            *d = x;
        }
        u64::from_le_bytes(b)
    };

    let len = le_u32(take(offset, 4)?);
    if len > MAX_PAYLOAD {
        return Err(format!(
            "length prefix {len} exceeds the {MAX_PAYLOAD}-byte ceiling"
        ));
    }
    let body_len = usize::try_from(len).map_err(|_| "length does not fit".to_string())?;
    let covered = take(offset + 4, 8 + 1 + body_len)?;
    let stored_crc = le_u32(take(offset + 4 + 9 + body_len, 4)?);
    if crc32(covered) != stored_crc {
        return Err("checksum mismatch".to_string());
    }
    let seq = le_u64(covered.get(..8).unwrap_or_default());
    let kind = covered.get(8).copied().unwrap_or(u8::MAX);
    let body = covered.get(9..).unwrap_or_default();
    let payload = match kind {
        KIND_BATCH => {
            let text = std::str::from_utf8(body).map_err(|e| format!("payload not UTF-8: {e}"))?;
            let deltas: Vec<Delta> =
                serde_json::from_str(text).map_err(|e| format!("payload does not parse: {e:?}"))?;
            WalPayload::Batch(deltas)
        }
        KIND_FLUSH_MARK => WalPayload::FlushMark,
        other => return Err(format!("unknown record kind {other}")),
    };
    Ok((WalRecord { seq, payload }, offset + 4 + 9 + body_len + 4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::FileMeta;
    use crate::trie::NodeId;
    use activedr_core::time::Timestamp;
    use activedr_core::user::UserId;

    fn batch(id: u32) -> WalPayload {
        WalPayload::Batch(vec![Delta::Upsert {
            path: format!("/u/f{id}"),
            id: NodeId(id),
            meta: FileMeta::new(UserId(1), 100, Timestamp::from_days(1)),
        }])
    }

    #[test]
    fn frames_round_trip() {
        let mut image = Vec::new();
        for (seq, payload) in [(1, batch(1)), (2, WalPayload::FlushMark), (3, batch(2))] {
            image.extend(encode_record(seq, &payload).expect("encode"));
        }
        let scan = scan_wal_bytes(&image);
        assert!(scan.torn.is_none());
        assert_eq!(scan.valid_len, u64::try_from(image.len()).expect("len"));
        let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(
            scan.records.get(1).map(|r| &r.payload),
            Some(&WalPayload::FlushMark)
        );
    }

    #[test]
    fn torn_tail_is_cut_at_the_last_valid_record() {
        let mut image = encode_record(1, &batch(1)).expect("encode");
        let first_len = u64::try_from(image.len()).expect("len");
        image.extend(encode_record(2, &batch(2)).expect("encode"));
        // Tear the second frame three bytes short.
        image.truncate(image.len() - 3);
        let scan = scan_wal_bytes(&image);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, first_len);
        assert!(scan.torn.is_some());
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let clean = encode_record(1, &batch(1)).expect("encode");
        for i in 0..clean.len() {
            let mut image = clean.clone();
            if let Some(b) = image.get_mut(i) {
                *b ^= 0x40;
            }
            let scan = scan_wal_bytes(&image);
            assert!(
                scan.records.is_empty(),
                "flip at byte {i} survived the scan"
            );
        }
    }

    #[test]
    fn absurd_length_prefixes_are_rejected_not_allocated() {
        let image = [0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0];
        let scan = scan_wal_bytes(&image);
        assert!(scan.records.is_empty());
        assert!(scan.torn.is_some_and(|t| t.contains("ceiling")));
    }
}
