//! Crash recovery: newest valid checkpoint + WAL-tail replay.
//!
//! The recovery protocol (DESIGN.md §11):
//!
//! 1. Try checkpoints newest-first; the first one whose footer CRC and
//!    entry counts verify is the base (`fallback_checkpoints` counts
//!    the rejected generations).
//! 2. Scan the WAL front to back, stopping at the first torn or
//!    corrupt frame; truncate the file there so future appends extend
//!    a clean prefix.
//! 3. Replay every surviving record with a sequence past the base
//!    checkpoint's `covered_seq`, skipping duplicates: `Batch` records
//!    absorb into the staging buffer, `FlushMark` records fold the
//!    buffer into the index — the same two operations the live engine
//!    performed, in the same order, so the rebuilt
//!    `(CatalogIndex, DeltaBuffer)` pair is *identical* to the live
//!    pair at the crash boundary (the crash-point sweep in
//!    `tests/integration_wal_recovery.rs` proves bitwise-identical
//!    replay results).
//!
//! If no valid checkpoint exists (fresh directory, or every generation
//! corrupt) recovery reports "nothing durable" and the caller re-seeds
//! from the surviving file system — the one full walk Robinhood also
//! cannot avoid.

use super::checkpoint::{list_checkpoints, load_checkpoint};
use super::wal::{scan_wal, WalPayload, WAL_FILE};
use super::StorageError;
use crate::delta_buffer::DeltaBuffer;
use crate::exemption::ExemptionList;
use crate::index::CatalogIndex;
use std::path::Path;

/// What a successful recovery did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// `covered_seq` of the checkpoint used as the base.
    pub checkpoint_seq: u64,
    /// Older checkpoint generations rejected before the base verified.
    pub fallback_checkpoints: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// Raw deltas inside the replayed `Batch` records.
    pub replayed_deltas: u64,
    /// Duplicate / already-covered records skipped during replay.
    pub skipped_records: u64,
    /// Torn-tail bytes truncated off the WAL.
    pub truncated_bytes: u64,
    /// The sequence the next WAL append must use.
    pub next_seq: u64,
}

/// A rebuilt live state plus the recovery ledger.
#[derive(Debug)]
pub struct RecoveredState {
    pub index: CatalogIndex,
    pub buffer: DeltaBuffer,
    pub stats: RecoveryStats,
}

/// Recover the durable catalog state in `dir`, or `Ok(None)` when
/// nothing durable (or nothing *valid*) exists there. On success the
/// WAL file has been truncated to its valid prefix.
pub fn recover(
    dir: &Path,
    buffer_cap: usize,
    exemptions: &ExemptionList,
) -> Result<Option<RecoveredState>, StorageError> {
    let mut fallbacks = 0u64;
    let mut base = None;
    for (_, path) in list_checkpoints(dir)? {
        match load_checkpoint(&path) {
            Ok(loaded) => {
                base = Some(loaded);
                break;
            }
            Err(StorageError::Corrupt(_)) => fallbacks += 1,
            Err(e) => return Err(e),
        }
    }
    let Some(base) = base else {
        return Ok(None);
    };

    let scan = scan_wal(dir)?;
    let wal_path = dir.join(WAL_FILE);
    let mut truncated_bytes = 0u64;
    if scan.torn.is_some() {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .map_err(StorageError::Io)?;
        let full = file.metadata().map_err(StorageError::Io)?.len();
        truncated_bytes = full.saturating_sub(scan.valid_len);
        file.set_len(scan.valid_len).map_err(StorageError::Io)?;
    }

    let covered = base.header.covered_seq;
    let (mut index, mut buffer) = base.rehydrate(buffer_cap, exemptions);
    let mut last_applied = covered;
    let mut replayed_records = 0u64;
    let mut replayed_deltas = 0u64;
    let mut skipped_records = 0u64;
    for record in scan.records {
        if record.seq <= last_applied {
            skipped_records += 1;
            continue;
        }
        last_applied = record.seq;
        replayed_records += 1;
        match record.payload {
            WalPayload::Batch(deltas) => {
                replayed_deltas += u64::try_from(deltas.len()).unwrap_or(0);
                buffer.absorb(deltas);
            }
            WalPayload::FlushMark => index.flush(&mut buffer, exemptions),
        }
    }

    Ok(Some(RecoveredState {
        index,
        buffer,
        stats: RecoveryStats {
            checkpoint_seq: covered,
            fallback_checkpoints: fallbacks,
            replayed_records,
            replayed_deltas,
            skipped_records,
            truncated_bytes,
            next_seq: last_applied + 1,
        },
    }))
}
