//! CRC32 (IEEE 802.3 polynomial), hand-rolled so the durability layer
//! stays dependency-free like the rest of the workspace.
//!
//! The bitwise formulation is deliberate: it needs no lookup table (and
//! therefore no slice indexing, keeping the `indexing_slicing` wall
//! clean), and WAL records / checkpoint footers are small enough that
//! per-byte bit loops are nowhere near the I/O cost they guard.

/// Reflected CRC32 polynomial (IEEE), as used by zlib, PNG, and
/// ethernet — torture tests pin known vectors below.
const POLY: u32 = 0xEDB8_8320;

/// Streaming CRC32 state for multi-chunk inputs (the checkpoint writer
/// checksums every line it emits without buffering the whole file).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (POLY & mask);
            }
        }
        self.state = crc;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut crc = Crc32::new();
        crc.update(b"The quick brown fox ");
        crc.update(b"jumps over the lazy dog");
        assert_eq!(crc.finish(), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"wal record payload");
        let mut corrupted = b"wal record payload".to_vec();
        for i in 0..corrupted.len() * 8 {
            if let Some(byte) = corrupted.get_mut(i / 8) {
                *byte ^= 1 << (i % 8);
            }
            assert_ne!(crc32(&corrupted), base, "bit {i} flip went undetected");
            if let Some(byte) = corrupted.get_mut(i / 8) {
                *byte ^= 1 << (i % 8);
            }
        }
    }
}
