//! Durable catalog storage: WAL + checkpoints + crash recovery.
//!
//! The in-memory incremental catalog ([`crate::index::CatalogIndex`]
//! fed through a [`crate::delta_buffer::DeltaBuffer`]) forfeits all of
//! its work if the purge service dies mid-replay — the exact failure
//! mode Robinhood's durable, changelog-fed policy engine exists to
//! survive on production Lustre systems. This module adds that
//! durability as an opt-in layer:
//!
//! * [`wal`] — an append-only, length-prefixed, CRC32-checksummed log
//!   of delta batches and flush marks, written *before* the in-memory
//!   state changes;
//! * [`checkpoint`] — periodic compact cuts of the full
//!   `(index, buffer)` pair with a footer checksum, two generations
//!   retained;
//! * [`recovery`] — newest valid checkpoint + WAL-tail replay,
//!   truncating at the first torn record;
//! * [`checksum`] — the dependency-free CRC32 both formats share;
//! * [`fault`] — the [`CrashFs`] injected-fault shim the crash-point
//!   tests drive.
//!
//! [`DurableCatalog`] ties the pieces together for the engine: open
//! (recover or cold-start), log batches and flush marks write-ahead,
//! cut checkpoints every N triggers. The correctness contract — proven
//! by `tests/integration_wal_recovery.rs` and the oracle's
//! `CrashRecover` op — is that dropping the live state at *any* point
//! and recovering from disk yields a pair whose every observable
//! (contents, aggregates, pending set, raw-pending count) matches the
//! live one, so the remaining replay is bitwise-identical.

pub mod checkpoint;
pub mod checksum;
pub mod fault;
pub mod recovery;
pub mod wal;

pub use checkpoint::{load_checkpoint, write_checkpoint, CheckpointHeader, LoadedCheckpoint};
pub use checksum::{crc32, Crc32};
pub use fault::{CrashFs, InjectedCrash, INJECTED_CRASH_MSG};
pub use recovery::{recover, RecoveredState, RecoveryStats};
pub use wal::{encode_record, scan_wal, scan_wal_bytes, Wal, WalPayload, WalRecord, WalScan};

use crate::changelog::Delta;
use crate::delta_buffer::DeltaBuffer;
use crate::exemption::ExemptionList;
use crate::index::CatalogIndex;
use crate::vfs::VirtualFs;
use std::path::{Path, PathBuf};

/// When WAL appends and checkpoints reach the platter.
///
/// `Always` fsyncs after every append and checkpoint — the no-data-loss
/// configuration, at one `fdatasync` round-trip per boundary. `Never`
/// leaves flushing to the OS page cache: a *process* crash loses
/// nothing (the kernel still holds the writes), a *power* failure can
/// lose the un-synced tail — which recovery then truncates cleanly, so
/// the catalog falls back to an earlier consistent cut rather than
/// corrupting. See DESIGN.md §11 for the trade-off discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    Always,
    #[default]
    Never,
}

/// Everything the engine needs to run the catalog durably.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `checkpoint-*.ckpt` (created on
    /// open).
    pub wal_dir: PathBuf,
    /// Fsync policy for WAL appends and checkpoint writes.
    pub fsync: FsyncPolicy,
    /// Cut a checkpoint every this many retention triggers.
    pub checkpoint_every_triggers: u32,
    /// Crash-point injection for the fault tests; `None` in production.
    pub injected_crash: Option<InjectedCrash>,
}

impl DurabilityConfig {
    /// Durability rooted at `wal_dir` with the defaults: no fsync,
    /// checkpoint every 4 triggers, no injected crash.
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            wal_dir: wal_dir.into(),
            fsync: FsyncPolicy::default(),
            checkpoint_every_triggers: 4,
            injected_crash: None,
        }
    }

    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    pub fn with_checkpoint_every(mut self, triggers: u32) -> Self {
        self.checkpoint_every_triggers = triggers.max(1);
        self
    }

    pub fn with_injected_crash(mut self, crash: InjectedCrash) -> Self {
        self.injected_crash = Some(crash);
        self
    }
}

/// Errors from the durability layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying file operation failed (injected crashes surface
    /// here as [`std::io::ErrorKind::ConnectionAborted`]).
    Io(std::io::Error),
    /// A value refused to serialize (or a payload was absurdly large).
    Encode(String),
    /// On-disk state failed validation (checksum, framing, counts).
    Corrupt(String),
}

impl StorageError {
    /// Is this the [`fault::CrashFs`] shim firing (as opposed to a real
    /// I/O failure)?
    pub fn is_injected_crash(&self) -> bool {
        matches!(self, StorageError::Io(e)
            if e.kind() == std::io::ErrorKind::ConnectionAborted
                && e.to_string().contains("injected crash"))
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Encode(what) => write!(f, "storage encoding error: {what}"),
            StorageError::Corrupt(what) => write!(f, "corrupt durable state: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// What [`DurableCatalog::open`] produced alongside the handle.
#[derive(Debug)]
pub struct OpenedCatalog {
    pub durable: DurableCatalog,
    pub index: CatalogIndex,
    pub buffer: DeltaBuffer,
    /// `Some` when disk state was recovered; `None` on a cold start
    /// (fresh directory, or no valid checkpoint — the index was then
    /// seeded from the surviving file system and checkpoint 0 written).
    pub recovered: Option<RecoveryStats>,
}

/// The engine-facing durability handle: write-ahead logging plus
/// periodic checkpoints over one durability directory.
#[derive(Debug)]
pub struct DurableCatalog {
    dir: PathBuf,
    fsync: FsyncPolicy,
    checkpoint_every: u32,
    wal: Wal,
    triggers_since_checkpoint: u32,
    checkpoints_written: u64,
    checkpoint_bytes: u64,
}

impl DurableCatalog {
    /// Open the durability directory: recover `(index, buffer)` from
    /// disk if a valid checkpoint exists, otherwise cold-start — seed
    /// the index from `fs` (the one unavoidable walk), truncate any
    /// stale WAL, and write checkpoint 0.
    pub fn open(
        config: &DurabilityConfig,
        fs: &VirtualFs,
        exemptions: &ExemptionList,
        buffer_cap: usize,
    ) -> Result<OpenedCatalog, StorageError> {
        std::fs::create_dir_all(&config.wal_dir).map_err(StorageError::Io)?;
        let recovered = recover(&config.wal_dir, buffer_cap, exemptions)?;
        let (index, buffer, next_seq, stats) = match recovered {
            Some(state) => (
                state.index,
                state.buffer,
                state.stats.next_seq,
                Some(state.stats),
            ),
            None => {
                // Nothing durable (or nothing valid): rebuild from the
                // surviving namespace and restart the log from scratch.
                let index = CatalogIndex::from_fs(fs, exemptions);
                let buffer = DeltaBuffer::with_capacity(buffer_cap);
                let wal_path = config.wal_dir.join(wal::WAL_FILE);
                if wal_path.exists() {
                    std::fs::remove_file(&wal_path).map_err(StorageError::Io)?;
                }
                write_checkpoint(&config.wal_dir, 0, &index, &buffer, config.fsync)?;
                (index, buffer, 1, None)
            }
        };
        let mut durable = DurableCatalog {
            dir: config.wal_dir.clone(),
            fsync: config.fsync,
            checkpoint_every: config.checkpoint_every_triggers.max(1),
            wal: Wal::open_for_append(&config.wal_dir, config.fsync, next_seq)?,
            triggers_since_checkpoint: 0,
            checkpoints_written: u64::from(stats.is_none()),
            checkpoint_bytes: 0,
        };
        if let Some(InjectedCrash::AtWalByte(offset)) = config.injected_crash {
            durable.wal.arm_fault(offset);
        }
        Ok(OpenedCatalog {
            durable,
            index,
            buffer,
            recovered: stats,
        })
    }

    /// Write-ahead log one drained delta batch. Returns the frame
    /// bytes appended. Call *before* absorbing the batch into the
    /// buffer; on error the handle is stale and the owner must drop it
    /// and re-open (recovery truncates the torn tail).
    pub fn log_batch(&mut self, deltas: &[Delta]) -> Result<u64, StorageError> {
        let (_, bytes) = self
            .wal
            .append_record(&WalPayload::Batch(deltas.to_vec()))?;
        Ok(bytes)
    }

    /// Write-ahead log a buffer→index flush boundary. Call *before*
    /// the in-memory flush.
    pub fn log_flush_mark(&mut self) -> Result<u64, StorageError> {
        let (_, bytes) = self.wal.append_record(&WalPayload::FlushMark)?;
        Ok(bytes)
    }

    /// Note a retention trigger; every `checkpoint_every_triggers`-th
    /// call cuts a checkpoint of the live pair. Returns the checkpoint
    /// bytes written, if one was cut.
    pub fn note_trigger(
        &mut self,
        index: &CatalogIndex,
        buffer: &DeltaBuffer,
    ) -> Result<Option<u64>, StorageError> {
        self.triggers_since_checkpoint += 1;
        if self.triggers_since_checkpoint < self.checkpoint_every {
            return Ok(None);
        }
        self.checkpoint_now(index, buffer).map(Some)
    }

    /// Cut a checkpoint of the live pair right now, covering every
    /// record logged so far.
    pub fn checkpoint_now(
        &mut self,
        index: &CatalogIndex,
        buffer: &DeltaBuffer,
    ) -> Result<u64, StorageError> {
        let bytes = write_checkpoint(&self.dir, self.wal.last_seq(), index, buffer, self.fsync)?;
        self.triggers_since_checkpoint = 0;
        self.checkpoints_written += 1;
        self.checkpoint_bytes += bytes;
        Ok(bytes)
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records appended through this handle's WAL.
    pub fn wal_appends(&self) -> u64 {
        self.wal.appended()
    }

    /// Frame bytes appended through this handle's WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.appended_bytes()
    }

    /// Checkpoints written through this handle (cold-start checkpoint 0
    /// included).
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }
}
