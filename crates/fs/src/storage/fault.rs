//! Injected-fault I/O shim for crash-point testing.
//!
//! [`CrashFs`] wraps any [`io::Write`] and kills the stream at a
//! configured absolute byte offset: the bytes *before* the offset are
//! written for real (so the underlying file genuinely ends mid-record,
//! exactly like a torn write on a dying node), everything at or past it
//! is refused with [`io::ErrorKind::ConnectionAborted`]. (NOT
//! `Interrupted` — `Write::write_all` silently *retries* interrupted
//! writes, which would spin forever against a tripped shim instead of
//! surfacing the crash.) The WAL writes
//! through this shim, so a crash-point sweep can tear an append at every
//! byte of its frame and prove recovery truncates at the last valid
//! record.

use std::io::{self, Write};

/// Marker in injected-crash errors, so tests can tell a planted fault
/// from a real I/O failure.
pub const INJECTED_CRASH_MSG: &str = "injected crash: write torn at configured byte offset";

/// Where a simulated crash is planted in a durable replay (carried by
/// `DurabilityConfig` in the engine and by the oracle's matrix cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedCrash {
    /// Kill the catalog service at the start of the n-th retention
    /// trigger (1-based), before the trigger drains the changelog. The
    /// engine drops its live index and buffer and must recover them
    /// from disk.
    AtTrigger(u32),
    /// Tear the WAL mid-write once the file would grow past this
    /// absolute byte offset, then recover.
    AtWalByte(u64),
}

/// A write sink that dies at a configured absolute offset. `written`
/// counts all bytes ever handed to `inner`, so `kill_at` is an offset
/// into the underlying file regardless of how writes are chunked.
#[derive(Debug)]
pub struct CrashFs<W: Write> {
    inner: W,
    written: u64,
    kill_at: Option<u64>,
    tripped: bool,
}

impl<W: Write> CrashFs<W> {
    /// Wrap `inner`, which already holds `written` bytes (offsets are
    /// absolute, so an appender opening an existing file passes its
    /// length).
    pub fn new(inner: W, written: u64) -> Self {
        CrashFs {
            inner,
            written,
            kill_at: None,
            tripped: false,
        }
    }

    /// Arm the fault: the first write reaching `offset` is torn there.
    pub fn kill_at(&mut self, offset: u64) {
        self.kill_at = Some(offset);
        self.tripped = false;
    }

    /// Has the armed fault fired?
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Total bytes accepted by the underlying sink.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Borrow the underlying sink (e.g. to fsync the real file).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    fn injected() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionAborted, INJECTED_CRASH_MSG)
    }
}

impl<W: Write> Write for CrashFs<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let len = u64::try_from(buf.len()).map_err(|_| Self::injected())?;
        match self.kill_at {
            Some(kill) if self.written >= kill => {
                self.tripped = true;
                Err(Self::injected())
            }
            Some(kill) if self.written + len > kill => {
                // Tear the write: land the prefix for real, refuse the
                // rest. usize conversion cannot truncate — the prefix is
                // shorter than `buf`.
                let keep = usize::try_from(kill - self.written).unwrap_or(buf.len());
                let head = buf.get(..keep).unwrap_or(buf);
                self.inner.write_all(head)?;
                self.written = kill;
                self.tripped = true;
                Err(Self::injected())
            }
            _ => {
                let n = self.inner.write(buf)?;
                self.written += u64::try_from(n).unwrap_or(0);
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_until_the_kill_offset() {
        let mut sink = CrashFs::new(Vec::new(), 0);
        sink.kill_at(5);
        assert!(sink.write_all(b"abc").is_ok());
        let err = sink.write_all(b"defg").expect_err("must tear");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        assert!(sink.tripped());
        // The torn write landed exactly up to the kill offset.
        assert_eq!(sink.get_ref().as_slice(), b"abcde");
        // Everything after the trip is refused outright.
        assert!(sink.write_all(b"x").is_err());
        assert_eq!(sink.written(), 5);
    }

    #[test]
    fn absolute_offsets_respect_preexisting_length() {
        let mut sink = CrashFs::new(Vec::new(), 10);
        sink.kill_at(12);
        let err = sink.write_all(b"abcd").expect_err("must tear");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        assert_eq!(sink.get_ref().as_slice(), b"ab");
    }

    #[test]
    fn unarmed_shim_is_transparent() {
        let mut sink = CrashFs::new(Vec::new(), 0);
        assert!(sink.write_all(b"hello").is_ok());
        assert!(!sink.tripped());
        assert_eq!(sink.get_ref().as_slice(), b"hello");
    }
}
