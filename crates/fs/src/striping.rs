//! Lustre striping model and file-size synthesis.
//!
//! The Spider II metadata snapshots the paper uses do not record file
//! sizes — only stripe counts. The authors "generate a synthesized file
//! size for each file in the snapshot according to the best striping
//! practice of the Spider file system" (§4.1.1, citing the OLCF best
//! practices guide). This module implements that inference in both
//! directions:
//!
//! * [`recommended_stripes`] — the OLCF guidance mapping a file size to a
//!   stripe count (1 stripe below 1 GiB, then scaling up, capped at the
//!   OST count);
//! * [`SizeSynthesizer`] — the inverse: given a stripe count, sample a
//!   plausible size from a log-normal distribution confined to the size
//!   band that the guidance maps onto that stripe count.

#![allow(
    clippy::cast_possible_truncation,
    reason = "values are bounded far below the narrow type's range at paper scale"
)]
#![allow(
    clippy::indexing_slicing,
    reason = "index sites here are counted and ratcheted by `cargo xtask check` (crates/xtask/panic-baseline.txt)"
)]
#![allow(
    clippy::missing_panics_doc,
    reason = "asserts guard scenario invariants; every panic site is tracked by the xtask panic-freedom ratchet"
)]

use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

pub const KIB: u64 = 1 << 10;
pub const MIB: u64 = 1 << 20;
pub const GIB: u64 = 1 << 30;
pub const TIB: u64 = 1 << 40;

/// Size bands of the OLCF best-practice striping guidance. Files below
/// 1 GiB use a single stripe; 1-100 GiB use 4; 100 GiB - 1 TiB use 16; and
/// larger files stripe wide.
const BANDS: &[(u64, u8)] = &[
    (GIB, 1), // (exclusive upper bound, stripe count)
    (100 * GIB, 4),
    (TIB, 16),
    (u64::MAX, 64),
];

/// The stripe count the best-practice guide recommends for a file size.
pub fn recommended_stripes(size: u64) -> u8 {
    for &(bound, stripes) in BANDS {
        if size < bound {
            return stripes;
        }
    }
    unreachable!("u64::MAX band is a catch-all")
}

/// The inclusive size band `[lo, hi)` associated with a stripe count.
/// Unknown stripe counts snap to the nearest band (snapshots of systems
/// with non-default layouts contain arbitrary counts).
pub fn size_band(stripes: u8) -> (u64, u64) {
    let mut lo = 4 * KIB; // no zero-size files; at least one block
    for &(bound, band_stripes) in BANDS {
        if stripes <= band_stripes {
            return (lo, bound);
        }
        lo = bound;
    }
    let last = BANDS[BANDS.len() - 1];
    (BANDS[BANDS.len() - 2].0, last.0)
}

/// Parameters for log-normal size sampling inside a band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesisParams {
    /// σ of the underlying normal; larger means heavier spread inside the
    /// band. HPC file-size distributions are famously heavy-tailed.
    pub sigma: f64,
}

impl Default for SynthesisParams {
    fn default() -> Self {
        SynthesisParams { sigma: 1.2 }
    }
}

/// Samples synthetic file sizes consistent with a stripe count.
#[derive(Debug, Clone)]
pub struct SizeSynthesizer {
    params: SynthesisParams,
}

impl Default for SizeSynthesizer {
    fn default() -> Self {
        SizeSynthesizer::new(SynthesisParams::default())
    }
}

impl SizeSynthesizer {
    pub fn new(params: SynthesisParams) -> Self {
        assert!(
            params.sigma > 0.0 && params.sigma.is_finite(),
            "sigma must be positive"
        );
        SizeSynthesizer { params }
    }

    /// Sample a size for a file striped across `stripes` OSTs. The sample
    /// is drawn log-normally around the band's geometric midpoint and
    /// clamped into the band, so `recommended_stripes(sample)` round-trips
    /// for the canonical stripe counts.
    pub fn sample(&self, stripes: u8, rng: &mut impl Rng) -> u64 {
        let (lo, hi) = size_band(stripes);
        let (lo_f, hi_f) = (lo as f64, (hi.min(4 * TIB)) as f64);
        let mu = (lo_f.ln() + hi_f.ln()) / 2.0;
        // `new` validated sigma and mu is a finite band midpoint; if either
        // ever goes bad, fall back to the midpoint rather than panic.
        let raw = match LogNormal::new(mu, self.params.sigma) {
            Ok(dist) => dist.sample(rng),
            Err(_) => mu.exp(),
        };
        (raw.clamp(lo_f, hi_f - 1.0)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn guidance_thresholds() {
        assert_eq!(recommended_stripes(0), 1);
        assert_eq!(recommended_stripes(GIB - 1), 1);
        assert_eq!(recommended_stripes(GIB), 4);
        assert_eq!(recommended_stripes(100 * GIB - 1), 4);
        assert_eq!(recommended_stripes(100 * GIB), 16);
        assert_eq!(recommended_stripes(TIB), 64);
        assert_eq!(recommended_stripes(u64::MAX - 1), 64);
    }

    #[test]
    fn bands_partition_the_size_axis() {
        assert_eq!(size_band(1), (4 * KIB, GIB));
        assert_eq!(size_band(4), (GIB, 100 * GIB));
        assert_eq!(size_band(16), (100 * GIB, TIB));
        assert_eq!(size_band(64), (TIB, u64::MAX));
        // Off-spec counts snap to the nearest band.
        assert_eq!(size_band(2), (GIB, 100 * GIB));
        assert_eq!(size_band(3), (GIB, 100 * GIB));
        assert_eq!(size_band(8), (100 * GIB, TIB));
        assert_eq!(size_band(255), (TIB, u64::MAX));
    }

    #[test]
    fn samples_fall_in_band_and_round_trip() {
        let synth = SizeSynthesizer::default();
        let mut rng = StdRng::seed_from_u64(7);
        for &stripes in &[1u8, 4, 16, 64] {
            let (lo, hi) = size_band(stripes);
            for _ in 0..200 {
                let s = synth.sample(stripes, &mut rng);
                assert!(
                    s >= lo && s < hi,
                    "stripes {stripes}: {s} outside [{lo},{hi})"
                );
                assert_eq!(recommended_stripes(s), stripes, "size {s}");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let synth = SizeSynthesizer::default();
        let a: Vec<u64> = (0..10)
            .map(|_| synth.sample(4, &mut StdRng::seed_from_u64(1)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|_| synth.sample(4, &mut StdRng::seed_from_u64(1)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn bad_sigma_rejected() {
        SizeSynthesizer::new(SynthesisParams { sigma: 0.0 });
    }
}
