//! The virtual parallel file system used by the emulation.
//!
//! The paper formulates a virtual file system by indexing every file path of
//! a metadata snapshot into a compact prefix tree together with synthesized
//! sizes; trace replay then tests file existence (a missing path is a *file
//! miss*), renews access times, and applies purge decisions. This module
//! wraps [`PathTrie`] with capacity accounting and the catalog-scan bridge
//! to the `activedr-core` policy layer.

#![allow(
    clippy::cast_possible_truncation,
    reason = "values are bounded far below the narrow type's range at paper scale"
)]

use crate::changelog::{canonical_path, Changelog, Delta};
use crate::exemption::ExemptionList;
use crate::meta::FileMeta;
use crate::trie::{InsertError, Inserted, NodeId, PathTrie};
use activedr_core::convert;
use activedr_core::files::{Catalog, FileId, FileRecord, UserFiles};
use activedr_core::policy::RetentionOutcome;
use activedr_core::time::Timestamp;
use activedr_core::user::UserId;
use std::collections::BTreeMap;

/// Outcome of replaying one file access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The file exists; its atime was renewed.
    Hit(NodeId),
    /// The file does not exist (never created, or purged) — a file miss.
    Miss,
}

impl Access {
    pub fn is_miss(self) -> bool {
        matches!(self, Access::Miss)
    }
}

/// Cumulative operation counts since this file system was created.
///
/// Maintained unconditionally (plain integer bumps on paths that already
/// mutate state) so they are deterministic replay facts, not telemetry:
/// the telemetry layer *samples* them into gauges at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsOpCounts {
    /// Files created or overwritten (`create`/`insert_meta`).
    pub creates: u64,
    /// Files removed (by path, by id, purge apply, or subtree removal).
    pub removes: u64,
    /// Access replays attempted (`access` calls).
    pub accesses: u64,
    /// Accesses that found their file.
    pub hits: u64,
    /// Accesses that missed (file absent or purged).
    pub misses: u64,
    /// Successful renames.
    pub renames: u64,
}

/// An in-memory scratch file system with capacity accounting.
#[derive(Debug, Clone, Default)]
pub struct VirtualFs {
    trie: PathTrie,
    used_bytes: u64,
    capacity: u64,
    /// When present, every namespace mutation is recorded as a [`Delta`]
    /// for the incremental catalog; `None` costs nothing on the hot path.
    changelog: Option<Changelog>,
    ops: FsOpCounts,
}

impl VirtualFs {
    /// A file system with the given total capacity in bytes. Capacity is
    /// accounting-only: creates are allowed to overshoot it (scratch file
    /// systems overfill — that is why purges exist), but utilization
    /// reports are relative to it.
    pub fn with_capacity(capacity: u64) -> Self {
        VirtualFs {
            trie: PathTrie::new(),
            used_bytes: 0,
            capacity,
            changelog: None,
            ops: FsOpCounts::default(),
        }
    }

    /// Cumulative operation counts since construction.
    pub fn op_counts(&self) -> FsOpCounts {
        self.ops
    }

    /// Deltas currently buffered in the changelog awaiting a drain
    /// (0 when recording is disabled).
    pub fn changelog_depth(&self) -> usize {
        self.changelog.as_ref().map_or(0, Changelog::len)
    }

    /// Start recording mutations into a changelog (idempotent; an already
    /// active changelog keeps its buffered deltas).
    pub fn enable_changelog(&mut self) {
        if self.changelog.is_none() {
            self.changelog = Some(Changelog::new());
        }
    }

    /// Stop recording and discard any buffered deltas.
    pub fn disable_changelog(&mut self) {
        self.changelog = None;
    }

    /// Is a changelog currently recording?
    pub fn changelog_enabled(&self) -> bool {
        self.changelog.is_some()
    }

    /// Take the buffered deltas (empty when recording is disabled).
    pub fn drain_changelog(&mut self) -> Vec<Delta> {
        self.changelog
            .as_mut()
            .map(Changelog::drain)
            .unwrap_or_default()
    }

    /// Deltas recorded since the changelog was enabled, including drained
    /// ones; 0 when disabled.
    pub fn changelog_recorded_total(&self) -> u64 {
        self.changelog.as_ref().map_or(0, Changelog::recorded_total)
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Re-anchor the accounting capacity (e.g. to the post-purge snapshot
    /// size, the way the paper defines "total storage capacity").
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Used fraction of capacity (may exceed 1.0).
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used_bytes as f64 / self.capacity as f64
        }
    }

    pub fn file_count(&self) -> usize {
        self.trie.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Estimated resident memory of the index (Fig. 12a probe).
    pub fn memory_estimate(&self) -> usize {
        self.trie.memory_estimate()
    }

    /// Create a file (or overwrite an existing one at the same path).
    pub fn create(
        &mut self,
        path: &str,
        owner: UserId,
        size: u64,
        ts: Timestamp,
    ) -> Result<NodeId, InsertError> {
        self.insert_meta(path, FileMeta::new(owner, size, ts))
    }

    /// Insert a file with full metadata (snapshot load path).
    pub fn insert_meta(&mut self, path: &str, meta: FileMeta) -> Result<NodeId, InsertError> {
        // Replacement must not double-count bytes.
        let prior = self.trie.get(path).map(|m| m.size);
        let size = meta.size;
        let inserted = self.trie.insert(path, meta)?;
        self.ops.creates += 1;
        if let (Inserted::Replaced(_), Some(old)) = (inserted, prior) {
            self.used_bytes -= old;
        }
        self.used_bytes += size;
        let id = inserted.id();
        if let Some(log) = self.changelog.as_mut() {
            log.record(Delta::Upsert {
                path: canonical_path(path),
                id,
                meta,
            });
        }
        Ok(id)
    }

    /// Replay one read/write access: renew atime on hit, report the miss
    /// otherwise.
    pub fn access(&mut self, path: &str, ts: Timestamp) -> Access {
        self.ops.accesses += 1;
        match self.trie.lookup(path) {
            Some(id) => {
                self.ops.hits += 1;
                let mut touched = None;
                if let Some(meta) = self.trie.meta_mut(id) {
                    meta.touch(ts);
                    touched = Some((meta.atime, meta.access_count));
                }
                if let (Some((atime, access_count)), Some(log)) = (touched, self.changelog.as_mut())
                {
                    log.record(Delta::Touch {
                        id,
                        atime,
                        access_count,
                    });
                }
                Access::Hit(id)
            }
            None => {
                self.ops.misses += 1;
                Access::Miss
            }
        }
    }

    /// Does the file exist?
    pub fn exists(&self, path: &str) -> bool {
        self.trie.lookup(path).is_some()
    }

    pub fn meta(&self, path: &str) -> Option<&FileMeta> {
        self.trie.get(path)
    }

    pub fn meta_by_id(&self, id: NodeId) -> Option<&FileMeta> {
        self.trie.meta(id)
    }

    pub fn path_of(&self, id: NodeId) -> String {
        self.trie.path_of(id)
    }

    /// Delete one file by path.
    pub fn remove(&mut self, path: &str) -> Option<FileMeta> {
        // Route through `remove_id` so removal deltas are logged in one
        // place.
        let id = self.trie.lookup(path)?;
        self.remove_id(id)
    }

    /// Delete one file by id.
    pub fn remove_id(&mut self, id: NodeId) -> Option<FileMeta> {
        let meta = self.trie.remove_id(id)?;
        self.ops.removes += 1;
        self.used_bytes -= meta.size;
        if let Some(log) = self.changelog.as_mut() {
            log.record(Delta::Remove { id });
        }
        Some(meta)
    }

    /// Apply a policy's purge decisions, returning the bytes actually
    /// freed. Stale decisions (file already gone) are ignored.
    pub fn apply(&mut self, outcome: &RetentionOutcome) -> u64 {
        let mut freed = 0u64;
        for p in &outcome.purged {
            if let Some(meta) = self.remove_id(NodeId(convert::u32_from_u64(p.id.0))) {
                freed += meta.size;
            }
        }
        freed
    }

    /// Scan the file system into the per-user catalog the policy layer
    /// consumes. Files matching the exemption list are flagged, not
    /// dropped. Users appear in ascending id order; files in path order.
    pub fn catalog(&self, exemptions: &ExemptionList) -> Catalog {
        let mut per_user: BTreeMap<UserId, Vec<FileRecord>> = BTreeMap::new();
        for (path, id, meta) in self.trie.iter() {
            let mut rec = FileRecord::new(FileId(u64::from(id.0)), meta.size, meta.atime)
                .with_ctime(meta.ctime)
                .with_access_count(meta.access_count);
            if exemptions.is_exempt(&path) {
                rec.exempt = true;
            }
            per_user.entry(meta.owner).or_default().push(rec);
        }
        Catalog::new(
            per_user
                .into_iter()
                .map(|(user, files)| UserFiles::new(user, files))
                .collect(),
        )
    }

    /// All files as `(path, id, meta)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (String, NodeId, &FileMeta)> {
        self.trie.iter()
    }

    /// All files under a path prefix.
    pub fn iter_prefix<'a>(
        &'a self,
        prefix: &str,
    ) -> impl Iterator<Item = (String, NodeId, &'a FileMeta)> {
        self.trie.iter_prefix(prefix)
    }

    /// Move a file. Renaming onto an existing file replaces it (POSIX
    /// semantics), releasing the replaced bytes. A reservation on the old
    /// path lapses per the §3.4 contract, which is the caller's
    /// (exemption list's) concern.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<NodeId, crate::trie::RenameError> {
        // The destination may already hold a file that the rename will
        // replace; its bytes must leave the accounting (unless this is a
        // no-op rename onto itself).
        let same = crate::trie::components(from).eq(crate::trie::components(to));
        let replaced = if same {
            None
        } else {
            self.trie.get(to).map(|m| m.size)
        };
        let from_id = if self.changelog.is_some() {
            self.trie.lookup(from)
        } else {
            None
        };
        match self.trie.rename(from, to) {
            Ok(id) => {
                self.ops.renames += 1;
                if let Some(size) = replaced {
                    self.used_bytes -= size;
                }
                // A same-path rename is a trie no-op: nothing to log. A
                // real move removes the source node and re-inserts at the
                // destination (replacing any file there, under its id).
                if !same {
                    let meta = self.trie.meta(id).copied();
                    if let (Some(meta), Some(log)) = (meta, self.changelog.as_mut()) {
                        if let Some(old_id) = from_id {
                            log.record(Delta::Remove { id: old_id });
                        }
                        log.record(Delta::Upsert {
                            path: canonical_path(to),
                            id,
                            meta,
                        });
                    }
                }
                Ok(id)
            }
            Err(e) => {
                // A failed rename restores the source, possibly under a
                // fresh node id; the index must follow the id change.
                if self.changelog.is_some() {
                    let now_id = self.trie.lookup(from);
                    if let (Some(old_id), Some(new_id)) = (from_id, now_id) {
                        if old_id != new_id {
                            let meta = self.trie.meta(new_id).copied();
                            if let (Some(meta), Some(log)) = (meta, self.changelog.as_mut()) {
                                log.record(Delta::Remove { id: old_id });
                                log.record(Delta::Upsert {
                                    path: canonical_path(from),
                                    id: new_id,
                                    meta,
                                });
                            }
                        }
                    }
                }
                Err(e)
            }
        }
    }

    /// Delete a whole directory subtree, returning the freed bytes.
    pub fn remove_subtree(&mut self, prefix: &str) -> u64 {
        if self.changelog.is_some() {
            // Per-file removal so every victim gets its Remove delta.
            let victims: Vec<NodeId> = self.trie.iter_prefix(prefix).map(|(_, id, _)| id).collect();
            victims
                .into_iter()
                .filter_map(|id| self.remove_id(id).map(|m| m.size))
                .sum()
        } else {
            let removed = self.trie.remove_subtree(prefix);
            let freed: u64 = removed.iter().map(|(_, m)| m.size).sum();
            self.ops.removes += u64::try_from(removed.len()).unwrap_or(u64::MAX);
            self.used_bytes -= freed;
            freed
        }
    }

    /// Bytes used under a path prefix (a `du`-style probe).
    pub fn usage_under(&self, prefix: &str) -> u64 {
        self.trie.iter_prefix(prefix).map(|(_, _, m)| m.size).sum()
    }

    /// Structural statistics of the underlying index.
    pub fn index_stats(&self) -> crate::trie::TrieStats {
        self.trie.stats()
    }

    /// List the immediate children of a directory (`readdir`).
    pub fn list_dir(&self, dir: &str) -> Vec<crate::trie::DirEntry> {
        self.trie.list_dir(dir)
    }

    /// Total bytes owned by each user.
    pub fn bytes_by_user(&self) -> BTreeMap<UserId, u64> {
        let mut map = BTreeMap::new();
        for (_, _, meta) in self.trie.iter() {
            *map.entry(meta.owner).or_insert(0u64) += meta.size;
        }
        map
    }
}

#[cfg(test)]
#[allow(
    clippy::float_cmp,
    reason = "tests assert exact values produced by exact arithmetic"
)]
mod tests {
    use super::*;

    fn day(d: i64) -> Timestamp {
        Timestamp::from_days(d)
    }

    #[test]
    fn create_access_remove_accounting() {
        let mut fs = VirtualFs::with_capacity(1000);
        let id = fs.create("/u1/a", UserId(1), 400, day(0)).unwrap();
        fs.create("/u1/b", UserId(1), 100, day(0)).unwrap();
        assert_eq!(fs.used_bytes(), 500);
        assert!((fs.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(fs.file_count(), 2);

        match fs.access("/u1/a", day(10)) {
            Access::Hit(got) => assert_eq!(got, id),
            Access::Miss => panic!("expected hit"),
        }
        assert_eq!(fs.meta("/u1/a").unwrap().atime, day(10));
        assert!(fs.access("/u1/zzz", day(10)).is_miss());

        let removed = fs.remove("/u1/a").unwrap();
        assert_eq!(removed.size, 400);
        assert_eq!(fs.used_bytes(), 100);
        assert!(fs.access("/u1/a", day(11)).is_miss());
    }

    #[test]
    fn changelog_accounting_and_id_lookup() {
        let mut fs = VirtualFs::with_capacity(1000);
        assert!(!fs.changelog_enabled());
        assert_eq!(fs.changelog_recorded_total(), 0);

        fs.enable_changelog();
        assert!(fs.changelog_enabled());
        let id = fs.create("/u1/a", UserId(1), 400, day(0)).unwrap();
        assert_eq!(fs.meta_by_id(id).unwrap().size, 400);
        fs.access("/u1/a", day(3));
        fs.remove("/u1/a");
        // Upsert + Touch + Remove, surviving a drain.
        assert_eq!(fs.drain_changelog().len(), 3);
        assert_eq!(fs.changelog_recorded_total(), 3);
        assert!(fs.meta_by_id(id).is_none());
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let mut fs = VirtualFs::with_capacity(1000);
        fs.create("/u1/a", UserId(1), 400, day(0)).unwrap();
        fs.create("/u1/a", UserId(1), 100, day(5)).unwrap();
        assert_eq!(fs.used_bytes(), 100);
        assert_eq!(fs.file_count(), 1);
        assert_eq!(fs.meta("/u1/a").unwrap().atime, day(5));
    }

    #[test]
    fn capacity_can_overfill() {
        let mut fs = VirtualFs::with_capacity(100);
        fs.create("/a", UserId(1), 400, day(0)).unwrap();
        assert!(fs.utilization() > 1.0);
        let zero = VirtualFs::with_capacity(0);
        assert_eq!(zero.utilization(), 0.0);
    }

    #[test]
    fn catalog_groups_by_owner_and_flags_exemptions() {
        let mut fs = VirtualFs::with_capacity(0);
        fs.create("/u2/x", UserId(2), 10, day(1)).unwrap();
        fs.create("/u1/keep", UserId(1), 20, day(2)).unwrap();
        fs.create("/u1/drop", UserId(1), 30, day(3)).unwrap();
        let mut ex = ExemptionList::new();
        ex.reserve_file("/u1/keep");

        let catalog = fs.catalog(&ex);
        assert_eq!(catalog.users.len(), 2);
        assert_eq!(catalog.users[0].user, UserId(1));
        assert_eq!(catalog.users[1].user, UserId(2));
        let u1 = &catalog.users[0];
        assert_eq!(u1.files.len(), 2);
        // Path order: /u1/drop before /u1/keep.
        assert!(!u1.files[0].exempt);
        assert!(u1.files[1].exempt);
        assert_eq!(catalog.total_bytes(), 60);
    }

    #[test]
    fn apply_purge_decisions() {
        use activedr_core::policy::PurgedFile;
        let mut fs = VirtualFs::with_capacity(0);
        let a = fs.create("/u1/a", UserId(1), 10, day(0)).unwrap();
        fs.create("/u1/b", UserId(1), 20, day(0)).unwrap();
        let outcome = RetentionOutcome {
            purged: vec![
                PurgedFile {
                    user: UserId(1),
                    id: FileId(a.0 as u64),
                    size: 10,
                },
                // A stale decision for a node that never existed.
                PurgedFile {
                    user: UserId(1),
                    id: FileId(9999),
                    size: 1,
                },
            ],
            purged_bytes: 11,
            target_met: true,
            group_scans: vec![],
            exempt_skipped: 0,
        };
        let freed = fs.apply(&outcome);
        assert_eq!(freed, 10);
        assert_eq!(fs.used_bytes(), 20);
        assert!(!fs.exists("/u1/a"));
        assert!(fs.exists("/u1/b"));
    }

    #[test]
    fn bytes_by_user() {
        let mut fs = VirtualFs::with_capacity(0);
        fs.create("/u1/a", UserId(1), 10, day(0)).unwrap();
        fs.create("/u1/b", UserId(1), 15, day(0)).unwrap();
        fs.create("/u2/c", UserId(2), 30, day(0)).unwrap();
        let by_user = fs.bytes_by_user();
        assert_eq!(by_user[&UserId(1)], 25);
        assert_eq!(by_user[&UserId(2)], 30);
    }

    #[test]
    fn rename_and_subtree_accounting() {
        let mut fs = VirtualFs::with_capacity(0);
        fs.create("/u1/proj/a", UserId(1), 100, day(0)).unwrap();
        fs.create("/u1/proj/b", UserId(1), 50, day(0)).unwrap();
        fs.create("/u1/keep", UserId(1), 25, day(0)).unwrap();

        fs.rename("/u1/proj/a", "/u1/moved").unwrap();
        assert_eq!(fs.used_bytes(), 175); // unchanged
        assert!(fs.exists("/u1/moved"));
        assert!(!fs.exists("/u1/proj/a"));

        assert_eq!(fs.usage_under("/u1/proj"), 50);
        let freed = fs.remove_subtree("/u1/proj");
        assert_eq!(freed, 50);
        assert_eq!(fs.used_bytes(), 125);
        assert_eq!(fs.file_count(), 2);

        let stats = fs.index_stats();
        assert_eq!(stats.files, 2);
    }

    #[test]
    fn rename_onto_existing_file_releases_its_bytes() {
        // Regression: found by the trie-vs-HashMap property test.
        let mut fs = VirtualFs::with_capacity(0);
        fs.create("/a", UserId(1), 100, day(0)).unwrap();
        fs.create("/b", UserId(1), 40, day(0)).unwrap();
        fs.rename("/a", "/b").unwrap(); // replaces /b
        assert_eq!(fs.file_count(), 1);
        assert_eq!(fs.used_bytes(), 100);
        assert_eq!(fs.meta("/b").unwrap().size, 100);
        // No-op rename keeps accounting intact.
        fs.rename("/b", "//b/.").unwrap();
        assert_eq!(fs.used_bytes(), 100);
    }

    #[test]
    fn op_counts_track_every_mutation_path() {
        let mut fs = VirtualFs::with_capacity(0);
        assert_eq!(fs.op_counts(), FsOpCounts::default());
        fs.create("/u1/a", UserId(1), 10, day(0)).unwrap();
        fs.create("/u1/proj/b", UserId(1), 20, day(0)).unwrap();
        fs.create("/u1/proj/c", UserId(1), 30, day(0)).unwrap();
        fs.access("/u1/a", day(1));
        fs.access("/u1/gone", day(1));
        fs.rename("/u1/a", "/u1/moved").unwrap();
        fs.remove("/u1/moved").unwrap();
        fs.remove_subtree("/u1/proj");
        let ops = fs.op_counts();
        assert_eq!(ops.creates, 3);
        assert_eq!(ops.accesses, 2);
        assert_eq!(ops.hits, 1);
        assert_eq!(ops.misses, 1);
        assert_eq!(ops.renames, 1);
        assert_eq!(ops.removes, 3);
        assert_eq!(fs.changelog_depth(), 0);
    }

    #[test]
    fn changelog_depth_follows_buffered_deltas() {
        let mut fs = VirtualFs::with_capacity(0);
        fs.enable_changelog();
        fs.create("/u1/a", UserId(1), 10, day(0)).unwrap();
        fs.access("/u1/a", day(1));
        assert_eq!(fs.changelog_depth(), 2);
        fs.drain_changelog();
        assert_eq!(fs.changelog_depth(), 0);
    }

    #[test]
    fn readdir_through_facade() {
        let mut fs = VirtualFs::with_capacity(0);
        fs.create("/u1/run/out.dat", UserId(1), 1, day(0)).unwrap();
        fs.create("/u1/notes.txt", UserId(1), 1, day(0)).unwrap();
        let entries = fs.list_dir("/u1");
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().any(|e| e.name == "run" && !e.is_file));
        assert!(entries.iter().any(|e| e.name == "notes.txt" && e.is_file));
    }

    #[test]
    fn prefix_iteration_through_facade() {
        let mut fs = VirtualFs::with_capacity(0);
        fs.create("/u1/proj/a", UserId(1), 1, day(0)).unwrap();
        fs.create("/u1/proj/b", UserId(1), 1, day(0)).unwrap();
        fs.create("/u2/other", UserId(2), 1, day(0)).unwrap();
        assert_eq!(fs.iter_prefix("/u1").count(), 2);
        assert_eq!(fs.iter().count(), 3);
    }
}
