//! Compact path prefix tree (radix trie over path components).
//!
//! The paper indexes every file path of the Spider metadata snapshot into a
//! "compact prefix tree" that serves as the virtual file system for the
//! emulation: it answers "does this path exist?" during trace replay (a
//! miss means the file was purged or never existed) and hands back the
//! per-file metadata. The same structure backs the purge-exemption
//! (reservation) list.
//!
//! This implementation is a path-compressed trie over `/`-separated
//! components: each edge carries one *or more* components, and chains with
//! no branching collapse into a single node, which is what makes the
//! structure compact for deep HPC directory layouts
//! (`/lustre/atlas/u123/proj4/run17/out/part-00001.dat`).
//!
//! Nodes live in an arena with a free list; a file's [`NodeId`] is stable
//! for as long as the file exists and doubles as the
//! [`FileId`](activedr_core::files::FileId) seen by the retention policies.

#![allow(
    clippy::indexing_slicing,
    reason = "index sites here are counted and ratcheted by `cargo xtask check` (crates/xtask/panic-baseline.txt)"
)]
#![allow(
    clippy::expect_used,
    reason = "expect sites here are counted and ratcheted by `cargo xtask check` (crates/xtask/panic-baseline.txt)"
)]
#![allow(
    clippy::missing_panics_doc,
    reason = "asserts guard scenario invariants; every panic site is tracked by the xtask panic-freedom ratchet"
)]

use crate::meta::FileMeta;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Index of a trie node in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    pub const ROOT: NodeId = NodeId(0);

    fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// Components of the edge leading into this node (empty only for the
    /// root and freed slots). `edge[0]` equals the key under which the
    /// parent holds this node.
    edge: Vec<Box<str>>,
    parent: NodeId,
    children: BTreeMap<Box<str>, NodeId>,
    /// `Some` iff a file terminates exactly at this node.
    meta: Option<FileMeta>,
    /// Slot generation, bumped on free; detects stale ids.
    live: bool,
}

impl Node {
    fn empty() -> Node {
        Node {
            edge: Vec::new(),
            parent: NodeId::ROOT,
            children: BTreeMap::new(),
            meta: None,
            live: true,
        }
    }
}

/// Why an insert was rejected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertError {
    /// The path is empty or normalizes to the root.
    EmptyPath,
    /// A strict prefix of the path is an existing *file* — a file cannot
    /// also be a directory.
    FileIsNotADirectory { file_prefix: String },
    /// The exact path already exists as a directory with children.
    DirectoryExists,
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertError::EmptyPath => write!(f, "empty path"),
            InsertError::FileIsNotADirectory { file_prefix } => {
                write!(f, "path prefix {file_prefix:?} is an existing file")
            }
            InsertError::DirectoryExists => write!(f, "path is an existing directory"),
        }
    }
}

impl std::error::Error for InsertError {}

/// Why a rename failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenameError {
    /// No file at the source path.
    SourceMissing,
    /// The destination path was invalid; the source is untouched.
    Destination(InsertError),
}

impl fmt::Display for RenameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenameError::SourceMissing => write!(f, "rename source does not exist"),
            RenameError::Destination(e) => write!(f, "rename destination invalid: {e}"),
        }
    }
}

impl std::error::Error for RenameError {}

/// Structural statistics of a [`PathTrie`] (see [`PathTrie::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrieStats {
    pub files: usize,
    /// Explicit directory nodes (branch points); implicit directories
    /// inside compressed edges are not counted.
    pub directories: usize,
    pub nodes: usize,
    /// Maximum node depth in edges (not components).
    pub max_depth: usize,
    /// Components stored across all edges.
    pub stored_components: usize,
    /// Components across all file paths (what an uncompressed
    /// component-per-node trie would store at minimum).
    pub path_components: usize,
}

impl TrieStats {
    /// Stored components relative to total path components — < 1.0 means
    /// the compression is saving space via shared prefixes.
    pub fn compression_ratio(&self) -> f64 {
        if self.path_components == 0 {
            0.0
        } else {
            self.stored_components as f64 / self.path_components as f64
        }
    }
}

/// One `readdir` entry (see [`PathTrie::list_dir`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DirEntry {
    /// The child's path component.
    pub name: String,
    /// Whether a file terminates exactly at this entry (otherwise it is a
    /// directory, possibly implicit).
    pub is_file: bool,
}

/// Result of a successful insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inserted {
    /// A new file node was created.
    Created(NodeId),
    /// The path already held a file; its metadata was replaced.
    Replaced(NodeId),
}

impl Inserted {
    pub fn id(self) -> NodeId {
        match self {
            Inserted::Created(id) | Inserted::Replaced(id) => id,
        }
    }
}

/// Split a path into normalized components.
pub fn components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty() && *c != ".")
}

/// A compact path prefix tree mapping absolute paths to [`FileMeta`].
///
/// ```
/// use activedr_fs::{PathTrie, FileMeta};
/// use activedr_core::{time::Timestamp, user::UserId};
///
/// let mut trie = PathTrie::new();
/// let meta = FileMeta::new(UserId(7), 4096, Timestamp::from_days(10));
/// trie.insert("/lustre/u7/run/out.h5", meta).unwrap();
///
/// assert!(trie.lookup("/lustre/u7/run/out.h5").is_some());
/// assert!(trie.is_dir("/lustre/u7"));           // implicit directory
/// assert_eq!(trie.iter_prefix("/lustre/u7").count(), 1);
/// assert_eq!(trie.remove("/lustre/u7/run/out.h5").unwrap().size, 4096);
/// assert!(trie.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PathTrie {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    file_count: usize,
}

impl Default for PathTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl PathTrie {
    pub fn new() -> PathTrie {
        PathTrie {
            nodes: vec![Node::empty()],
            free: Vec::new(),
            file_count: 0,
        }
    }

    /// Number of files (not internal nodes) stored.
    pub fn len(&self) -> usize {
        self.file_count
    }

    pub fn is_empty(&self) -> bool {
        self.file_count == 0
    }

    /// Number of live arena nodes, including directories and the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn node(&self, id: NodeId) -> &Node {
        let n = &self.nodes[id.idx()];
        debug_assert!(n.live, "access to freed node {id}");
        n
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let n = &mut self.nodes[id.idx()];
        debug_assert!(n.live, "access to freed node {id}");
        n
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.idx()] = node;
            id
        } else {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("trie arena overflow"));
            self.nodes.push(node);
            id
        }
    }

    fn release(&mut self, id: NodeId) {
        debug_assert_ne!(id, NodeId::ROOT);
        let n = &mut self.nodes[id.idx()];
        n.live = false;
        n.edge = Vec::new();
        n.children = BTreeMap::new();
        n.meta = None;
        self.free.push(id);
    }

    /// Insert (or replace) a file at `path`.
    pub fn insert(&mut self, path: &str, meta: FileMeta) -> Result<Inserted, InsertError> {
        let comps: Vec<&str> = components(path).collect();
        if comps.is_empty() {
            return Err(InsertError::EmptyPath);
        }
        let mut cur = NodeId::ROOT;
        let mut i = 0usize;
        while i < comps.len() {
            // A file node along the way blocks descent.
            if self.node(cur).meta.is_some() {
                return Err(InsertError::FileIsNotADirectory {
                    file_prefix: self.path_of(cur),
                });
            }
            let Some(&child) = self.node(cur).children.get(comps[i]) else {
                // No branch: hang the whole remainder as one compressed edge.
                let edge: Vec<Box<str>> = comps[i..].iter().map(|c| (*c).into()).collect();
                let key = edge[0].clone();
                let new_id = self.alloc(Node {
                    edge,
                    parent: cur,
                    children: BTreeMap::new(),
                    meta: Some(meta),
                    live: true,
                });
                self.node_mut(cur).children.insert(key, new_id);
                self.file_count += 1;
                return Ok(Inserted::Created(new_id));
            };
            // Walk the shared prefix of the child's edge and our remainder.
            let shared = {
                let edge = &self.node(child).edge;
                let mut j = 0usize;
                while j < edge.len() && i + j < comps.len() && &*edge[j] == comps[i + j] {
                    j += 1;
                }
                j
            };
            if shared == self.node(child).edge.len() {
                // Full edge consumed; descend.
                cur = child;
                i += shared;
            } else {
                // Split the child's edge at `shared`.
                let (head, tail, child_key_after_split) = {
                    let edge = &self.node(child).edge;
                    (
                        edge[..shared].to_vec(),
                        edge[shared..].to_vec(),
                        edge[shared].clone(),
                    )
                };
                let key = head[0].clone();
                let mid = self.alloc(Node {
                    edge: head,
                    parent: cur,
                    children: BTreeMap::new(),
                    meta: None,
                    live: true,
                });
                self.node_mut(mid)
                    .children
                    .insert(child_key_after_split, child);
                {
                    let c = self.node_mut(child);
                    c.edge = tail;
                    c.parent = mid;
                }
                self.node_mut(cur).children.insert(key, mid);
                cur = mid;
                i += shared;
            }
        }
        // Path fully consumed at `cur`.
        debug_assert_ne!(cur, NodeId::ROOT);
        if self.node(cur).meta.is_some() {
            self.node_mut(cur).meta = Some(meta);
            return Ok(Inserted::Replaced(cur));
        }
        if !self.node(cur).children.is_empty() {
            return Err(InsertError::DirectoryExists);
        }
        // `cur` is a freshly split intermediate with no children yet — it
        // becomes the file node.
        self.node_mut(cur).meta = Some(meta);
        self.file_count += 1;
        Ok(Inserted::Created(cur))
    }

    /// Walk to the node exactly matching `path`, file or directory.
    fn walk(&self, path: &str) -> Option<NodeId> {
        let comps: Vec<&str> = components(path).collect();
        let mut cur = NodeId::ROOT;
        let mut i = 0usize;
        while i < comps.len() {
            let &child = self.node(cur).children.get(comps[i])?;
            let edge = &self.node(child).edge;
            if comps.len() - i < edge.len() {
                return None; // path ends inside a compressed edge
            }
            for (j, comp) in edge.iter().enumerate() {
                if &**comp != comps[i + j] {
                    return None;
                }
            }
            i += edge.len();
            cur = child;
        }
        (cur != NodeId::ROOT).then_some(cur)
    }

    /// Id of the file at `path`, if one exists.
    pub fn lookup(&self, path: &str) -> Option<NodeId> {
        let id = self.walk(path)?;
        self.node(id).meta.is_some().then_some(id)
    }

    /// Metadata of the file at `path`.
    pub fn get(&self, path: &str) -> Option<&FileMeta> {
        self.lookup(path).and_then(|id| self.node(id).meta.as_ref())
    }

    /// Mutable metadata of the file at `path`.
    pub fn get_mut(&mut self, path: &str) -> Option<&mut FileMeta> {
        let id = self.lookup(path)?;
        self.nodes[id.idx()].meta.as_mut()
    }

    /// Metadata by node id.
    pub fn meta(&self, id: NodeId) -> Option<&FileMeta> {
        self.nodes
            .get(id.idx())
            .filter(|n| n.live)
            .and_then(|n| n.meta.as_ref())
    }

    /// Mutable metadata by node id.
    pub fn meta_mut(&mut self, id: NodeId) -> Option<&mut FileMeta> {
        self.nodes
            .get_mut(id.idx())
            .filter(|n| n.live)
            .and_then(|n| n.meta.as_mut())
    }

    /// Does `path` exist as a directory? With path compression most
    /// directories are *implicit* — the path ends inside a compressed edge
    /// — so this walks with partial-edge matching rather than the exact
    /// walk used by lookups.
    pub fn is_dir(&self, path: &str) -> bool {
        let comps: Vec<&str> = components(path).collect();
        if comps.is_empty() {
            return true; // the root
        }
        let mut cur = NodeId::ROOT;
        let mut i = 0usize;
        while i < comps.len() {
            let Some(&child) = self.node(cur).children.get(comps[i]) else {
                return false;
            };
            let edge = &self.node(child).edge;
            let overlap = edge.len().min(comps.len() - i);
            for j in 0..overlap {
                if &*edge[j] != comps[i + j] {
                    return false;
                }
            }
            cur = child;
            i += overlap;
            if overlap < edge.len() {
                // Ended inside a compressed edge: an implicit directory on
                // the way down to `child`.
                return true;
            }
        }
        self.node(cur).meta.is_none()
    }

    /// Remove the file at `path`, pruning now-empty directories.
    pub fn remove(&mut self, path: &str) -> Option<FileMeta> {
        let id = self.lookup(path)?;
        self.remove_id(id)
    }

    /// Remove a file by node id.
    pub fn remove_id(&mut self, id: NodeId) -> Option<FileMeta> {
        let meta = self
            .nodes
            .get_mut(id.idx())
            .filter(|n| n.live)?
            .meta
            .take()?;
        self.file_count -= 1;
        // Prune childless non-file nodes upward.
        let mut cur = id;
        while cur != NodeId::ROOT
            && self.node(cur).meta.is_none()
            && self.node(cur).children.is_empty()
        {
            let parent = self.node(cur).parent;
            let key = self.node(cur).edge[0].clone();
            self.node_mut(parent).children.remove(&key);
            self.release(cur);
            cur = parent;
        }
        Some(meta)
    }

    /// Reconstruct the absolute path of a node. Returns an empty string
    /// for freed or out-of-range ids (a purged file has no path).
    pub fn path_of(&self, id: NodeId) -> String {
        if !self.nodes.get(id.idx()).is_some_and(|n| n.live) {
            return String::new();
        }
        let mut parts: Vec<&[Box<str>]> = Vec::new();
        let mut cur = id;
        while cur != NodeId::ROOT {
            let n = self.node(cur);
            parts.push(&n.edge);
            cur = n.parent;
        }
        let mut out = String::new();
        for edge in parts.iter().rev() {
            for comp in edge.iter() {
                out.push('/');
                out.push_str(comp);
            }
        }
        out
    }

    /// Depth-first iteration over all files as `(path, id, &meta)`.
    pub fn iter(&self) -> TrieIter<'_> {
        TrieIter::new(self, NodeId::ROOT, String::new())
    }

    /// Depth-first iteration over files under `prefix` (inclusive: if
    /// `prefix` itself is a file, it is yielded). The prefix must end on a
    /// component boundary (`/a/b` matches `/a/b/c` but not `/a/bc`).
    pub fn iter_prefix<'t>(&'t self, prefix: &str) -> TrieIter<'t> {
        // Walk as far as full components allow; the prefix may end inside a
        // compressed edge, in which case the subtree root is that child if
        // the remaining edge components extend the prefix.
        let comps: Vec<&str> = components(prefix).collect();
        let mut cur = NodeId::ROOT;
        let mut i = 0usize;
        let mut base = String::new();
        while i < comps.len() {
            let Some(&child) = self.node(cur).children.get(comps[i]) else {
                return TrieIter::empty(self);
            };
            let edge = &self.node(child).edge;
            // The prefix may end inside a compressed edge; it matches as
            // long as the overlapping components agree.
            let overlap = edge.len().min(comps.len() - i);
            for j in 0..overlap {
                if &*edge[j] != comps[i + j] {
                    return TrieIter::empty(self);
                }
            }
            for comp in edge.iter() {
                base.push('/');
                base.push_str(comp);
            }
            cur = child;
            // If overlap < edge.len(), the prefix was exhausted inside this
            // edge (overlap == comps.len() − i), so the loop exits with the
            // child as the subtree root.
            i += overlap;
        }
        TrieIter::new(self, cur, base)
    }

    /// Does any file exist whose path starts with `prefix` (on a component
    /// boundary)? Used by the exemption list for directory reservations.
    pub fn any_under(&self, prefix: &str) -> bool {
        self.iter_prefix(prefix).next().is_some()
    }

    /// List the immediate children of a directory (`readdir`): each entry
    /// is the child's first path component plus whether a *file* lives at
    /// exactly `dir/<component>`. Compression is invisible: entries are
    /// single components even when stored inside multi-component edges.
    /// Returns an empty list for missing paths and for files.
    pub fn list_dir(&self, dir: &str) -> Vec<DirEntry> {
        let comps: Vec<&str> = components(dir).collect();
        let mut cur = NodeId::ROOT;
        let mut i = 0usize;
        // Walk with partial-edge matching (as in iter_prefix); when the
        // path ends inside an edge, the sole child is the edge's next
        // component.
        while i < comps.len() {
            let Some(&child) = self.node(cur).children.get(comps[i]) else {
                return Vec::new();
            };
            let edge = &self.node(child).edge;
            let overlap = edge.len().min(comps.len() - i);
            for j in 0..overlap {
                if &*edge[j] != comps[i + j] {
                    return Vec::new();
                }
            }
            if overlap < edge.len() {
                // Inside the compressed edge: exactly one child component.
                let name = edge[overlap].to_string();
                let is_file = overlap + 1 == edge.len() && self.node(child).meta.is_some();
                return vec![DirEntry { name, is_file }];
            }
            cur = child;
            i += overlap;
        }
        if self.node(cur).meta.is_some() {
            return Vec::new(); // a file, not a directory
        }
        self.node(cur)
            .children
            .values()
            .map(|&child| {
                let edge = &self.node(child).edge;
                DirEntry {
                    name: edge[0].to_string(),
                    is_file: edge.len() == 1 && self.node(child).meta.is_some(),
                }
            })
            .collect()
    }

    /// Move the file at `from` to `to` (metadata preserved, including
    /// atime). Fails if `from` does not exist or `to` cannot be created;
    /// on failure the file is restored at the source path (its [`NodeId`]
    /// may change). Renaming is how users cancel purge reservations
    /// (§3.4), so the caller is responsible for the exemption-list
    /// consequences.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<NodeId, RenameError> {
        let from_id = self.lookup(from).ok_or(RenameError::SourceMissing)?;
        if components(from).eq(components(to)) {
            return Ok(from_id); // no-op rename
        }
        // Validate the destination *before* removing the source: walk the
        // insert path read-only. A cheap sufficient check: destination must
        // not exist as a file-blocked path. We probe by attempting the
        // insert with the real metadata only after removing the source,
        // restoring on failure.
        let meta = self.remove_id(from_id).expect("lookup guaranteed presence");
        match self.insert(to, meta) {
            Ok(inserted) => Ok(inserted.id()),
            Err(e) => {
                // Restore the source; the original path must re-insert
                // cleanly because we just removed it.
                self.insert(from, meta).expect("restoring renamed source");
                Err(RenameError::Destination(e))
            }
        }
    }

    /// Remove every file under `prefix` (component-boundary semantics, as
    /// in [`PathTrie::iter_prefix`]), returning the removed metadata with
    /// paths. Used for project-directory teardown.
    pub fn remove_subtree(&mut self, prefix: &str) -> Vec<(String, FileMeta)> {
        let victims: Vec<(String, NodeId)> =
            self.iter_prefix(prefix).map(|(p, id, _)| (p, id)).collect();
        victims
            .into_iter()
            .filter_map(|(path, id)| self.remove_id(id).map(|meta| (path, meta)))
            .collect()
    }

    /// Structural statistics: node/file counts, maximum depth (in edges),
    /// and the compression ratio (components stored vs components across
    /// all file paths — lower is better).
    pub fn stats(&self) -> TrieStats {
        let mut stored_components = 0usize;
        let mut max_depth = 0usize;
        let mut dirs = 0usize;
        // Depth per node via DFS over live nodes.
        let mut stack: Vec<(NodeId, usize)> = vec![(NodeId::ROOT, 0)];
        while let Some((id, depth)) = stack.pop() {
            let node = self.node(id);
            if id != NodeId::ROOT {
                stored_components += node.edge.len();
                if node.meta.is_none() {
                    dirs += 1;
                }
            }
            max_depth = max_depth.max(depth);
            for &child in node.children.values() {
                stack.push((child, depth + 1));
            }
        }
        let mut path_components = 0usize;
        for (path, _, _) in self.iter() {
            path_components += components(&path).count();
        }
        TrieStats {
            files: self.file_count,
            directories: dirs,
            nodes: self.node_count(),
            max_depth,
            stored_components,
            path_components,
        }
    }

    /// Estimated resident memory of the structure in bytes (arena, edges,
    /// child maps). Mirrors the paper's Fig. 12a memory-footprint probe.
    pub fn memory_estimate(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Self>() + self.nodes.capacity() * size_of::<Node>();
        for n in &self.nodes {
            if !n.live {
                continue;
            }
            bytes += n
                .edge
                .iter()
                .map(|c| c.len() + size_of::<Box<str>>())
                .sum::<usize>();
            bytes += n
                .children
                .keys()
                .map(|k| k.len() + size_of::<Box<str>>() + size_of::<NodeId>() + 16)
                .sum::<usize>();
        }
        bytes + self.free.capacity() * size_of::<NodeId>()
    }
}

/// DFS iterator over the files of a [`PathTrie`] subtree.
pub struct TrieIter<'t> {
    trie: &'t PathTrie,
    /// Stack of (node, path-up-to-and-including-node, emitted).
    stack: Vec<(NodeId, String)>,
}

impl<'t> TrieIter<'t> {
    fn new(trie: &'t PathTrie, root: NodeId, base: String) -> Self {
        TrieIter {
            trie,
            stack: vec![(root, base)],
        }
    }

    fn empty(trie: &'t PathTrie) -> Self {
        TrieIter {
            trie,
            stack: Vec::new(),
        }
    }
}

impl<'t> Iterator for TrieIter<'t> {
    type Item = (String, NodeId, &'t FileMeta);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((id, path)) = self.stack.pop() {
            let node = self.trie.node(id);
            // Reverse order so iteration is lexicographic by component.
            for (_, &child) in node.children.iter().rev() {
                let mut p = path.clone();
                for comp in &self.trie.node(child).edge {
                    p.push('/');
                    p.push_str(comp);
                }
                self.stack.push((child, p));
            }
            if let Some(meta) = node.meta.as_ref() {
                return Some((path, id, meta));
            }
        }
        None
    }
}

#[cfg(test)]
#[allow(
    clippy::float_cmp,
    reason = "tests assert exact values produced by exact arithmetic"
)]
mod tests {
    use super::*;
    use activedr_core::time::Timestamp;
    use activedr_core::user::UserId;

    fn meta(owner: u32, size: u64) -> FileMeta {
        FileMeta::new(UserId(owner), size, Timestamp::EPOCH)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = PathTrie::new();
        let id = t
            .insert("/lustre/atlas/u1/a.dat", meta(1, 100))
            .unwrap()
            .id();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("/lustre/atlas/u1/a.dat"), Some(id));
        assert_eq!(t.get("/lustre/atlas/u1/a.dat").unwrap().size, 100);
        assert_eq!(t.lookup("/lustre/atlas/u1"), None); // dir, not file
        assert!(t.is_dir("/lustre/atlas/u1"));
        assert_eq!(t.lookup("/lustre/atlas/u1/b.dat"), None);
        assert_eq!(t.path_of(id), "/lustre/atlas/u1/a.dat");
    }

    #[test]
    fn path_normalization() {
        let mut t = PathTrie::new();
        let id = t.insert("//a///b/./c", meta(1, 1)).unwrap().id();
        assert_eq!(t.lookup("/a/b/c"), Some(id));
        assert_eq!(t.path_of(id), "/a/b/c");
    }

    #[test]
    fn compression_splits_on_branch() {
        let mut t = PathTrie::new();
        let a = t.insert("/x/y/z/one.dat", meta(1, 1)).unwrap().id();
        // Whole path is one compressed node: root + file.
        assert_eq!(t.node_count(), 2);
        let b = t.insert("/x/y/w/two.dat", meta(1, 2)).unwrap().id();
        // Split at /x/y: root + mid(x,y) + branch z/one.dat + branch w/two.dat.
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.lookup("/x/y/z/one.dat"), Some(a));
        assert_eq!(t.lookup("/x/y/w/two.dat"), Some(b));
        assert_eq!(t.path_of(a), "/x/y/z/one.dat");
        assert_eq!(t.path_of(b), "/x/y/w/two.dat");
    }

    #[test]
    fn ids_stable_across_splits() {
        let mut t = PathTrie::new();
        let a = t.insert("/p/q/r/s/file1", meta(1, 1)).unwrap().id();
        let before = t.path_of(a);
        // Force multiple splits above and below.
        t.insert("/p/q/other", meta(1, 2)).unwrap();
        t.insert("/p/q/r/s/file2", meta(1, 3)).unwrap();
        t.insert("/p/zzz", meta(1, 4)).unwrap();
        assert_eq!(t.lookup("/p/q/r/s/file1"), Some(a));
        assert_eq!(t.path_of(a), before);
        assert_eq!(t.get("/p/q/r/s/file1").unwrap().size, 1);
    }

    #[test]
    fn replace_updates_meta() {
        let mut t = PathTrie::new();
        let a = t.insert("/a/f", meta(1, 1)).unwrap().id();
        match t.insert("/a/f", meta(2, 99)).unwrap() {
            Inserted::Replaced(id) => assert_eq!(id, a),
            other => panic!("expected replace, got {other:?}"),
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.get("/a/f").unwrap().owner, UserId(2));
    }

    #[test]
    fn file_cannot_be_directory() {
        let mut t = PathTrie::new();
        t.insert("/a/b", meta(1, 1)).unwrap();
        let err = t.insert("/a/b/c", meta(1, 2)).unwrap_err();
        assert_eq!(
            err,
            InsertError::FileIsNotADirectory {
                file_prefix: "/a/b".into()
            }
        );
        // And a directory cannot become a file.
        t.insert("/d/e/f", meta(1, 1)).unwrap();
        assert_eq!(
            t.insert("/d/e", meta(1, 2)).unwrap_err(),
            InsertError::DirectoryExists
        );
        assert_eq!(
            t.insert("", meta(1, 1)).unwrap_err(),
            InsertError::EmptyPath
        );
        assert_eq!(
            t.insert("///", meta(1, 1)).unwrap_err(),
            InsertError::EmptyPath
        );
    }

    #[test]
    fn remove_prunes_empty_chains() {
        let mut t = PathTrie::new();
        t.insert("/deep/chain/of/dirs/file", meta(1, 5)).unwrap();
        t.insert("/deep/other", meta(1, 6)).unwrap();
        let removed = t.remove("/deep/chain/of/dirs/file").unwrap();
        assert_eq!(removed.size, 5);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("/deep/chain/of/dirs/file"), None);
        assert!(!t.is_dir("/deep/chain/of/dirs"));
        assert!(t.get("/deep/other").is_some());
        // Arena slots were recycled.
        assert_eq!(t.node_count(), 3); // root + /deep + other
        assert!(t.remove("/deep/chain/of/dirs/file").is_none());
    }

    #[test]
    fn remove_by_id_and_slot_reuse() {
        let mut t = PathTrie::new();
        let a = t.insert("/x/a", meta(1, 1)).unwrap().id();
        t.insert("/x/b", meta(1, 2)).unwrap();
        assert!(t.remove_id(a).is_some());
        assert!(t.remove_id(a).is_none()); // stale id
        assert!(t.meta(a).is_none());
        let c = t.insert("/x/c", meta(1, 3)).unwrap().id();
        assert_eq!(t.get("/x/c").unwrap().size, 3);
        assert_eq!(t.path_of(c), "/x/c");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iteration_is_lexicographic_and_complete() {
        let mut t = PathTrie::new();
        let paths = ["/u2/b", "/u1/x/deep/f", "/u1/a", "/u3/q", "/u1/x/deep/e"];
        for (i, p) in paths.iter().enumerate() {
            t.insert(p, meta(1, i as u64)).unwrap();
        }
        let listed: Vec<String> = t.iter().map(|(p, _, _)| p).collect();
        assert_eq!(
            listed,
            vec!["/u1/a", "/u1/x/deep/e", "/u1/x/deep/f", "/u2/b", "/u3/q"]
        );
    }

    #[test]
    fn prefix_iteration() {
        let mut t = PathTrie::new();
        for p in ["/u1/a/f1", "/u1/a/f2", "/u1/b/f3", "/u2/a/f4"] {
            t.insert(p, meta(1, 1)).unwrap();
        }
        let under_u1: Vec<String> = t.iter_prefix("/u1").map(|(p, _, _)| p).collect();
        assert_eq!(under_u1, vec!["/u1/a/f1", "/u1/a/f2", "/u1/b/f3"]);
        let under_u1a: Vec<String> = t.iter_prefix("/u1/a").map(|(p, _, _)| p).collect();
        assert_eq!(under_u1a, vec!["/u1/a/f1", "/u1/a/f2"]);
        assert!(t.iter_prefix("/u9").next().is_none());
        assert!(t.any_under("/u2"));
        assert!(!t.any_under("/u9"));
        // Prefix matching is component-wise: /u does not match /u1.
        assert!(t.iter_prefix("/u").next().is_none());
    }

    #[test]
    fn prefix_of_exact_file_yields_it() {
        let mut t = PathTrie::new();
        t.insert("/a/b/c", meta(1, 7)).unwrap();
        let got: Vec<String> = t.iter_prefix("/a/b/c").map(|(p, _, _)| p).collect();
        assert_eq!(got, vec!["/a/b/c"]);
    }

    #[test]
    fn prefix_ending_inside_compressed_edge() {
        let mut t = PathTrie::new();
        // Single compressed node /a/b/c/d.
        t.insert("/a/b/c/d", meta(1, 1)).unwrap();
        let got: Vec<String> = t.iter_prefix("/a/b").map(|(p, _, _)| p).collect();
        assert_eq!(got, vec!["/a/b/c/d"]);
        assert!(t.iter_prefix("/a/x").next().is_none());
    }

    #[test]
    fn memory_estimate_grows_with_content() {
        let mut t = PathTrie::new();
        let empty = t.memory_estimate();
        for i in 0..100 {
            t.insert(
                &format!("/users/u{}/data/file{}.dat", i % 10, i),
                meta(i % 10, 1),
            )
            .unwrap();
        }
        assert!(t.memory_estimate() > empty);
    }

    #[test]
    fn list_dir_sees_through_compression() {
        let mut t = PathTrie::new();
        t.insert("/proj/a/deep/f1", meta(1, 1)).unwrap();
        t.insert("/proj/a/deep/f2", meta(1, 1)).unwrap();
        t.insert("/proj/b", meta(1, 1)).unwrap();

        // Root readdir: one implicit directory.
        assert_eq!(
            t.list_dir("/"),
            vec![DirEntry {
                name: "proj".into(),
                is_file: false
            }]
        );
        // /proj: a (dir) and b (file), lexicographic.
        assert_eq!(
            t.list_dir("/proj"),
            vec![
                DirEntry {
                    name: "a".into(),
                    is_file: false
                },
                DirEntry {
                    name: "b".into(),
                    is_file: true
                },
            ]
        );
        // Inside a compressed edge: /proj/a has the single child "deep".
        assert_eq!(
            t.list_dir("/proj/a"),
            vec![DirEntry {
                name: "deep".into(),
                is_file: false
            }]
        );
        assert_eq!(t.list_dir("/proj/a/deep").len(), 2);
        // Files and missing paths list nothing.
        assert!(t.list_dir("/proj/b").is_empty());
        assert!(t.list_dir("/nope").is_empty());
    }

    #[test]
    fn rename_preserves_metadata() {
        let mut t = PathTrie::new();
        t.insert("/a/b/old.dat", meta(3, 77)).unwrap();
        t.insert("/a/other", meta(1, 1)).unwrap();
        let id = t.rename("/a/b/old.dat", "/x/new.dat").unwrap();
        assert_eq!(t.lookup("/a/b/old.dat"), None);
        assert_eq!(t.lookup("/x/new.dat"), Some(id));
        let m = t.get("/x/new.dat").unwrap();
        assert_eq!(m.owner, UserId(3));
        assert_eq!(m.size, 77);
        assert_eq!(t.len(), 2);
        // Source directory chain was pruned.
        assert!(!t.is_dir("/a/b"));
    }

    #[test]
    fn rename_failures_leave_the_file_in_place() {
        let mut t = PathTrie::new();
        t.insert("/src/f", meta(1, 5)).unwrap();
        t.insert("/blocker", meta(1, 1)).unwrap();
        assert_eq!(t.rename("/missing", "/x"), Err(RenameError::SourceMissing));
        // Destination under an existing file is invalid.
        let err = t.rename("/src/f", "/blocker/inside").unwrap_err();
        assert!(matches!(err, RenameError::Destination(_)));
        assert_eq!(t.get("/src/f").unwrap().size, 5);
        assert_eq!(t.len(), 2);
        // No-op rename (same path modulo normalization) succeeds.
        t.rename("/src/f", "//src/./f").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_subtree_clears_a_project() {
        let mut t = PathTrie::new();
        for p in ["/proj/a/f1", "/proj/a/f2", "/proj/b/f3", "/other/f4"] {
            t.insert(p, meta(1, 10)).unwrap();
        }
        let removed = t.remove_subtree("/proj");
        assert_eq!(removed.len(), 3);
        let mut paths: Vec<&str> = removed.iter().map(|(p, _)| p.as_str()).collect();
        paths.sort_unstable();
        assert_eq!(paths, vec!["/proj/a/f1", "/proj/a/f2", "/proj/b/f3"]);
        assert_eq!(t.len(), 1);
        assert!(t.get("/other/f4").is_some());
        assert!(t.remove_subtree("/proj").is_empty());
    }

    #[test]
    fn stats_reflect_structure_and_compression() {
        let mut t = PathTrie::new();
        let empty = t.stats();
        assert_eq!(empty.files, 0);
        assert_eq!(empty.nodes, 1); // the root
        assert_eq!(empty.compression_ratio(), 0.0);
        // Deep shared prefixes compress well.
        for i in 0..10 {
            t.insert(&format!("/lustre/atlas/proj/u1/run/f{i}"), meta(1, 1))
                .unwrap();
        }
        let s = t.stats();
        assert_eq!(s.files, 10);
        assert_eq!(s.nodes, t.node_count());
        assert!(s.max_depth >= 2);
        // 10 paths × 6 components = 60; stored: 5 shared + 10 leaves = 15.
        assert_eq!(s.path_components, 60);
        assert_eq!(s.stored_components, 15);
        assert!(s.compression_ratio() < 0.5, "{}", s.compression_ratio());
    }

    #[test]
    fn large_flat_directory() {
        let mut t = PathTrie::new();
        for i in 0..1000 {
            t.insert(&format!("/flat/f{i:04}"), meta(1, i)).unwrap();
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.iter().count(), 1000);
        assert_eq!(t.get("/flat/f0500").unwrap().size, 500);
        for i in 0..1000 {
            assert!(t.remove(&format!("/flat/f{i:04}")).is_some());
        }
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 1); // just the root
    }
}
