//! Purge-exemption (file reservation) list (§3.4).
//!
//! Administrators may specify a list of reserved paths; the retention scan
//! skips them. The paper stores the reservation list in a compact prefix
//! tree so each encountered file can be tested efficiently — we reuse
//! [`PathTrie`] with unit metadata. Reservations are a *contract on exact
//! paths*: if a user renames a reserved file the reservation lapses (§3.4).
//! Directory reservations (reserve everything under a prefix) are supported
//! as an extension, since production reservation lists commonly contain
//! project directories.

#![allow(
    clippy::indexing_slicing,
    reason = "index sites here are counted and ratcheted by `cargo xtask check` (crates/xtask/panic-baseline.txt)"
)]

use crate::meta::FileMeta;
use crate::trie::{components, PathTrie};
use activedr_core::time::Timestamp;
use activedr_core::user::UserId;

/// A set of reserved paths with efficient exact and prefix tests.
///
/// ```
/// use activedr_fs::ExemptionList;
///
/// let list = ExemptionList::from_lines(
///     "# ticket 1234\n/scratch/u1/keep.dat\n/scratch/proj/\n".lines(),
/// );
/// assert!(list.is_exempt("/scratch/u1/keep.dat"));
/// assert!(list.is_exempt("/scratch/proj/deep/file"));
/// // Renaming a reserved file cancels the reservation (§3.4):
/// assert!(!list.is_exempt("/scratch/u1/keep-v2.dat"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExemptionList {
    exact: PathTrie,
    /// Reserved directory prefixes (component-normalized, re-joined).
    prefixes: Vec<String>,
}

fn normalize(path: &str) -> String {
    let mut out = String::new();
    for c in components(path) {
        out.push('/');
        out.push_str(c);
    }
    out
}

impl ExemptionList {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve one exact file path.
    pub fn reserve_file(&mut self, path: &str) {
        // Unit metadata; the trie is used purely as a set.
        let _ = self
            .exact
            .insert(path, FileMeta::new(UserId(0), 0, Timestamp::EPOCH));
    }

    /// Reserve every file under a directory.
    pub fn reserve_dir(&mut self, prefix: &str) {
        let p = normalize(prefix);
        if !p.is_empty() && !self.prefixes.contains(&p) {
            self.prefixes.push(p);
        }
    }

    /// Build from a plain list of lines, treating entries ending in `/` as
    /// directory reservations — the on-disk reservation-list format.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> Self {
        let mut list = ExemptionList::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(dir) = line.strip_suffix('/') {
                list.reserve_dir(dir);
            } else {
                list.reserve_file(line);
            }
        }
        list
    }

    /// Is `path` reserved (exactly, or under a reserved directory)?
    pub fn is_exempt(&self, path: &str) -> bool {
        // Fast path for the common no-reservations case: every indexed or
        // scanned file asks, so skip the trie lookup when it cannot hit.
        if !self.exact.is_empty() && self.exact.lookup(path).is_some() {
            return true;
        }
        if self.prefixes.is_empty() {
            return false;
        }
        let p = normalize(path);
        self.prefixes.iter().any(|pre| {
            p.len() > pre.len() && p.starts_with(pre.as_str()) && p.as_bytes()[pre.len()] == b'/'
        })
    }

    /// Number of exact-path reservations.
    pub fn exact_count(&self) -> usize {
        self.exact.len()
    }

    /// Number of directory reservations.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.prefixes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reservation_is_exact() {
        let mut e = ExemptionList::new();
        e.reserve_file("/scratch/u1/keep.dat");
        assert!(e.is_exempt("/scratch/u1/keep.dat"));
        assert!(e.is_exempt("/scratch//u1/./keep.dat")); // normalization
        assert!(!e.is_exempt("/scratch/u1/keep.dat.bak"));
        assert!(!e.is_exempt("/scratch/u1"));
        assert_eq!(e.exact_count(), 1);
    }

    #[test]
    fn renamed_file_loses_reservation() {
        // §3.4: changing the path of a reserved file cancels the
        // reservation — i.e. the *new* path is not exempt.
        let mut e = ExemptionList::new();
        e.reserve_file("/scratch/u1/data-v1.h5");
        assert!(!e.is_exempt("/scratch/u1/data-v2.h5"));
    }

    #[test]
    fn dir_reservation_covers_subtree_on_component_boundary() {
        let mut e = ExemptionList::new();
        e.reserve_dir("/scratch/proj");
        assert!(e.is_exempt("/scratch/proj/a"));
        assert!(e.is_exempt("/scratch/proj/deep/b"));
        assert!(!e.is_exempt("/scratch/project/a")); // not a component match
        assert!(!e.is_exempt("/scratch/proj")); // the dir itself is not a file
        assert_eq!(e.prefix_count(), 1);
        e.reserve_dir("/scratch/proj/"); // duplicate, normalized away
        assert_eq!(e.prefix_count(), 1);
    }

    #[test]
    fn from_lines_parses_files_dirs_comments() {
        let e = ExemptionList::from_lines(
            "# reserved by ticket 1234\n/keep/exact.dat\n/keep/dir/\n\n  \n".lines(),
        );
        assert_eq!(e.exact_count(), 1);
        assert_eq!(e.prefix_count(), 1);
        assert!(e.is_exempt("/keep/exact.dat"));
        assert!(e.is_exempt("/keep/dir/x"));
        assert!(!e.is_exempt("/keep/other"));
    }

    #[test]
    fn empty_list_exempts_nothing() {
        let e = ExemptionList::new();
        assert!(e.is_empty());
        assert!(!e.is_exempt("/anything"));
    }
}
