//! Per-file metadata carried by the virtual file system.
//!
//! This mirrors the fields the paper extracts from the Spider II weekly
//! Lustre metadata snapshots: owner, access time, stripe count, and the
//! *synthesized* file size (the snapshots expose stripe counts, not sizes —
//! see [`crate::striping`]).

#![allow(
    clippy::missing_panics_doc,
    reason = "asserts guard scenario invariants; every panic site is tracked by the xtask panic-freedom ratchet"
)]

use activedr_core::time::Timestamp;
use activedr_core::user::UserId;
use serde::{Deserialize, Serialize};

/// Metadata of one file in the virtual file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    pub owner: UserId,
    /// File size in bytes (synthesized from the stripe count when loading
    /// a metadata snapshot).
    pub size: u64,
    /// Last access time — the field both retention policies age against.
    pub atime: Timestamp,
    /// Creation time (for diagnostics; FLT/ActiveDR never read it, the
    /// value-based baseline does).
    pub ctime: Timestamp,
    /// Lustre stripe count this file is laid out across.
    pub stripes: u8,
    /// Number of recorded accesses since creation (drives the
    /// access-frequency term of the value-based baseline).
    pub access_count: u32,
}

impl FileMeta {
    pub fn new(owner: UserId, size: u64, atime: Timestamp) -> Self {
        FileMeta {
            owner,
            size,
            atime,
            ctime: atime,
            stripes: 1,
            access_count: 0,
        }
    }

    pub fn with_stripes(mut self, stripes: u8) -> Self {
        assert!(stripes >= 1, "stripe count must be at least 1");
        self.stripes = stripes;
        self
    }

    pub fn with_ctime(mut self, ctime: Timestamp) -> Self {
        self.ctime = ctime;
        self
    }

    /// Record an access at `ts`. `atime` is monotone: replaying an
    /// out-of-order trace never moves it backwards. The access counter
    /// saturates rather than wrapping.
    pub fn touch(&mut self, ts: Timestamp) {
        if ts > self.atime {
            self.atime = ts;
        }
        self.access_count = self.access_count.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_is_monotone() {
        let mut m = FileMeta::new(UserId(1), 100, Timestamp::from_days(10));
        m.touch(Timestamp::from_days(20));
        assert_eq!(m.atime, Timestamp::from_days(20));
        m.touch(Timestamp::from_days(5)); // out-of-order event
        assert_eq!(m.atime, Timestamp::from_days(20));
        assert_eq!(m.ctime, Timestamp::from_days(10));
    }

    #[test]
    fn builders() {
        let m = FileMeta::new(UserId(2), 1, Timestamp::EPOCH)
            .with_stripes(4)
            .with_ctime(Timestamp::from_days(-5));
        assert_eq!(m.stripes, 4);
        assert_eq!(m.ctime, Timestamp::from_days(-5));
    }

    #[test]
    #[should_panic(expected = "stripe count")]
    fn zero_stripes_rejected() {
        FileMeta::new(UserId(1), 1, Timestamp::EPOCH).with_stripes(0);
    }
}
