//! Bounded, coalescing staging buffer between the changelog and the
//! [`crate::index::CatalogIndex`].
//!
//! Applying drained [`Delta`]s one at a time turns every mutation into an
//! independent index update — the `apply → upsert → insert` churn that
//! made a week of changes *slower* than a full scan (ROADMAP item 4).
//! The buffer restores the batching the changelog's own semantics make
//! legal: deltas carry *absolute* post-mutation state, so a run of deltas
//! for the same node collapses to its last word, and a whole window of
//! changes flushes into the index as one per-user sort-merge pass
//! ([`crate::index::CatalogIndex::flush`]).
//!
//! # Coalescing rules (per node id)
//!
//! * `Upsert` replaces whatever is pending — it is the node's complete
//!   new state (a create-then-overwrite keeps only the overwrite).
//! * `Touch` folds into a pending `Upsert` (patching its atime and
//!   access count), replaces a pending `Touch`, and is dropped on a
//!   pending `Remove` (the record is gone either way).
//! * `Remove` replaces whatever is pending. A node created *and*
//!   removed inside one window therefore nets to a `Remove` whose id the
//!   index has never seen — applied as a no-op, which is exactly the
//!   per-delta outcome.
//!
//! Keying by node id is what makes the fold sound: the producer
//! ([`crate::VirtualFs`]) never re-binds a path to a new id without first
//! emitting a delta for the old id (remove, rename-away, or the
//! overwrite keeping its id), so per-id last-writer-wins plus the
//! index's id-resolution step reconstructs the net effect of the whole
//! window regardless of how operations interleaved across paths. The
//! differential oracle (`crates/oracle`) replays randomized op tapes with
//! explicit flush boundaries to pin buffered and per-delta application to
//! identical catalogs.
//!
//! The buffer is *bounded* in the engine's hands: past
//! [`DeltaBuffer::over_capacity`] the owner is expected to force a flush
//! (`activedr-sim`'s replay loop does, counting `catalog.forced_flushes`),
//! so a bursty trace cannot grow the pending set without limit.

use crate::changelog::Delta;
use activedr_core::convert;

/// Coalescing staging area for changelog deltas. See the module docs for
/// the folding rules and the soundness argument.
#[derive(Debug, Clone)]
pub struct DeltaBuffer {
    /// Net effect per node id. Node ids are trie slab indices, so a dense
    /// slot vector makes absorption O(1) per delta; drain order stays
    /// deterministic (ascending node id) — never hash order.
    pending: Vec<Option<Delta>>,
    /// Occupied slots in `pending` (distinct node ids).
    live: usize,
    /// Soft bound on `pending` checked by [`DeltaBuffer::over_capacity`].
    cap: usize,
    /// Raw deltas absorbed since the last drain (what the pending net
    /// set replaces).
    raw_pending: u64,
    /// Raw deltas absorbed over the buffer's lifetime.
    absorbed_total: u64,
    /// Deltas folded away by coalescing over the buffer's lifetime.
    coalesced_total: u64,
}

impl Default for DeltaBuffer {
    fn default() -> Self {
        DeltaBuffer::unbounded()
    }
}

impl DeltaBuffer {
    /// A buffer that signals [`DeltaBuffer::over_capacity`] once more
    /// than `cap` distinct nodes are pending. `cap` is a flush trigger,
    /// not a hard limit — absorption never fails.
    pub fn with_capacity(cap: usize) -> Self {
        DeltaBuffer {
            pending: Vec::new(),
            live: 0,
            cap,
            raw_pending: 0,
            absorbed_total: 0,
            coalesced_total: 0,
        }
    }

    /// A buffer that never reports itself over capacity (callers flush
    /// at their own boundaries only).
    pub fn unbounded() -> Self {
        DeltaBuffer::with_capacity(usize::MAX)
    }

    /// Fold a batch of deltas into the pending set.
    pub fn absorb(&mut self, deltas: impl IntoIterator<Item = Delta>) {
        for delta in deltas {
            self.raw_pending += 1;
            self.absorbed_total += 1;
            let i = convert::usize_from_u32(delta.id().0);
            if i >= self.pending.len() {
                self.pending.resize_with(i + 1, || None);
            }
            if let Some(slot) = self.pending.get_mut(i) {
                match slot {
                    Some(prev) => {
                        self.coalesced_total += 1;
                        coalesce(prev, delta);
                    }
                    None => {
                        *slot = Some(delta);
                        self.live += 1;
                    }
                }
            }
        }
    }

    /// Distinct nodes with a pending net delta.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is nothing pending?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Has the pending set outgrown the configured capacity? The owner
    /// should flush when this turns true.
    pub fn over_capacity(&self) -> bool {
        self.live > self.cap
    }

    /// The configured capacity (flush threshold).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Raw deltas absorbed since the last [`DeltaBuffer::drain`] — the
    /// count the pending net set stands in for.
    pub fn raw_pending(&self) -> u64 {
        self.raw_pending
    }

    /// Raw deltas absorbed over the buffer's lifetime.
    pub fn absorbed_total(&self) -> u64 {
        self.absorbed_total
    }

    /// Deltas coalesced away (absorbed but superseded before a drain)
    /// over the buffer's lifetime.
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced_total
    }

    /// Take the pending net deltas in ascending node-id order, leaving
    /// the buffer empty (lifetime counters keep accumulating).
    pub fn drain(&mut self) -> impl Iterator<Item = Delta> {
        self.raw_pending = 0;
        self.live = 0;
        std::mem::take(&mut self.pending).into_iter().flatten()
    }

    /// Borrow the pending net deltas in ascending node-id order without
    /// disturbing the buffer — the checkpoint writer's view
    /// ([`crate::storage`] serializes the pending set alongside the
    /// index so a checkpoint stays valid mid-backlog).
    pub fn pending_deltas(&self) -> impl Iterator<Item = &Delta> {
        self.pending.iter().flatten()
    }

    /// Restore the raw-pending count after a recovery rehydrates the
    /// pending set from a checkpoint: re-absorbing the *net* deltas
    /// undercounts the raw deltas they stood in for, and the live buffer
    /// and its recovered twin must agree on every observable.
    pub fn set_raw_pending(&mut self, raw: u64) {
        self.raw_pending = raw;
    }

    /// Discard everything pending (used when the consumer re-seeds from
    /// a full walk and buffered history becomes redundant).
    pub fn clear(&mut self) {
        self.raw_pending = 0;
        self.live = 0;
        self.pending.clear();
    }
}

/// Fold `incoming` into the pending `slot` for the same node id.
fn coalesce(slot: &mut Delta, incoming: Delta) {
    match incoming {
        up @ Delta::Upsert { .. } => *slot = up,
        Delta::Touch {
            atime,
            access_count,
            ..
        } => match slot {
            Delta::Upsert { meta, .. } => {
                // Patch the pending creation/overwrite in place: the
                // touch carries the post-access absolute values.
                meta.atime = atime;
                meta.access_count = access_count;
            }
            Delta::Touch {
                atime: pending_atime,
                access_count: pending_count,
                ..
            } => {
                *pending_atime = atime;
                *pending_count = access_count;
            }
            // A touch cannot outlive a removal; keep the removal.
            Delta::Remove { .. } => {}
        },
        rm @ Delta::Remove { .. } => *slot = rm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::FileMeta;
    use crate::trie::NodeId;
    use activedr_core::time::Timestamp;
    use activedr_core::user::UserId;

    fn meta(size: u64, atime_day: i64) -> FileMeta {
        FileMeta::new(UserId(1), size, Timestamp::from_days(atime_day))
    }

    fn upsert(id: u32, size: u64, atime_day: i64) -> Delta {
        Delta::Upsert {
            path: format!("/u1/f{id}"),
            id: NodeId(id),
            meta: meta(size, atime_day),
        }
    }

    fn touch(id: u32, atime_day: i64, count: u32) -> Delta {
        Delta::Touch {
            id: NodeId(id),
            atime: Timestamp::from_days(atime_day),
            access_count: count,
        }
    }

    #[test]
    fn upsert_then_remove_nets_to_remove() {
        let mut buf = DeltaBuffer::unbounded();
        buf.absorb([upsert(7, 10, 1), Delta::Remove { id: NodeId(7) }]);
        let net: Vec<Delta> = buf.drain().collect();
        assert_eq!(net, vec![Delta::Remove { id: NodeId(7) }]);
        assert_eq!(buf.absorbed_total(), 2);
        assert_eq!(buf.coalesced_total(), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn repeated_upserts_keep_only_the_last() {
        let mut buf = DeltaBuffer::unbounded();
        buf.absorb([upsert(3, 10, 1), upsert(3, 99, 2)]);
        let net: Vec<Delta> = buf.drain().collect();
        assert_eq!(net, vec![upsert(3, 99, 2)]);
    }

    #[test]
    fn touch_folds_into_pending_upsert() {
        let mut buf = DeltaBuffer::unbounded();
        buf.absorb([upsert(5, 10, 1), touch(5, 8, 3)]);
        let net: Vec<Delta> = buf.drain().collect();
        match net.as_slice() {
            [Delta::Upsert { meta, .. }] => {
                assert_eq!(meta.atime, Timestamp::from_days(8));
                assert_eq!(meta.access_count, 3);
                assert_eq!(meta.size, 10);
            }
            other => panic!("expected one folded upsert, got {other:?}"),
        }
    }

    #[test]
    fn later_touch_replaces_earlier_touch() {
        let mut buf = DeltaBuffer::unbounded();
        buf.absorb([touch(4, 2, 1), touch(4, 9, 2)]);
        let net: Vec<Delta> = buf.drain().collect();
        assert_eq!(net, vec![touch(4, 9, 2)]);
    }

    #[test]
    fn touch_after_remove_keeps_the_remove() {
        let mut buf = DeltaBuffer::unbounded();
        buf.absorb([Delta::Remove { id: NodeId(2) }, touch(2, 9, 1)]);
        let net: Vec<Delta> = buf.drain().collect();
        assert_eq!(net, vec![Delta::Remove { id: NodeId(2) }]);
    }

    #[test]
    fn drain_is_id_ordered_and_resets_raw_count() {
        let mut buf = DeltaBuffer::unbounded();
        buf.absorb([upsert(9, 1, 1), upsert(2, 1, 1), upsert(5, 1, 1)]);
        assert_eq!(buf.raw_pending(), 3);
        let ids: Vec<u32> = buf.drain().map(|d| d.id().0).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert_eq!(buf.raw_pending(), 0);
        assert_eq!(buf.absorbed_total(), 3);
    }

    #[test]
    fn capacity_is_a_soft_flush_signal() {
        let mut buf = DeltaBuffer::with_capacity(2);
        buf.absorb([upsert(1, 1, 1), upsert(2, 1, 1)]);
        assert!(!buf.over_capacity());
        buf.absorb([upsert(3, 1, 1)]);
        assert!(buf.over_capacity());
        // Coalescing keeps the pending set at distinct-node size.
        buf.absorb([upsert(3, 2, 2)]);
        assert_eq!(buf.len(), 3);
        buf.clear();
        assert!(buf.is_empty() && !buf.over_capacity());
        assert_eq!(buf.absorbed_total(), 4);
    }
}
