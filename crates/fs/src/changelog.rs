//! Metadata changelog: the delta stream behind the incremental catalog.
//!
//! Rescanning the whole namespace at every retention trigger is the
//! scalability wall the Robinhood policy engine hit on billion-entry Lustre
//! systems: the scan itself becomes the bottleneck, and the production fix
//! is a changelog-fed index that is updated in O(changes) instead of
//! re-walked in O(files). [`crate::VirtualFs`] plays the role of the file
//! system's changelog producer here: when recording is enabled it emits one
//! [`Delta`] per mutation (create/overwrite, atime renewal, removal), and
//! [`crate::index::CatalogIndex`] consumes the drained stream to keep a
//! policy-ready catalog current without touching the trie.
//!
//! Deltas carry *absolute* post-mutation state (full metadata for upserts,
//! the resulting atime/access count for touches), never relative updates:
//! replaying the stream in order is therefore idempotent per file and
//! cannot drift from the trie through rounding or reordering within a
//! single file's history.
//!
//! That absoluteness is also what licenses *coalescing*: a window of
//! deltas for one node collapses to the last word said about it, so the
//! consumer side stages drained deltas in a [`crate::DeltaBuffer`] and
//! folds whole windows into the index as per-user batches instead of one
//! update per delta. The producer upholds one invariant the buffer leans
//! on: a path is never re-bound to a new node id without a delta being
//! emitted for the old id first (remove, rename-away, or an overwrite
//! that keeps its id).

use crate::meta::FileMeta;
use crate::trie::NodeId;
use serde::{Deserialize, Serialize};

/// One recorded namespace mutation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Delta {
    /// A file was created at `path`, or the file already there was
    /// overwritten (same [`NodeId`], replaced metadata). `meta` is the
    /// complete post-mutation metadata.
    Upsert {
        /// Canonical path (leading `/`, normalized components — exactly
        /// what [`crate::PathTrie::path_of`] reconstructs).
        path: String,
        /// The trie node holding the file; doubles as the policy-visible
        /// `FileId`.
        id: NodeId,
        /// Full metadata after the mutation.
        meta: FileMeta,
    },
    /// An existing file's atime was renewed by a replayed access. Carries
    /// the post-touch absolute values, not increments.
    Touch {
        /// The touched file's node.
        id: NodeId,
        /// Access time after the touch (atime is monotone).
        atime: activedr_core::time::Timestamp,
        /// Saturating access counter after the touch.
        access_count: u32,
    },
    /// The file at `id` was removed (purge, explicit delete, subtree
    /// teardown, or the source side of a rename).
    Remove {
        /// The removed file's node id at the time of removal.
        id: NodeId,
    },
}

impl Delta {
    /// The node the delta applies to.
    pub fn id(&self) -> NodeId {
        match self {
            Delta::Upsert { id, .. } | Delta::Touch { id, .. } | Delta::Remove { id } => *id,
        }
    }
}

/// An append-only buffer of [`Delta`]s with lifetime counters.
///
/// The buffer is drained by the index at every retention trigger, so its
/// peak size is one trigger interval's worth of mutations — O(changes),
/// which is the entire point.
#[derive(Debug, Clone, Default)]
pub struct Changelog {
    deltas: Vec<Delta>,
    recorded_total: u64,
}

impl Changelog {
    /// An empty changelog.
    pub fn new() -> Self {
        Changelog::default()
    }

    /// Append one delta.
    pub fn record(&mut self, delta: Delta) {
        self.recorded_total += 1;
        self.deltas.push(delta);
    }

    /// Take the buffered deltas, leaving the buffer empty (the counters
    /// keep accumulating across drains).
    pub fn drain(&mut self) -> Vec<Delta> {
        std::mem::take(&mut self.deltas)
    }

    /// Buffered (not yet drained) delta count.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Deltas recorded over the changelog's lifetime, including drained
    /// ones.
    pub fn recorded_total(&self) -> u64 {
        self.recorded_total
    }

    /// Peek at the buffered deltas without draining.
    pub fn deltas(&self) -> &[Delta] {
        &self.deltas
    }
}

/// Canonicalize a path the way the trie stores it: a leading `/` before
/// every normalized component (empty and `.` components dropped).
pub fn canonical_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 1);
    for c in crate::trie::components(path) {
        out.push('/');
        out.push_str(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use activedr_core::time::Timestamp;
    use activedr_core::user::UserId;

    #[test]
    fn record_drain_counts() {
        let mut log = Changelog::new();
        assert!(log.is_empty());
        log.record(Delta::Remove { id: NodeId(3) });
        log.record(Delta::Touch {
            id: NodeId(4),
            atime: Timestamp::from_days(9),
            access_count: 2,
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.deltas()[0].id(), NodeId(3));
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
        assert_eq!(log.recorded_total(), 2);
        log.record(Delta::Upsert {
            path: "/a/b".into(),
            id: NodeId(5),
            meta: FileMeta::new(UserId(1), 10, Timestamp::EPOCH),
        });
        assert_eq!(log.recorded_total(), 3);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn canonical_path_normalizes() {
        assert_eq!(canonical_path("//a///b/./c"), "/a/b/c");
        assert_eq!(canonical_path("/a/b/c"), "/a/b/c");
        assert_eq!(canonical_path(""), "");
        assert_eq!(canonical_path("///"), "");
    }
}
