//! Weekly metadata snapshots.
//!
//! The paper's dataset includes weekly metadata snapshots of the Spider II
//! file system (stored as gzipped text files, one record per file). Our
//! snapshot is the same shape — `(path, owner, size, atime, stripes)` per
//! file — serialized as JSON lines so the CLI can persist and reload
//! populations, and so experiments can restart from a captured state.

#![allow(
    clippy::cast_possible_truncation,
    reason = "values are bounded far below the narrow type's range at paper scale"
)]

use crate::meta::FileMeta;
use crate::vfs::VirtualFs;
use activedr_core::time::Timestamp;
use activedr_core::user::UserId;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One file record in a metadata snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    pub path: String,
    pub owner: UserId,
    pub size: u64,
    pub atime: Timestamp,
    pub ctime: Timestamp,
    pub stripes: u8,
}

/// A full metadata snapshot: capture time plus one entry per file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Snapshot {
    pub captured_at: Timestamp,
    pub capacity: u64,
    pub entries: Vec<SnapshotEntry>,
}

/// The difference between two snapshots (see [`Snapshot::diff`]). Entries
/// reference the newer snapshot for `created`/`touched` and the older one
/// for `removed`.
#[derive(Debug, Clone, Default)]
pub struct SnapshotDiff<'a> {
    pub created: Vec<&'a SnapshotEntry>,
    pub removed: Vec<&'a SnapshotEntry>,
    /// Present in both but with changed atime or size.
    pub touched: Vec<&'a SnapshotEntry>,
}

impl SnapshotDiff<'_> {
    pub fn created_bytes(&self) -> u64 {
        self.created.iter().map(|e| e.size).sum()
    }

    pub fn removed_bytes(&self) -> u64 {
        self.removed.iter().map(|e| e.size).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.created.is_empty() && self.removed.is_empty() && self.touched.is_empty()
    }
}

/// Errors while reading a snapshot stream.
#[derive(Debug)]
pub enum SnapshotError {
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        line: usize,
        source: serde_json::Error,
    },
    /// The header line was missing or malformed.
    MissingHeader,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Parse { line, source } => {
                write!(f, "snapshot parse error on line {line}: {source}")
            }
            SnapshotError::MissingHeader => write!(f, "snapshot header line missing"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    captured_at: Timestamp,
    capacity: u64,
    files: u64,
}

impl Snapshot {
    /// Capture the current state of a virtual file system.
    pub fn capture(fs: &VirtualFs, at: Timestamp) -> Snapshot {
        let entries = fs
            .iter()
            .map(|(path, _, meta)| SnapshotEntry {
                path,
                owner: meta.owner,
                size: meta.size,
                atime: meta.atime,
                ctime: meta.ctime,
                stripes: meta.stripes,
            })
            .collect();
        Snapshot {
            captured_at: at,
            capacity: fs.capacity(),
            entries,
        }
    }

    /// Rebuild a virtual file system from this snapshot. Entries with
    /// conflicting paths (a file shadowing another file's directory) are
    /// counted as skipped rather than aborting the load — real snapshot
    /// text files contain oddities.
    pub fn restore(&self) -> (VirtualFs, usize) {
        let mut fs = VirtualFs::with_capacity(self.capacity);
        let mut skipped = 0usize;
        for e in &self.entries {
            let meta = FileMeta::new(e.owner, e.size, e.atime)
                .with_ctime(e.ctime)
                .with_stripes(e.stripes.max(1));
            if fs.insert_meta(&e.path, meta).is_err() {
                skipped += 1;
            }
        }
        (fs, skipped)
    }

    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compare two snapshots (typically consecutive weekly captures):
    /// which paths appeared, disappeared, or had their metadata change.
    pub fn diff<'a>(&'a self, newer: &'a Snapshot) -> SnapshotDiff<'a> {
        use std::collections::HashMap;
        let old: HashMap<&str, &SnapshotEntry> =
            self.entries.iter().map(|e| (e.path.as_str(), e)).collect();
        let new: HashMap<&str, &SnapshotEntry> =
            newer.entries.iter().map(|e| (e.path.as_str(), e)).collect();

        let mut diff = SnapshotDiff::default();
        for (path, entry) in &new {
            match old.get(path) {
                None => diff.created.push(entry),
                Some(prev) => {
                    if prev.atime != entry.atime || prev.size != entry.size {
                        diff.touched.push(entry);
                    }
                }
            }
        }
        for (path, entry) in &old {
            if !new.contains_key(path) {
                diff.removed.push(entry);
            }
        }
        diff.created.sort_by_key(|e| e.path.as_str());
        diff.removed.sort_by_key(|e| e.path.as_str());
        diff.touched.sort_by_key(|e| e.path.as_str());
        diff
    }

    /// Serialize as JSON lines: a header record, then one record per file.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> Result<(), SnapshotError> {
        let header = Header {
            captured_at: self.captured_at,
            capacity: self.capacity,
            files: self.entries.len() as u64,
        };
        serde_json::to_writer(&mut w, &header)
            .map_err(|e| SnapshotError::Parse { line: 1, source: e })?;
        w.write_all(b"\n")?;
        for (i, e) in self.entries.iter().enumerate() {
            serde_json::to_writer(&mut w, e).map_err(|er| SnapshotError::Parse {
                line: i + 2,
                source: er,
            })?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Parse a JSON-lines snapshot stream.
    pub fn read_jsonl<R: BufRead>(r: R) -> Result<Snapshot, SnapshotError> {
        let mut lines = r.lines();
        let header_line = lines.next().ok_or(SnapshotError::MissingHeader)??;
        let header: Header =
            serde_json::from_str(&header_line).map_err(|_| SnapshotError::MissingHeader)?;
        let mut entries = Vec::with_capacity(header.files as usize);
        for (i, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let entry: SnapshotEntry =
                serde_json::from_str(&line).map_err(|e| SnapshotError::Parse {
                    line: i + 2,
                    source: e,
                })?;
            entries.push(entry);
        }
        Ok(Snapshot {
            captured_at: header.captured_at,
            capacity: header.capacity,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fs() -> VirtualFs {
        let mut fs = VirtualFs::with_capacity(10_000);
        fs.create("/u1/a.dat", UserId(1), 100, Timestamp::from_days(3))
            .unwrap();
        fs.create("/u1/deep/b.dat", UserId(1), 200, Timestamp::from_days(5))
            .unwrap();
        fs.create("/u2/c.dat", UserId(2), 300, Timestamp::from_days(7))
            .unwrap();
        fs
    }

    #[test]
    fn capture_restore_round_trip() {
        let fs = sample_fs();
        let snap = Snapshot::capture(&fs, Timestamp::from_days(10));
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.total_bytes(), 600);
        assert_eq!(snap.capacity, 10_000);

        let (restored, skipped) = snap.restore();
        assert_eq!(skipped, 0);
        assert_eq!(restored.file_count(), 3);
        assert_eq!(restored.used_bytes(), 600);
        assert_eq!(
            restored.meta("/u1/deep/b.dat").unwrap().atime,
            Timestamp::from_days(5)
        );
        assert_eq!(restored.meta("/u2/c.dat").unwrap().owner, UserId(2));
    }

    #[test]
    fn jsonl_round_trip() {
        let snap = Snapshot::capture(&sample_fs(), Timestamp::from_days(10));
        let mut buf = Vec::new();
        snap.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 4); // header + 3 files
        let back = Snapshot::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn corrupt_line_reports_position() {
        let snap = Snapshot::capture(&sample_fs(), Timestamp::from_days(10));
        let mut buf = Vec::new();
        snap.write_jsonl(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // Corrupt the third line (second file record).
        let lines: Vec<&str> = text.lines().collect();
        text = format!("{}\n{}\n{}\n{}\n", lines[0], lines[1], "{garbage", lines[3]);
        match Snapshot::read_jsonl(text.as_bytes()) {
            Err(SnapshotError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_is_missing_header() {
        assert!(matches!(
            Snapshot::read_jsonl(&b""[..]),
            Err(SnapshotError::MissingHeader)
        ));
        assert!(matches!(
            Snapshot::read_jsonl(&b"not json\n"[..]),
            Err(SnapshotError::MissingHeader)
        ));
    }

    #[test]
    fn restore_skips_conflicting_entries() {
        let snap = Snapshot {
            captured_at: Timestamp::EPOCH,
            capacity: 0,
            entries: vec![
                SnapshotEntry {
                    path: "/a/b".into(),
                    owner: UserId(1),
                    size: 10,
                    atime: Timestamp::EPOCH,
                    ctime: Timestamp::EPOCH,
                    stripes: 1,
                },
                SnapshotEntry {
                    path: "/a/b/c".into(), // /a/b is a file — conflict
                    owner: UserId(1),
                    size: 20,
                    atime: Timestamp::EPOCH,
                    ctime: Timestamp::EPOCH,
                    stripes: 0, // off-spec stripe count tolerated
                },
            ],
        };
        let (fs, skipped) = snap.restore();
        assert_eq!(skipped, 1);
        assert_eq!(fs.file_count(), 1);
        assert_eq!(fs.used_bytes(), 10);
    }

    #[test]
    fn diff_tracks_created_removed_touched() {
        let mut fs = sample_fs();
        let before = Snapshot::capture(&fs, Timestamp::from_days(10));

        fs.remove("/u2/c.dat").unwrap();
        fs.create("/u3/new.dat", UserId(3), 77, Timestamp::from_days(11))
            .unwrap();
        fs.access("/u1/a.dat", Timestamp::from_days(12));
        let after = Snapshot::capture(&fs, Timestamp::from_days(14));

        let diff = before.diff(&after);
        assert_eq!(diff.created.len(), 1);
        assert_eq!(diff.created[0].path, "/u3/new.dat");
        assert_eq!(diff.created_bytes(), 77);
        assert_eq!(diff.removed.len(), 1);
        assert_eq!(diff.removed[0].path, "/u2/c.dat");
        assert_eq!(diff.removed_bytes(), 300);
        assert_eq!(diff.touched.len(), 1);
        assert_eq!(diff.touched[0].path, "/u1/a.dat");
        assert!(!diff.is_empty());

        // A snapshot diffed with itself is empty.
        assert!(after.diff(&after).is_empty());
    }

    #[test]
    fn blank_lines_tolerated() {
        let snap = Snapshot::capture(&sample_fs(), Timestamp::from_days(1));
        let mut buf = Vec::new();
        snap.write_jsonl(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        text.push('\n');
        let back = Snapshot::read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 3);
    }
}
