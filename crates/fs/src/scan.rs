//! Parallel catalog scans.
//!
//! The paper's prototype scans metadata snapshots with 20 MPI ranks, each
//! rank processing a shard of the snapshot files and maintaining its own
//! counters (§4.1.3, Fig. 12c/d). The single-node analog is a rayon
//! data-parallel scan: the file list is split into shards, each shard is
//! classified against the exemption list and grouped per user, and the
//! shard results are merged. Per-shard wall times are reported so the
//! Fig. 12 benchmarks can show the same per-rank breakdown.

use crate::exemption::ExemptionList;
use crate::vfs::VirtualFs;
use activedr_core::files::{Catalog, FileId, FileRecord, UserFiles};
use activedr_core::user::UserId;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

/// Counters and timing from one scan shard — the per-rank probes of
/// Fig. 12c/d.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardReport {
    pub shard: usize,
    pub files: u64,
    pub bytes: u64,
    pub exempt: u64,
    pub elapsed: Duration,
}

/// The result of a parallel catalog scan.
#[derive(Debug, Clone)]
pub struct ScanResult {
    pub catalog: Catalog,
    pub shards: Vec<ShardReport>,
    pub elapsed: Duration,
}

impl ScanResult {
    pub fn total_files(&self) -> u64 {
        self.shards.iter().map(|s| s.files).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes).sum()
    }
}

/// Scan `fs` into a policy catalog using `shards` parallel shards.
///
/// Functionally identical to [`VirtualFs::catalog`] (same `FileId` space,
/// same ordering) but the per-file work — exemption classification —
/// fans out across the rayon pool.
pub fn parallel_catalog(fs: &VirtualFs, exemptions: &ExemptionList, shards: usize) -> ScanResult {
    let shards = shards.max(1);
    // xtask-allow: determinism -- scan timing for the Fig. 12 performance report
    let start = std::time::Instant::now();

    // Trie iteration is inherently sequential (parent links); collect the
    // flat listing first, then fan out the per-file classification.
    let files: Vec<(String, u64, crate::FileMeta)> = fs
        .iter()
        .map(|(path, id, meta)| (path, u64::from(id.0), *meta))
        .collect();

    let chunk = files.len().div_ceil(shards).max(1);
    let mut results: Vec<(usize, BTreeMap<UserId, Vec<FileRecord>>, ShardReport)> = files
        .par_chunks(chunk)
        .enumerate()
        .map(|(shard_idx, chunk_files)| {
            // xtask-allow: determinism -- per-shard timing for the performance report
            let shard_start = std::time::Instant::now();
            let mut per_user: BTreeMap<UserId, Vec<FileRecord>> = BTreeMap::new();
            let mut report = ShardReport {
                shard: shard_idx,
                ..Default::default()
            };
            for (path, id, meta) in chunk_files {
                let mut rec = FileRecord::new(FileId(*id), meta.size, meta.atime)
                    .with_ctime(meta.ctime)
                    .with_access_count(meta.access_count);
                if exemptions.is_exempt(path) {
                    rec.exempt = true;
                    report.exempt += 1;
                }
                report.files += 1;
                report.bytes += meta.size;
                per_user.entry(meta.owner).or_default().push(rec);
            }
            report.elapsed = shard_start.elapsed();
            (shard_idx, per_user, report)
        })
        .collect();

    // Merge shard maps in shard order so per-user file lists stay in
    // global path order (chunks are contiguous slices of a path-ordered
    // listing).
    results.sort_by_key(|(idx, _, _)| *idx);
    let mut merged: BTreeMap<UserId, Vec<FileRecord>> = BTreeMap::new();
    let mut reports = Vec::with_capacity(results.len());
    for (_, per_user, report) in results {
        for (user, mut files) in per_user {
            merged.entry(user).or_default().append(&mut files);
        }
        reports.push(report);
    }

    let catalog = Catalog::new(
        merged
            .into_iter()
            .map(|(user, files)| UserFiles::new(user, files))
            .collect(),
    );
    ScanResult {
        catalog,
        shards: reports,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use activedr_core::time::Timestamp;

    fn populated_fs(n_users: u32, files_per_user: u32) -> VirtualFs {
        let mut fs = VirtualFs::with_capacity(0);
        for u in 0..n_users {
            for f in 0..files_per_user {
                fs.create(
                    &format!("/scratch/u{u}/proj/file{f:03}.dat"),
                    UserId(u),
                    (u as u64 + 1) * 10 + f as u64,
                    Timestamp::from_days((u + f) as i64),
                )
                .unwrap();
            }
        }
        fs
    }

    #[test]
    fn parallel_scan_matches_sequential_catalog() {
        let fs = populated_fs(7, 13);
        let mut ex = ExemptionList::new();
        ex.reserve_dir("/scratch/u3");
        let sequential = fs.catalog(&ex);
        for shards in [1usize, 2, 4, 16, 100] {
            let result = parallel_catalog(&fs, &ex, shards);
            assert_eq!(result.catalog, sequential, "shards = {shards}");
            assert_eq!(result.total_files(), 7 * 13);
            assert_eq!(result.total_bytes(), sequential.total_bytes());
        }
    }

    #[test]
    fn shard_reports_cover_all_files() {
        let fs = populated_fs(5, 20);
        let result = parallel_catalog(&fs, &ExemptionList::new(), 4);
        assert_eq!(result.shards.len(), 4);
        assert_eq!(result.shards.iter().map(|s| s.files).sum::<u64>(), 100);
        assert_eq!(result.shards.iter().map(|s| s.exempt).sum::<u64>(), 0);
        // Shard ids are dense and ordered.
        for (i, s) in result.shards.iter().enumerate() {
            assert_eq!(s.shard, i);
        }
    }

    #[test]
    fn exempt_counting() {
        let fs = populated_fs(2, 5);
        let mut ex = ExemptionList::new();
        ex.reserve_dir("/scratch/u0");
        let result = parallel_catalog(&fs, &ex, 3);
        assert_eq!(result.shards.iter().map(|s| s.exempt).sum::<u64>(), 5);
        let u0 = result.catalog.get(UserId(0)).unwrap();
        assert!(u0.files.iter().all(|f| f.exempt));
    }

    #[test]
    fn empty_fs_scan() {
        let fs = VirtualFs::with_capacity(0);
        let result = parallel_catalog(&fs, &ExemptionList::new(), 8);
        assert!(result.catalog.users.is_empty());
        assert_eq!(result.total_files(), 0);
    }

    #[test]
    fn more_shards_than_files() {
        let fs = populated_fs(1, 3);
        let result = parallel_catalog(&fs, &ExemptionList::new(), 64);
        assert_eq!(result.total_files(), 3);
        assert_eq!(result.catalog.total_files(), 3);
    }
}
