//! Incrementally maintained retention catalog (Robinhood-style index).
//!
//! [`CatalogIndex`] is the consumer side of the [`crate::changelog`]
//! stream: it keeps per-user file listings — ordered exactly as a trie
//! walk would order them — plus per-user byte/atime aggregates, and folds
//! drained [`Delta`]s in O(changes). A retention trigger then materializes
//! the policy-facing [`Catalog`] from the index instead of re-walking the
//! namespace; users untouched since the previous trigger reuse their
//! cached listing verbatim, so a no-change trigger costs O(1).
//!
//! # Equivalence guarantee
//!
//! [`CatalogIndex::snapshot`] is *identical* to
//! [`crate::VirtualFs::catalog`] over the same file system state and
//! exemption list: the same `FileId` space (trie node ids), the same user
//! order (ascending [`UserId`]), the same per-user file order
//! (component-lexicographic path order, via [`PathKey`]), and the same
//! exemption flags. `tests/integration_catalog_mode.rs` pins this at every
//! trigger of full replays under all four policies.

use crate::changelog::Delta;
use crate::exemption::ExemptionList;
use crate::meta::FileMeta;
use crate::trie::{components, NodeId};
use crate::vfs::VirtualFs;
use activedr_core::files::{Catalog, FileId, FileRecord, UserFiles};
use activedr_core::time::Timestamp;
use activedr_core::user::UserId;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A canonical path that orders the way the trie iterates:
/// lexicographically by *component*, not by raw string. The two differ
/// when a component contains bytes below `/` (0x2F): as raw strings
/// `"/x/a.b" < "/x/a/b"`, but component order puts `a` before `a.b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathKey(Box<str>);

impl PathKey {
    /// Key for `path` (normalized: empty and `.` components dropped).
    pub fn new(path: &str) -> PathKey {
        PathKey(crate::changelog::canonical_path(path).into_boxed_str())
    }

    /// The canonical path string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Ord for PathKey {
    fn cmp(&self, other: &Self) -> Ordering {
        components(&self.0).cmp(components(&other.0))
    }
}

impl PartialOrd for PathKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One indexed file: everything a [`FileRecord`] needs, minus the owner
/// (implied by the owning [`UserShard`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexedFile {
    id: NodeId,
    size: u64,
    atime: Timestamp,
    ctime: Timestamp,
    access_count: u32,
    exempt: bool,
}

impl IndexedFile {
    fn record(&self) -> FileRecord {
        let mut rec = FileRecord::new(FileId(u64::from(self.id.0)), self.size, self.atime)
            .with_ctime(self.ctime)
            .with_access_count(self.access_count);
        rec.exempt = self.exempt;
        rec
    }
}

/// One user's slice of the index: path-ordered files plus O(1)-maintained
/// aggregates.
#[derive(Debug, Clone, Default)]
struct UserShard {
    files: BTreeMap<PathKey, IndexedFile>,
    /// Total bytes owned, maintained per delta.
    bytes: u64,
    /// Sum of atimes in seconds, maintained per delta — the basis of the
    /// mean-age aggregate (exact integer arithmetic; removal-safe, unlike
    /// a min/max which would need a rescan on delete).
    atime_secs_sum: i128,
}

/// Per-user aggregate view exposed by [`CatalogIndex::user_aggregates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserAggregates {
    /// The owning user.
    pub user: UserId,
    /// Files currently owned.
    pub files: usize,
    /// Bytes currently owned.
    pub bytes: u64,
    /// Sum of the files' atimes, in seconds since the epoch.
    pub atime_secs_sum: i128,
}

impl UserAggregates {
    /// Mean age of the user's files at `now`, in seconds; `None` for a
    /// user with no files.
    pub fn mean_age_secs(&self, now: Timestamp) -> Option<i128> {
        if self.files == 0 {
            return None;
        }
        let n = i128::from(activedr_core::convert::u64_from_usize(self.files));
        Some(i128::from(now.secs()) - self.atime_secs_sum / n)
    }
}

/// The incrementally maintained catalog: per-user listings + aggregates +
/// a cached [`Catalog`] that is patched, not rebuilt, at snapshot time.
#[derive(Debug, Clone, Default)]
pub struct CatalogIndex {
    users: BTreeMap<UserId, UserShard>,
    /// Reverse map from node id to its index slot, so `Touch`/`Remove`
    /// deltas (which carry only ids) resolve without a path.
    by_id: HashMap<u32, (UserId, PathKey)>,
    /// The materialized catalog, users sorted ascending; only entries for
    /// users in `dirty` are rebuilt at snapshot time.
    cached: Catalog,
    /// Users whose cached `UserFiles` is stale.
    dirty: BTreeSet<UserId>,
    files: usize,
    total_bytes: u64,
    deltas_applied: u64,
}

impl CatalogIndex {
    /// An empty index.
    pub fn new() -> Self {
        CatalogIndex::default()
    }

    /// Seed the index with one full walk of `fs` — the single initial scan
    /// Robinhood also cannot avoid. Every subsequent trigger is fed from
    /// the changelog alone.
    pub fn from_fs(fs: &VirtualFs, exemptions: &ExemptionList) -> Self {
        let mut index = CatalogIndex::new();
        for (path, id, meta) in fs.iter() {
            let key = PathKey::new(&path);
            let exempt = exemptions.is_exempt(key.as_str());
            index.upsert(key, id, meta, exempt);
        }
        index
    }

    /// Fold a drained delta batch into the index. `exemptions` must be the
    /// same list the full scan would use (the engine's is fixed per run).
    pub fn apply(&mut self, deltas: impl IntoIterator<Item = Delta>, exemptions: &ExemptionList) {
        for delta in deltas {
            self.deltas_applied += 1;
            match delta {
                Delta::Upsert { path, id, meta } => {
                    let key = PathKey::new(&path);
                    let exempt = exemptions.is_exempt(key.as_str());
                    self.upsert(key, id, &meta, exempt);
                }
                Delta::Touch {
                    id,
                    atime,
                    access_count,
                } => self.touch(id, atime, access_count),
                Delta::Remove { id } => self.remove(id),
            }
        }
    }

    fn upsert(&mut self, key: PathKey, id: NodeId, meta: &FileMeta, exempt: bool) {
        // The id may already be indexed (an overwrite at the same path
        // keeps its node id; a rename re-uses the id at a new path). Drop
        // the old slot first so aggregates stay exact.
        if let Some((old_user, old_key)) = self.by_id.get(&id.0) {
            if *old_user != meta.owner || *old_key != key {
                let (old_user, old_key) = (*old_user, old_key.clone());
                self.drop_slot(old_user, &old_key);
            }
        }
        let shard = self.users.entry(meta.owner).or_default();
        let indexed = IndexedFile {
            id,
            size: meta.size,
            atime: meta.atime,
            ctime: meta.ctime,
            access_count: meta.access_count,
            exempt,
        };
        if let Some(prev) = shard.files.insert(key.clone(), indexed) {
            // Same user+path: an in-place overwrite (or, defensively, a
            // stale record whose Remove was lost — evict its id mapping).
            shard.bytes -= prev.size;
            shard.atime_secs_sum -= i128::from(prev.atime.secs());
            self.total_bytes -= prev.size;
            self.files -= 1;
            if prev.id != id {
                self.by_id.remove(&prev.id.0);
            }
        }
        shard.bytes += meta.size;
        shard.atime_secs_sum += i128::from(meta.atime.secs());
        self.total_bytes += meta.size;
        self.files += 1;
        self.by_id.insert(id.0, (meta.owner, key));
        self.dirty.insert(meta.owner);
    }

    fn touch(&mut self, id: NodeId, atime: Timestamp, access_count: u32) {
        let Some((user, key)) = self.by_id.get(&id.0) else {
            return; // touch of an untracked file: nothing to update
        };
        let user = *user;
        if let Some(shard) = self.users.get_mut(&user) {
            if let Some(file) = shard.files.get_mut(key) {
                shard.atime_secs_sum += i128::from(atime.secs()) - i128::from(file.atime.secs());
                file.atime = atime;
                file.access_count = access_count;
                self.dirty.insert(user);
            }
        }
    }

    fn remove(&mut self, id: NodeId) {
        if let Some((user, key)) = self.by_id.remove(&id.0) {
            self.drop_slot(user, &key);
        }
    }

    /// Remove the record at `(user, key)` and fix aggregates. Does not
    /// touch `by_id` — callers own that side.
    fn drop_slot(&mut self, user: UserId, key: &PathKey) {
        if let Some(shard) = self.users.get_mut(&user) {
            if let Some(prev) = shard.files.remove(key) {
                shard.bytes -= prev.size;
                shard.atime_secs_sum -= i128::from(prev.atime.secs());
                self.total_bytes -= prev.size;
                self.files -= 1;
            }
            if shard.files.is_empty() {
                self.users.remove(&user);
            }
        }
        self.dirty.insert(user);
    }

    /// Materialize the catalog. Only users touched since the previous
    /// snapshot are re-listed; a no-change snapshot returns the cached
    /// catalog untouched, in O(1).
    pub fn snapshot(&mut self) -> &Catalog {
        let dirty = std::mem::take(&mut self.dirty);
        for user in dirty {
            match self.users.get(&user) {
                Some(shard) => {
                    let files: Vec<FileRecord> =
                        shard.files.values().map(IndexedFile::record).collect();
                    self.cached.upsert_user(UserFiles::new(user, files));
                }
                None => {
                    self.cached.remove_user(user);
                }
            }
        }
        &self.cached
    }

    /// Files currently indexed.
    pub fn file_count(&self) -> usize {
        self.files
    }

    /// Bytes currently indexed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Users currently holding at least one file.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Deltas folded in over the index's lifetime.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }

    /// Users whose cached listing is stale and will be re-materialized by
    /// the next [`CatalogIndex::snapshot`].
    pub fn dirty_user_count(&self) -> usize {
        self.dirty.len()
    }

    /// Aggregates for one user, if they own any files.
    pub fn user_aggregates(&self, user: UserId) -> Option<UserAggregates> {
        self.users.get(&user).map(|shard| UserAggregates {
            user,
            files: shard.files.len(),
            bytes: shard.bytes,
            atime_secs_sum: shard.atime_secs_sum,
        })
    }

    /// Aggregates for every user, ascending by user id.
    pub fn aggregates(&self) -> Vec<UserAggregates> {
        self.users
            .iter()
            .map(|(&user, shard)| UserAggregates {
                user,
                files: shard.files.len(),
                bytes: shard.bytes,
                atime_secs_sum: shard.atime_secs_sum,
            })
            .collect()
    }
}

/// Describe every way two catalogs differ, as human-readable lines
/// (empty when identical). Used by the engine's debug-mode catalog guard
/// to report incremental-vs-full-scan drift through the flight recorder
/// with enough detail to localize the broken delta path.
pub fn diff_catalogs(incremental: &Catalog, full_scan: &Catalog) -> Vec<String> {
    let mut out = Vec::new();
    let inc_users: BTreeMap<UserId, &UserFiles> =
        incremental.users.iter().map(|u| (u.user, u)).collect();
    let scan_users: BTreeMap<UserId, &UserFiles> =
        full_scan.users.iter().map(|u| (u.user, u)).collect();
    for (&user, _) in inc_users
        .iter()
        .filter(|(u, _)| !scan_users.contains_key(u))
    {
        out.push(format!(
            "user {}: present in index, absent in full scan",
            user.0
        ));
    }
    for (&user, &scanned) in &scan_users {
        let Some(indexed) = inc_users.get(&user) else {
            out.push(format!(
                "user {}: absent in index, present in full scan",
                user.0
            ));
            continue;
        };
        if indexed.files.len() != scanned.files.len() {
            out.push(format!(
                "user {}: {} file(s) in index, {} in full scan",
                user.0,
                indexed.files.len(),
                scanned.files.len()
            ));
        }
        for (i, s) in indexed.files.iter().zip(scanned.files.iter()) {
            if i != s {
                out.push(format!(
                    "user {} file {}: index {:?} != scan {:?}",
                    user.0, s.id.0, i, s
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use activedr_core::user::UserId;

    fn day(d: i64) -> Timestamp {
        Timestamp::from_days(d)
    }

    fn populated() -> (VirtualFs, ExemptionList) {
        let mut fs = VirtualFs::with_capacity(0);
        fs.create("/u2/x", UserId(2), 10, day(1)).unwrap();
        fs.create("/u1/keep", UserId(1), 20, day(2)).unwrap();
        fs.create("/u1/drop", UserId(1), 30, day(3)).unwrap();
        fs.create("/u1/deep/run/out.dat", UserId(1), 40, day(4))
            .unwrap();
        let mut ex = ExemptionList::new();
        ex.reserve_file("/u1/keep");
        (fs, ex)
    }

    #[test]
    fn path_key_orders_like_the_trie() {
        // Raw string order would put "/x/a.b" first ('.' < '/'); component
        // order puts the shorter component "a" first, like the trie.
        let mut keys = [
            PathKey::new("/x/a.b"),
            PathKey::new("/x/a/b"),
            PathKey::new("/x/a"),
        ];
        keys.sort();
        let sorted: Vec<&str> = keys.iter().map(PathKey::as_str).collect();
        assert_eq!(sorted, vec!["/x/a", "/x/a/b", "/x/a.b"]);
        // And normalization matches the trie's.
        assert_eq!(PathKey::new("//a/./b").as_str(), "/a/b");
    }

    #[test]
    fn seeded_index_matches_full_scan() {
        let (fs, ex) = populated();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        assert_eq!(index.snapshot(), &fs.catalog(&ex));
        assert_eq!(index.file_count(), fs.file_count());
        assert_eq!(index.total_bytes(), fs.used_bytes());
        assert_eq!(index.user_count(), 2);
    }

    #[test]
    fn deltas_keep_index_identical_to_rescans() {
        let (mut fs, ex) = populated();
        fs.enable_changelog();
        let mut index = CatalogIndex::from_fs(&fs, &ex);

        // Creates, overwrites, touches, removals — then compare.
        fs.create("/u3/new", UserId(3), 7, day(5)).unwrap();
        fs.create("/u1/drop", UserId(1), 99, day(6)).unwrap(); // overwrite
        fs.access("/u2/x", day(7));
        fs.remove("/u1/keep").unwrap();
        index.apply(fs.drain_changelog(), &ex);
        assert_eq!(index.snapshot(), &fs.catalog(&ex));
        assert_eq!(index.total_bytes(), fs.used_bytes());

        // Removing a user's last file drops the user entirely.
        fs.remove("/u2/x").unwrap();
        index.apply(fs.drain_changelog(), &ex);
        assert_eq!(index.snapshot(), &fs.catalog(&ex));
        assert!(index.user_aggregates(UserId(2)).is_none());

        // Subtree teardown and rename flow through as deltas too.
        fs.rename("/u3/new", "/u1/moved").unwrap();
        fs.remove_subtree("/u1/deep");
        index.apply(fs.drain_changelog(), &ex);
        assert_eq!(index.snapshot(), &fs.catalog(&ex));
    }

    #[test]
    fn no_change_snapshot_is_cached() {
        let (mut fs, ex) = populated();
        fs.enable_changelog();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        let first = index.snapshot().clone();
        // Nothing changed: the snapshot must be the cached value and the
        // dirty set empty (O(1) path).
        index.apply(fs.drain_changelog(), &ex);
        assert!(index.dirty.is_empty());
        assert_eq!(index.snapshot(), &first);
    }

    #[test]
    fn aggregates_track_bytes_and_mean_age() {
        let (fs, ex) = populated();
        let index = CatalogIndex::from_fs(&fs, &ex);
        let u1 = index.user_aggregates(UserId(1)).unwrap();
        assert_eq!(u1.files, 3);
        assert_eq!(u1.bytes, 90);
        let expect_sum =
            i128::from(day(2).secs()) + i128::from(day(3).secs()) + i128::from(day(4).secs());
        assert_eq!(u1.atime_secs_sum, expect_sum);
        let mean_age = u1.mean_age_secs(day(10)).unwrap();
        assert_eq!(mean_age, i128::from(day(10).secs()) - expect_sum / 3);
        assert!(index.user_aggregates(UserId(9)).is_none());
        let all = index.aggregates();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].user, UserId(1));
        assert_eq!(all[1].user, UserId(2));
        assert_eq!(
            all.iter().map(|a| a.bytes).sum::<u64>(),
            index.total_bytes()
        );
    }

    #[test]
    fn owner_change_on_overwrite_moves_the_record() {
        let mut fs = VirtualFs::with_capacity(0);
        fs.create("/shared/f", UserId(1), 10, day(1)).unwrap();
        fs.enable_changelog();
        let ex = ExemptionList::new();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        // Overwrite transfers ownership to user 2.
        fs.create("/shared/f", UserId(2), 25, day(2)).unwrap();
        index.apply(fs.drain_changelog(), &ex);
        assert_eq!(index.snapshot(), &fs.catalog(&ex));
        assert!(index.user_aggregates(UserId(1)).is_none());
        assert_eq!(index.user_aggregates(UserId(2)).unwrap().bytes, 25);
    }

    #[test]
    fn dirty_user_count_tracks_pending_rematerialization() {
        let (mut fs, ex) = populated();
        fs.enable_changelog();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        index.snapshot();
        assert_eq!(index.dirty_user_count(), 0);
        fs.access("/u2/x", day(9));
        index.apply(fs.drain_changelog(), &ex);
        assert_eq!(index.dirty_user_count(), 1);
        index.snapshot();
        assert_eq!(index.dirty_user_count(), 0);
    }

    #[test]
    fn diff_catalogs_is_empty_for_identical_states() {
        let (fs, ex) = populated();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        assert!(diff_catalogs(index.snapshot(), &fs.catalog(&ex)).is_empty());
    }

    #[test]
    fn diff_catalogs_localizes_injected_drift() {
        // Regression for the KNOWN_FAILURES changelog-drift watch item:
        // fabricate a lost-delta scenario (a Remove the changelog never
        // saw reaching the index as a spurious extra delta) and assert
        // the guard's differ pinpoints the divergence.
        let (mut fs, ex) = populated();
        fs.enable_changelog();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        let victim = fs
            .iter()
            .find(|(p, _, _)| p == "/u2/x")
            .map(|(_, id, _)| id);
        let victim = victim.expect("fixture file");
        index.apply([Delta::Remove { id: victim }], &ex);
        let diffs = diff_catalogs(index.snapshot(), &fs.catalog(&ex));
        assert!(!diffs.is_empty());
        assert!(
            diffs.iter().any(|d| d.contains("user 2")),
            "expected user 2 in {diffs:?}"
        );
        // And a size-drift divergence names the file.
        let (mut fs2, ex2) = populated();
        fs2.enable_changelog();
        let mut index2 = CatalogIndex::from_fs(&fs2, &ex2);
        let (id, meta) = fs2
            .iter()
            .find(|(p, _, _)| p == "/u1/drop")
            .map(|(_, id, m)| (id, *m))
            .expect("fixture file");
        let mut drifted = meta;
        drifted.size += 1;
        index2.apply(
            [Delta::Upsert {
                path: "/u1/drop".to_string(),
                id,
                meta: drifted,
            }],
            &ex2,
        );
        let diffs2 = diff_catalogs(index2.snapshot(), &fs2.catalog(&ex2));
        assert!(diffs2.iter().any(|d| d.contains("file")), "{diffs2:?}");
    }

    #[test]
    fn exemption_flags_follow_the_list() {
        let (fs, ex) = populated();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        let catalog = index.snapshot();
        let u1 = catalog.get(UserId(1)).unwrap();
        let keep = u1
            .files
            .iter()
            .zip(["/u1/deep/run/out.dat", "/u1/drop", "/u1/keep"])
            .find(|(_, p)| *p == "/u1/keep")
            .unwrap()
            .0;
        assert!(keep.exempt);
        assert_eq!(u1.files.iter().filter(|f| f.exempt).count(), 1);
    }
}
