//! Incrementally maintained retention catalog (Robinhood-style index).
//!
//! [`CatalogIndex`] is the consumer side of the [`crate::changelog`]
//! stream: it keeps per-user file listings — ordered exactly as a trie
//! walk would order them — plus per-user byte/atime aggregates, and folds
//! buffered [`Delta`] batches in O(changes). A retention trigger then
//! materializes the policy-facing [`Catalog`] from the index instead of
//! re-walking the namespace; users untouched since the previous trigger
//! reuse their cached listing verbatim, so a no-change trigger costs O(1).
//!
//! # Batched ingestion
//!
//! Deltas arrive through a [`DeltaBuffer`], which collapses a window of
//! changes to one net effect per node. [`CatalogIndex::flush`] applies a
//! drained window in two phases: first each net delta is *resolved*
//! against the pre-flush index into **positional slot events** — a dense
//! id→(user, slot) reverse map turns touches into O(1) in-place patches
//! and overwrites/removes into integer positions, so only genuinely new
//! paths pay a binary search; then the events are ordered by one integer
//! sort and each touched user's listing is rebuilt by a single
//! **sort-merge** pass of its old records against its event run — one
//! pass per user per flush instead of one tree insert per delta — with
//! the byte/atime aggregates recomputed once per shard from the merge
//! tallies and every reshaped shard's positions re-bound in a finalize
//! sweep. [`CatalogIndex::apply`] remains as the convenience wrapper that
//! buffers and flushes in one step.
//!
//! # Equivalence guarantee
//!
//! [`CatalogIndex::snapshot`] is *identical* to
//! [`crate::VirtualFs::catalog`] over the same file system state and
//! exemption list: the same `FileId` space (trie node ids), the same user
//! order (ascending [`UserId`]), the same per-user file order
//! (component-lexicographic path order, via [`PathKey`]), and the same
//! exemption flags. `tests/integration_catalog_mode.rs` pins this at every
//! trigger of full replays under all four policies, and the differential
//! oracle (`crates/oracle`) additionally pins buffered application to
//! per-delta application across randomized op tapes with explicit flush
//! boundaries.

use crate::changelog::Delta;
use crate::delta_buffer::DeltaBuffer;
use crate::exemption::ExemptionList;
use crate::meta::FileMeta;
use crate::trie::NodeId;
use crate::vfs::VirtualFs;
use activedr_core::convert;
use activedr_core::files::{Catalog, FileId, FileRecord, UserFiles};
use activedr_core::time::Timestamp;
use activedr_core::user::UserId;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A canonical path that orders the way the trie iterates:
/// lexicographically by *component*, not by raw string. The two differ
/// when a component contains bytes below `/` (0x2F): as raw strings
/// `"/x/a.b" < "/x/a/b"`, but component order puts `a` before `a.b`.
///
/// Backed by `Arc<str>`: cheaply cloneable and `Send + Sync`, so shard
/// listings can be snapshotted or handed across threads without copying
/// path bytes. The flush hot path itself never clones a key — each
/// inserted path's `String` moves straight into its slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathKey(Arc<str>);

impl PathKey {
    /// Key for `path` (normalized: empty and `.` components dropped).
    pub fn new(path: &str) -> PathKey {
        PathKey(crate::changelog::canonical_path(path).into())
    }

    /// Key for a path that is *already* canonical — what every changelog
    /// delta and trie walk emits — skipping re-normalization.
    pub fn from_canonical(path: String) -> PathKey {
        debug_assert_eq!(
            crate::changelog::canonical_path(&path),
            path,
            "PathKey::from_canonical requires a canonical path"
        );
        PathKey(path.into())
    }

    /// The canonical path string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Rank a path byte for comparison: the separator sorts below every
/// other byte, which makes plain byte order on canonical paths agree
/// with component-lexicographic order (the expensive per-component walk
/// the flush merge would otherwise pay on every comparison).
#[inline]
fn sep_low(b: u8) -> u16 {
    if b == b'/' {
        0
    } else {
        u16::from(b) + 1
    }
}

/// Component-lexicographic comparison of two canonical paths, as raw
/// bytes. Skips the common prefix eight bytes at a time (a word compare),
/// then ranks only the first differing pair — per-byte mapping is only
/// needed at the divergence point, since [`sep_low`] is a bijection and
/// so preserves byte equality.
fn cmp_canonical(a: &[u8], b: &[u8]) -> Ordering {
    let mut matched = 0;
    for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
        if ca != cb {
            break;
        }
        matched += 8;
    }
    for (&x, &y) in a.iter().zip(b.iter()).skip(matched) {
        let (x, y) = (sep_low(x), sep_low(y));
        if x != y {
            return x.cmp(&y);
        }
    }
    a.len().cmp(&b.len())
}

impl Ord for PathKey {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_canonical(self.0.as_bytes(), other.0.as_bytes())
    }
}

impl PartialOrd for PathKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One indexed file: everything a [`FileRecord`] needs, minus the owner
/// (implied by the owning [`UserShard`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexedFile {
    id: NodeId,
    size: u64,
    atime: Timestamp,
    ctime: Timestamp,
    access_count: u32,
    exempt: bool,
}

impl IndexedFile {
    fn record(&self) -> FileRecord {
        let mut rec = FileRecord::new(FileId(u64::from(self.id.0)), self.size, self.atime)
            .with_ctime(self.ctime)
            .with_access_count(self.access_count);
        rec.exempt = self.exempt;
        rec
    }
}

/// One user's slice of the index: a path-ordered record vector (merged
/// wholesale at flush time, binary-searched for in-place touches) plus
/// aggregates maintained per flush.
#[derive(Debug, Clone, Default)]
struct UserShard {
    files: Vec<(PathKey, IndexedFile)>,
    /// Total bytes owned, recomputed from merge tallies per flush.
    bytes: u64,
    /// Sum of atimes in seconds, maintained alongside — the basis of the
    /// mean-age aggregate (exact integer arithmetic; removal-safe, unlike
    /// a min/max which would need a rescan on delete).
    atime_secs_sum: i128,
}

/// Per-user aggregate view exposed by [`CatalogIndex::user_aggregates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserAggregates {
    /// The owning user.
    pub user: UserId,
    /// Files currently owned.
    pub files: usize,
    /// Bytes currently owned.
    pub bytes: u64,
    /// Sum of the files' atimes, in seconds since the epoch.
    pub atime_secs_sum: i128,
}

impl UserAggregates {
    /// Mean age of the user's files at `now`, in seconds; `None` for a
    /// user with no files.
    pub fn mean_age_secs(&self, now: Timestamp) -> Option<i128> {
        if self.files == 0 {
            return None;
        }
        let n = i128::from(activedr_core::convert::u64_from_usize(self.files));
        Some(i128::from(now.secs()) - self.atime_secs_sum / n)
    }
}

/// One resolution-phase event against a slot of an owner's pre-flush
/// shard. `Remove` and `Put` target an *existing* slot by position (the
/// record's path key is kept); `Insert` lands a new record ahead of a
/// position. Events are collected into a single flush-wide vector in
/// delta order and sorted by the packed (owner, position, at-slot) key —
/// an integer sort, since only same-position inserts ever compare paths.
#[derive(Debug)]
enum SlotEv {
    Remove,
    Put(IndexedFile),
    Insert(PathKey, IndexedFile),
}

/// Sort key for one slot event: owner in the high 32 bits, then the
/// target slot position, then an at-slot flag so insert-before events
/// order ahead of same-slot replacements.
#[inline]
fn pack(user: UserId, pos: usize, at_slot: bool) -> u64 {
    (u64::from(user.0) << 32) | (convert::u64_from_usize(pos) << 1) | u64::from(at_slot)
}

/// Resolve an upsert that lands on a path not currently bound to its id:
/// binary-search the owner's pre-flush shard, emitting a same-slot `Put`
/// when the path already exists there (a remove-and-recreate window, or
/// the defensive double-bind case) and an `Insert` otherwise.
fn insert_event(
    users: &BTreeMap<UserId, UserShard>,
    events: &mut Vec<(u64, u64, SlotEv)>,
    user: UserId,
    path: String,
    file: IndexedFile,
) {
    let found = match users.get(&user) {
        Some(shard) => shard
            .files
            .binary_search_by(|(k, _)| cmp_canonical(k.as_str().as_bytes(), path.as_bytes())),
        None => Err(0),
    };
    let seq = convert::u64_from_usize(events.len());
    match found {
        Ok(pos) => events.push((pack(user, pos, true), seq, SlotEv::Put(file))),
        Err(pos) => events.push((
            pack(user, pos, false),
            seq,
            SlotEv::Insert(PathKey::from_canonical(path), file),
        )),
    }
}

/// Append an inserted record to a user's merged listing. The defensive
/// same-key collision (two inserts on one path inside a window — the
/// producer's id-binding invariant makes it unreachable) resolves last
/// writer wins, exactly as per-delta application would.
fn push_insert(
    merged: &mut Vec<(PathKey, IndexedFile)>,
    tally: &mut MergeTally,
    unmapped: &mut Vec<u32>,
    key: PathKey,
    file: IndexedFile,
) {
    if let Some((last_key, last_file)) = merged.last_mut() {
        if *last_key == key {
            if last_file.id != file.id {
                unmapped.push(last_file.id.0);
            }
            tally.drop_old(last_file);
            tally.add(&file);
            *last_file = file;
            return;
        }
    }
    tally.add(&file);
    merged.push((key, file));
}

/// Running byte/atime/file-count deltas of one user's merge, applied to
/// the shard and index totals once per flush instead of once per delta.
#[derive(Debug, Default)]
struct MergeTally {
    bytes_added: u64,
    bytes_removed: u64,
    atime_added: i128,
    atime_removed: i128,
    files_added: usize,
    files_removed: usize,
}

impl MergeTally {
    fn add(&mut self, file: &IndexedFile) {
        self.bytes_added += file.size;
        self.atime_added += i128::from(file.atime.secs());
        self.files_added += 1;
    }

    fn drop_old(&mut self, file: &IndexedFile) {
        self.bytes_removed += file.size;
        self.atime_removed += i128::from(file.atime.secs());
        self.files_removed += 1;
    }
}

/// Bind `id`'s reverse-map slot, growing the dense vector on demand.
fn id_slot_set(by_id: &mut Vec<Option<(UserId, u32)>>, id: u32, slot: (UserId, u32)) {
    let i = convert::usize_from_u32(id);
    if i >= by_id.len() {
        by_id.resize(i + 1, None);
    }
    if let Some(entry) = by_id.get_mut(i) {
        *entry = Some(slot);
    }
}

/// The incrementally maintained catalog: per-user listings + aggregates +
/// a cached [`Catalog`] that is patched, not rebuilt, at snapshot time.
#[derive(Debug, Clone, Default)]
pub struct CatalogIndex {
    users: BTreeMap<UserId, UserShard>,
    /// Reverse map from node id to (owner, slot position in the owner's
    /// shard), so `Touch`/`Remove` deltas (which carry only ids) resolve
    /// in O(1) without a path. Node ids are trie slab indices, so a dense
    /// vector beats hashing on the flush hot path; vacant slots are
    /// `None`. Every flush that reshapes a shard rebinds the positions of
    /// all its surviving records.
    by_id: Vec<Option<(UserId, u32)>>,
    /// The materialized catalog, users sorted ascending; only entries for
    /// users in `dirty` are rebuilt at snapshot time.
    cached: Catalog,
    /// Users whose cached `UserFiles` is stale.
    dirty: BTreeSet<UserId>,
    files: usize,
    total_bytes: u64,
    deltas_applied: u64,
}

impl CatalogIndex {
    /// An empty index.
    pub fn new() -> Self {
        CatalogIndex::default()
    }

    /// Seed the index with one full walk of `fs` — the single initial scan
    /// Robinhood also cannot avoid. Every subsequent trigger is fed from
    /// the changelog alone.
    pub fn from_fs(fs: &VirtualFs, exemptions: &ExemptionList) -> Self {
        let mut index = CatalogIndex::new();
        let mut buffer = DeltaBuffer::unbounded();
        buffer.absorb(fs.iter().map(|(path, id, meta)| Delta::Upsert {
            path,
            id,
            meta: *meta,
        }));
        index.flush(&mut buffer, exemptions);
        // The seeding walk is not part of the changelog stream.
        index.deltas_applied = 0;
        index
    }

    /// Fold a delta batch into the index in one buffered flush.
    /// `exemptions` must be the same list the full scan would use (the
    /// engine's is fixed per run).
    pub fn apply(&mut self, deltas: impl IntoIterator<Item = Delta>, exemptions: &ExemptionList) {
        let mut buffer = DeltaBuffer::unbounded();
        buffer.absorb(deltas);
        self.flush(&mut buffer, exemptions);
    }

    /// Drain `buffer` and fold its net deltas into the index: resolve
    /// each delta against the pre-flush state into per-user slot
    /// operations, then rebuild each touched user's listing with one
    /// sort-merge pass (see the module docs).
    pub fn flush(&mut self, buffer: &mut DeltaBuffer, exemptions: &ExemptionList) {
        self.deltas_applied += buffer.raw_pending();
        if buffer.is_empty() {
            return;
        }

        // Phase 1 — resolution. `by_id` entries consumed here are
        // re-established for every surviving record in the finalize step,
        // so each net delta resolves against the pre-flush state exactly
        // once (the buffer holds at most one delta per id).
        let mut events: Vec<(u64, u64, SlotEv)> = Vec::with_capacity(buffer.len());
        let mut touched_users: Vec<UserId> = Vec::new();
        let mut unmapped: Vec<u32> = Vec::new();
        for delta in buffer.drain() {
            match delta {
                Delta::Upsert { path, id, meta } => {
                    let exempt = exemptions.is_exempt(&path);
                    let file = IndexedFile {
                        id,
                        size: meta.size,
                        atime: meta.atime,
                        ctime: meta.ctime,
                        access_count: meta.access_count,
                        exempt,
                    };
                    // The id may already be indexed (an overwrite at the
                    // same path keeps its node id; a rename re-uses the id
                    // at a new path): same slot is a positional replace,
                    // anything else kills the old slot and re-resolves.
                    let old = self
                        .by_id
                        .get_mut(convert::usize_from_u32(id.0))
                        .and_then(Option::take);
                    if let Some((old_user, old_pos)) = old {
                        let same_slot = old_user == meta.owner
                            && self
                                .users
                                .get(&old_user)
                                .and_then(|s| s.files.get(convert::usize_from_u32(old_pos)))
                                .is_some_and(|(k, _)| k.as_str() == path);
                        let pos = convert::usize_from_u32(old_pos);
                        if same_slot {
                            let seq = convert::u64_from_usize(events.len());
                            events.push((pack(old_user, pos, true), seq, SlotEv::Put(file)));
                            continue;
                        }
                        let seq = convert::u64_from_usize(events.len());
                        events.push((pack(old_user, pos, true), seq, SlotEv::Remove));
                    }
                    insert_event(&self.users, &mut events, meta.owner, path, file);
                }
                Delta::Touch {
                    id,
                    atime,
                    access_count,
                } => self.touch_in_place(id, atime, access_count, &mut touched_users),
                Delta::Remove { id } => {
                    let old = self
                        .by_id
                        .get_mut(convert::usize_from_u32(id.0))
                        .and_then(Option::take);
                    if let Some((user, pos)) = old {
                        let seq = convert::u64_from_usize(events.len());
                        events.push((
                            pack(user, convert::usize_from_u32(pos), true),
                            seq,
                            SlotEv::Remove,
                        ));
                    }
                }
            }
        }
        self.dirty.extend(touched_users);
        // Order events by (owner, position, at-slot): an integer sort —
        // paths only compare between same-position inserts, with the
        // arrival sequence as the final tiebreak so the defensive
        // same-key fold stays deterministic.
        events.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| match (&a.2, &b.2) {
                    (SlotEv::Insert(ka, _), SlotEv::Insert(kb, _)) => ka.cmp(kb),
                    _ => Ordering::Equal,
                })
                .then(a.1.cmp(&b.1))
        });

        // Phase 2 — one merge pass per touched user: walk the old
        // records by position, splicing this user's run of slot events in
        // as it goes. Positions refer to the pre-flush shard, which phase
        // 1 never reshapes (touches only patch records in place).
        let mut rebound: Vec<UserId> = Vec::new();
        let mut events = events.into_iter().peekable();
        while let Some(user_bits) = events.peek().map(|e| e.0 >> 32) {
            let user = UserId(convert::u32_from_u64(user_bits));
            self.dirty.insert(user);
            rebound.push(user);
            let shard = self.users.entry(user).or_default();
            let prior = std::mem::take(&mut shard.files);
            let mut merged: Vec<(PathKey, IndexedFile)> = Vec::with_capacity(prior.len() + 8);
            let mut tally = MergeTally::default();
            for (i, (old_key, old_file)) in prior.into_iter().enumerate() {
                let before = pack(user, i, false);
                let at = pack(user, i, true);
                // New records landing ahead of this slot.
                while events.peek().is_some_and(|e| e.0 == before) {
                    if let Some((_, _, SlotEv::Insert(key, file))) = events.next() {
                        push_insert(&mut merged, &mut tally, &mut unmapped, key, file);
                    }
                }
                // At most a remove plus a put target one slot (the put
                // arrives via the remove-and-recreate or defensive
                // double-bind resolution); either way the old record
                // retires, and a put re-lands on the old key.
                if events.peek().is_some_and(|e| e.0 == at) {
                    let mut put: Option<IndexedFile> = None;
                    while events.peek().is_some_and(|e| e.0 == at) {
                        if let Some((_, _, SlotEv::Put(file))) = events.next() {
                            put = Some(file);
                        }
                    }
                    tally.drop_old(&old_file);
                    if let Some(new) = put {
                        if new.id != old_file.id {
                            // The displaced record's id loses its binding
                            // — unless it relocated in this window, in
                            // which case the rebind pass below re-binds it
                            // after the unmapping sweep.
                            unmapped.push(old_file.id.0);
                        }
                        tally.add(&new);
                        merged.push((old_key, new));
                    }
                } else {
                    merged.push((old_key, old_file));
                }
            }
            // Records past the last old slot are pure insertions.
            while events.peek().is_some_and(|e| (e.0 >> 32) == user_bits) {
                if let Some((_, _, SlotEv::Insert(key, file))) = events.next() {
                    push_insert(&mut merged, &mut tally, &mut unmapped, key, file);
                }
            }
            let empty = merged.is_empty();
            shard.bytes -= tally.bytes_removed;
            shard.bytes += tally.bytes_added;
            shard.atime_secs_sum += tally.atime_added - tally.atime_removed;
            shard.files = merged;
            self.total_bytes -= tally.bytes_removed;
            self.total_bytes += tally.bytes_added;
            self.files -= tally.files_removed;
            self.files += tally.files_added;
            if empty {
                self.users.remove(&user);
            }
        }

        // Finalize the reverse map: dead ids first, then every surviving
        // record of every reshaped shard gets its (possibly shifted)
        // position re-bound — in that order, so an id whose old slot was
        // clobbered in the same window keeps its new binding.
        for id in unmapped {
            if let Some(slot) = self.by_id.get_mut(convert::usize_from_u32(id)) {
                *slot = None;
            }
        }
        for user in rebound {
            if let Some(shard) = self.users.get(&user) {
                for (p, (_, file)) in shard.files.iter().enumerate() {
                    let pos = convert::u32_from_u64(convert::u64_from_usize(p));
                    id_slot_set(&mut self.by_id, file.id.0, (user, pos));
                }
            }
        }
    }

    /// Apply a `Touch` directly to the indexed record. Touches never move
    /// a record between slots, so they bypass the batch merge entirely —
    /// the reverse map points straight at the slot, no search at all.
    fn touch_in_place(
        &mut self,
        id: NodeId,
        atime: Timestamp,
        access_count: u32,
        touched: &mut Vec<UserId>,
    ) {
        let Some(&(user, pos)) = self
            .by_id
            .get(convert::usize_from_u32(id.0))
            .and_then(Option::as_ref)
        else {
            return; // touch of an untracked file: nothing to update
        };
        if let Some(shard) = self.users.get_mut(&user) {
            if let Some((_, file)) = shard.files.get_mut(convert::usize_from_u32(pos)) {
                shard.atime_secs_sum += i128::from(atime.secs()) - i128::from(file.atime.secs());
                file.atime = atime;
                file.access_count = access_count;
                touched.push(user);
            }
        }
    }

    /// Materialize the catalog. Only users touched since the previous
    /// snapshot are re-listed — collected into one batch and merged into
    /// the cached catalog in a single pass; a no-change snapshot returns
    /// the cached catalog untouched, in O(1).
    pub fn snapshot(&mut self) -> &Catalog {
        if self.dirty.is_empty() {
            return &self.cached;
        }
        let dirty = std::mem::take(&mut self.dirty);
        let mut upserts: Vec<UserFiles> = Vec::with_capacity(dirty.len());
        let mut removals: Vec<UserId> = Vec::new();
        for user in dirty {
            match self.users.get(&user) {
                Some(shard) => {
                    let files: Vec<FileRecord> =
                        shard.files.iter().map(|(_, f)| f.record()).collect();
                    upserts.push(UserFiles::new(user, files));
                }
                None => removals.push(user),
            }
        }
        // Both vectors are ascending by user id (`dirty` is an ordered
        // set), as `merge_users` requires.
        self.cached.merge_users(upserts, &removals);
        &self.cached
    }

    /// Files currently indexed.
    pub fn file_count(&self) -> usize {
        self.files
    }

    /// Bytes currently indexed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Users currently holding at least one file.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Raw (pre-coalescing) deltas folded in over the index's lifetime.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }

    /// Users whose cached listing is stale and will be re-materialized by
    /// the next [`CatalogIndex::snapshot`].
    pub fn dirty_user_count(&self) -> usize {
        self.dirty.len()
    }

    /// Aggregates for one user, if they own any files.
    pub fn user_aggregates(&self, user: UserId) -> Option<UserAggregates> {
        self.users.get(&user).map(|shard| UserAggregates {
            user,
            files: shard.files.len(),
            bytes: shard.bytes,
            atime_secs_sum: shard.atime_secs_sum,
        })
    }

    /// Aggregates for every user, ascending by user id.
    pub fn aggregates(&self) -> Vec<UserAggregates> {
        self.users
            .iter()
            .map(|(&user, shard)| UserAggregates {
                user,
                files: shard.files.len(),
                bytes: shard.bytes,
                atime_secs_sum: shard.atime_secs_sum,
            })
            .collect()
    }

    /// Export every indexed record as an [`Delta::Upsert`], ascending by
    /// (user, path) — the checkpoint writer's view ([`crate::storage`]).
    /// Feeding these back through [`CatalogIndex::flush`] with the same
    /// exemption list reconstructs an index with identical contents and
    /// aggregates. Stripe counts are not retained by the index, so the
    /// exported metadata normalizes them to 1; no index observable reads
    /// them.
    pub fn export_deltas(&self) -> impl Iterator<Item = Delta> + '_ {
        self.users.iter().flat_map(|(&user, shard)| {
            shard.files.iter().map(move |(key, f)| Delta::Upsert {
                path: key.as_str().to_string(),
                id: f.id,
                meta: FileMeta {
                    owner: user,
                    size: f.size,
                    atime: f.atime,
                    ctime: f.ctime,
                    stripes: 1,
                    access_count: f.access_count,
                },
            })
        })
    }
}

/// Should an incremental trigger fold `net_deltas` pending net deltas
/// into an index of `indexed_files` records, or is a plain namespace
/// walk cheaper?
///
/// A flush costs O(net) resolution + sort + merge at roughly 4× the
/// per-record cost of the lean trie walk, so the crossover sits near
/// net/files ≈ 25 % — between the measured 15 %-churn (≈1.5×) and
/// 35 %-churn (≈0.8×) sweep points in `docs/results/BENCH_catalog.json`.
/// Below the threshold the engine flushes; above it the trigger falls
/// back to a full scan and leaves the index and buffer intact (the
/// buffer keeps coalescing, so `index ⊕ buffer = truth` still holds and
/// a later quiet window flushes the backlog at batch cost).
#[must_use]
pub fn flush_beats_scan(net_deltas: usize, indexed_files: usize) -> bool {
    net_deltas.saturating_mul(4) <= indexed_files.max(1)
}

/// Describe every way two catalogs differ, as human-readable lines
/// (empty when identical). Used by the engine's debug-mode catalog guard
/// to report incremental-vs-full-scan drift through the flight recorder
/// with enough detail to localize the broken delta path.
pub fn diff_catalogs(incremental: &Catalog, full_scan: &Catalog) -> Vec<String> {
    let mut out = Vec::new();
    let inc_users: BTreeMap<UserId, &UserFiles> =
        incremental.users.iter().map(|u| (u.user, u)).collect();
    let scan_users: BTreeMap<UserId, &UserFiles> =
        full_scan.users.iter().map(|u| (u.user, u)).collect();
    for (&user, _) in inc_users
        .iter()
        .filter(|(u, _)| !scan_users.contains_key(u))
    {
        out.push(format!(
            "user {}: present in index, absent in full scan",
            user.0
        ));
    }
    for (&user, &scanned) in &scan_users {
        let Some(indexed) = inc_users.get(&user) else {
            out.push(format!(
                "user {}: absent in index, present in full scan",
                user.0
            ));
            continue;
        };
        if indexed.files.len() != scanned.files.len() {
            out.push(format!(
                "user {}: {} file(s) in index, {} in full scan",
                user.0,
                indexed.files.len(),
                scanned.files.len()
            ));
        }
        for (i, s) in indexed.files.iter().zip(scanned.files.iter()) {
            if i != s {
                out.push(format!(
                    "user {} file {}: index {:?} != scan {:?}",
                    user.0, s.id.0, i, s
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use activedr_core::user::UserId;

    fn day(d: i64) -> Timestamp {
        Timestamp::from_days(d)
    }

    #[test]
    fn flush_beats_scan_crossover() {
        // Crossover at net/files = 25%: flush at or below, scan above.
        assert!(flush_beats_scan(0, 0));
        assert!(flush_beats_scan(0, 1000));
        assert!(flush_beats_scan(250, 1000));
        assert!(!flush_beats_scan(251, 1000));
        assert!(!flush_beats_scan(1000, 1000));
        // Degenerate empty index: one pending delta means a scan (the
        // walk of nothing is free), but zero pending still flushes.
        assert!(!flush_beats_scan(1, 0));
        // No overflow at the extremes.
        assert!(!flush_beats_scan(usize::MAX, usize::MAX - 1));
    }

    fn populated() -> (VirtualFs, ExemptionList) {
        let mut fs = VirtualFs::with_capacity(0);
        fs.create("/u2/x", UserId(2), 10, day(1)).unwrap();
        fs.create("/u1/keep", UserId(1), 20, day(2)).unwrap();
        fs.create("/u1/drop", UserId(1), 30, day(3)).unwrap();
        fs.create("/u1/deep/run/out.dat", UserId(1), 40, day(4))
            .unwrap();
        let mut ex = ExemptionList::new();
        ex.reserve_file("/u1/keep");
        (fs, ex)
    }

    #[test]
    fn path_key_orders_like_the_trie() {
        // Raw string order would put "/x/a.b" first ('.' < '/'); component
        // order puts the shorter component "a" first, like the trie.
        let mut keys = [
            PathKey::new("/x/a.b"),
            PathKey::new("/x/a/b"),
            PathKey::new("/x/a"),
        ];
        keys.sort();
        let sorted: Vec<&str> = keys.iter().map(PathKey::as_str).collect();
        assert_eq!(sorted, vec!["/x/a", "/x/a/b", "/x/a.b"]);
        // And normalization matches the trie's.
        assert_eq!(PathKey::new("//a/./b").as_str(), "/a/b");
        // The ownership-taking constructor agrees with the normalizing one
        // on already-canonical input.
        assert_eq!(
            PathKey::from_canonical("/a/b".to_string()),
            PathKey::new("/a/b")
        );
    }

    #[test]
    fn seeded_index_matches_full_scan() {
        let (fs, ex) = populated();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        assert_eq!(index.snapshot(), &fs.catalog(&ex));
        assert_eq!(index.file_count(), fs.file_count());
        assert_eq!(index.total_bytes(), fs.used_bytes());
        assert_eq!(index.user_count(), 2);
        assert_eq!(index.deltas_applied(), 0);
    }

    #[test]
    fn deltas_keep_index_identical_to_rescans() {
        let (mut fs, ex) = populated();
        fs.enable_changelog();
        let mut index = CatalogIndex::from_fs(&fs, &ex);

        // Creates, overwrites, touches, removals — then compare.
        fs.create("/u3/new", UserId(3), 7, day(5)).unwrap();
        fs.create("/u1/drop", UserId(1), 99, day(6)).unwrap(); // overwrite
        fs.access("/u2/x", day(7));
        fs.remove("/u1/keep").unwrap();
        index.apply(fs.drain_changelog(), &ex);
        assert_eq!(index.snapshot(), &fs.catalog(&ex));
        assert_eq!(index.total_bytes(), fs.used_bytes());

        // Removing a user's last file drops the user entirely.
        fs.remove("/u2/x").unwrap();
        index.apply(fs.drain_changelog(), &ex);
        assert_eq!(index.snapshot(), &fs.catalog(&ex));
        assert!(index.user_aggregates(UserId(2)).is_none());

        // Subtree teardown and rename flow through as deltas too.
        fs.rename("/u3/new", "/u1/moved").unwrap();
        fs.remove_subtree("/u1/deep");
        index.apply(fs.drain_changelog(), &ex);
        assert_eq!(index.snapshot(), &fs.catalog(&ex));
    }

    #[test]
    fn buffered_flush_matches_per_delta_application() {
        // The batched sort-merge path and one-delta-at-a-time application
        // must land on identical indexes — including a create/remove pair
        // that coalesces to a net no-op and a rename that relocates an id.
        let (mut fs, ex) = populated();
        fs.enable_changelog();
        let mut per_delta = CatalogIndex::from_fs(&fs, &ex);
        let mut batched = CatalogIndex::from_fs(&fs, &ex);

        fs.create("/u3/tmp", UserId(3), 5, day(5)).unwrap();
        fs.remove("/u3/tmp").unwrap();
        fs.create("/u1/drop", UserId(1), 99, day(6)).unwrap();
        fs.access("/u1/drop", day(7));
        fs.rename("/u1/drop", "/u2/taken").unwrap();
        let deltas = fs.drain_changelog();

        for delta in deltas.clone() {
            per_delta.apply([delta], &ex);
        }
        let mut buffer = DeltaBuffer::unbounded();
        buffer.absorb(deltas);
        batched.flush(&mut buffer, &ex);

        assert_eq!(batched.snapshot(), per_delta.snapshot());
        assert_eq!(batched.snapshot(), &fs.catalog(&ex));
        assert_eq!(batched.total_bytes(), per_delta.total_bytes());
        assert_eq!(batched.file_count(), per_delta.file_count());
        // Raw delta accounting survives coalescing.
        assert_eq!(batched.deltas_applied(), per_delta.deltas_applied());
    }

    #[test]
    fn no_change_snapshot_is_cached() {
        let (mut fs, ex) = populated();
        fs.enable_changelog();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        let first = index.snapshot().clone();
        // Nothing changed: the snapshot must be the cached value and the
        // dirty set empty (O(1) path).
        index.apply(fs.drain_changelog(), &ex);
        assert!(index.dirty.is_empty());
        assert_eq!(index.snapshot(), &first);
    }

    #[test]
    fn aggregates_track_bytes_and_mean_age() {
        let (fs, ex) = populated();
        let index = CatalogIndex::from_fs(&fs, &ex);
        let u1 = index.user_aggregates(UserId(1)).unwrap();
        assert_eq!(u1.files, 3);
        assert_eq!(u1.bytes, 90);
        let expect_sum =
            i128::from(day(2).secs()) + i128::from(day(3).secs()) + i128::from(day(4).secs());
        assert_eq!(u1.atime_secs_sum, expect_sum);
        let mean_age = u1.mean_age_secs(day(10)).unwrap();
        assert_eq!(mean_age, i128::from(day(10).secs()) - expect_sum / 3);
        assert!(index.user_aggregates(UserId(9)).is_none());
        let all = index.aggregates();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].user, UserId(1));
        assert_eq!(all[1].user, UserId(2));
        assert_eq!(
            all.iter().map(|a| a.bytes).sum::<u64>(),
            index.total_bytes()
        );
    }

    #[test]
    fn owner_change_on_overwrite_moves_the_record() {
        let mut fs = VirtualFs::with_capacity(0);
        fs.create("/shared/f", UserId(1), 10, day(1)).unwrap();
        fs.enable_changelog();
        let ex = ExemptionList::new();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        // Overwrite transfers ownership to user 2.
        fs.create("/shared/f", UserId(2), 25, day(2)).unwrap();
        index.apply(fs.drain_changelog(), &ex);
        assert_eq!(index.snapshot(), &fs.catalog(&ex));
        assert!(index.user_aggregates(UserId(1)).is_none());
        assert_eq!(index.user_aggregates(UserId(2)).unwrap().bytes, 25);
    }

    #[test]
    fn dirty_user_count_tracks_pending_rematerialization() {
        let (mut fs, ex) = populated();
        fs.enable_changelog();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        index.snapshot();
        assert_eq!(index.dirty_user_count(), 0);
        fs.access("/u2/x", day(9));
        index.apply(fs.drain_changelog(), &ex);
        assert_eq!(index.dirty_user_count(), 1);
        index.snapshot();
        assert_eq!(index.dirty_user_count(), 0);
    }

    #[test]
    fn diff_catalogs_is_empty_for_identical_states() {
        let (fs, ex) = populated();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        assert!(diff_catalogs(index.snapshot(), &fs.catalog(&ex)).is_empty());
    }

    #[test]
    fn diff_catalogs_localizes_injected_drift() {
        // Regression for the KNOWN_FAILURES changelog-drift watch item:
        // fabricate a lost-delta scenario (a Remove the changelog never
        // saw reaching the index as a spurious extra delta) and assert
        // the guard's differ pinpoints the divergence.
        let (mut fs, ex) = populated();
        fs.enable_changelog();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        let victim = fs
            .iter()
            .find(|(p, _, _)| p == "/u2/x")
            .map(|(_, id, _)| id);
        let victim = victim.expect("fixture file");
        index.apply([Delta::Remove { id: victim }], &ex);
        let diffs = diff_catalogs(index.snapshot(), &fs.catalog(&ex));
        assert!(!diffs.is_empty());
        assert!(
            diffs.iter().any(|d| d.contains("user 2")),
            "expected user 2 in {diffs:?}"
        );
        // And a size-drift divergence names the file.
        let (mut fs2, ex2) = populated();
        fs2.enable_changelog();
        let mut index2 = CatalogIndex::from_fs(&fs2, &ex2);
        let (id, meta) = fs2
            .iter()
            .find(|(p, _, _)| p == "/u1/drop")
            .map(|(_, id, m)| (id, *m))
            .expect("fixture file");
        let mut drifted = meta;
        drifted.size += 1;
        index2.apply(
            [Delta::Upsert {
                path: "/u1/drop".to_string(),
                id,
                meta: drifted,
            }],
            &ex2,
        );
        let diffs2 = diff_catalogs(index2.snapshot(), &fs2.catalog(&ex2));
        assert!(diffs2.iter().any(|d| d.contains("file")), "{diffs2:?}");
    }

    #[test]
    fn exemption_flags_follow_the_list() {
        let (fs, ex) = populated();
        let mut index = CatalogIndex::from_fs(&fs, &ex);
        let catalog = index.snapshot();
        let u1 = catalog.get(UserId(1)).unwrap();
        let keep = u1
            .files
            .iter()
            .zip(["/u1/deep/run/out.dat", "/u1/drop", "/u1/keep"])
            .find(|(_, p)| *p == "/u1/keep")
            .unwrap()
            .0;
        assert!(keep.exempt);
        assert_eq!(u1.files.iter().filter(|f| f.exempt).count(), 1);
    }
}
