//! # activedr-fs — virtual parallel file system substrate
//!
//! The storage substrate that the ActiveDR emulation runs against,
//! reproducing the pieces the paper builds from the Spider II metadata
//! snapshots:
//!
//! * [`trie`] — a compact path prefix tree (path-compressed radix trie over
//!   `/`-components) serving as the virtual file system index;
//! * [`meta`] — per-file metadata (owner, size, atime, stripe count);
//! * [`striping`] — the OLCF best-practice striping model used to
//!   synthesize file sizes from stripe counts;
//! * [`vfs`] — the file-system facade: create/access/remove with capacity
//!   accounting, plus the catalog-scan bridge to the `activedr-core`
//!   policy layer;
//! * [`exemption`] — the purge-exemption (reservation) list;
//! * [`changelog`] — the per-mutation delta stream behind the incremental
//!   catalog (Robinhood-style changelog);
//! * [`delta_buffer`] — the bounded, coalescing staging buffer that
//!   collapses a window of deltas to per-node net effects before they
//!   reach the index;
//! * [`index`] — the changelog-fed [`CatalogIndex`]: per-user listings and
//!   byte/age aggregates maintained in O(changes) via per-user sort-merge
//!   batch application, snapshot into a policy catalog without re-walking
//!   the trie;
//! * [`snapshot`] — weekly metadata snapshot capture/restore with a JSONL
//!   wire format;
//! * [`scan`] — rayon-parallel catalog scans with per-shard counters (the
//!   single-node analog of the paper's 20-rank MPI scan);
//! * [`storage`] — the opt-in durability layer behind the incremental
//!   catalog: checksummed write-ahead log of delta batches, periodic
//!   checkpoints of the index + staging buffer, and crash recovery
//!   (checkpoint + WAL-tail replay) with injected-fault crash testing.

#![forbid(unsafe_code)]

pub mod changelog;
pub mod delta_buffer;
pub mod exemption;
pub mod index;
pub mod meta;
pub mod scan;
pub mod snapshot;
pub mod storage;
pub mod striping;
pub mod trie;
pub mod vfs;

pub use changelog::{Changelog, Delta};
pub use delta_buffer::DeltaBuffer;
pub use exemption::ExemptionList;
pub use index::{diff_catalogs, flush_beats_scan, CatalogIndex, PathKey, UserAggregates};
pub use meta::FileMeta;
pub use scan::{parallel_catalog, ScanResult, ShardReport};
pub use snapshot::{Snapshot, SnapshotDiff, SnapshotEntry, SnapshotError};
pub use storage::{
    CrashFs, DurabilityConfig, DurableCatalog, FsyncPolicy, InjectedCrash, OpenedCatalog,
    RecoveryStats, StorageError,
};
pub use striping::{recommended_stripes, size_band, SizeSynthesizer, SynthesisParams};
pub use trie::{DirEntry, InsertError, Inserted, NodeId, PathTrie};
pub use vfs::{Access, FsOpCounts, VirtualFs};
