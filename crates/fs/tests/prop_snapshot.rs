//! Property tests for snapshot capture/diff: the weekly-snapshot workflow
//! must reconstruct states exactly and diffs must partition correctly.

use activedr_core::time::Timestamp;
use activedr_core::user::UserId;
use activedr_fs::{Snapshot, VirtualFs};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec!["a", "b", "proj", "u1", "u2", "run", "out"]),
        1..5,
    )
    .prop_map(|comps| format!("/{}", comps.join("/")))
}

#[derive(Debug, Clone)]
enum Op {
    Create(String, u64, i64),
    Remove(String),
    Access(String, i64),
}

fn arb_ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (arb_path(), 1u64..1000, 0i64..100).prop_map(|(p, s, d)| Op::Create(p, s, d)),
            arb_path().prop_map(Op::Remove),
            (arb_path(), 100i64..200).prop_map(|(p, d)| Op::Access(p, d)),
        ],
        0..n,
    )
}

fn apply(fs: &mut VirtualFs, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Create(p, s, d) => {
                let _ = fs.create(p, UserId(1), *s, Timestamp::from_days(*d));
            }
            Op::Remove(p) => {
                fs.remove(p);
            }
            Op::Access(p, d) => {
                fs.access(p, Timestamp::from_days(*d));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Capture → JSONL → restore reproduces the exact file population.
    #[test]
    fn capture_restore_is_lossless(ops in arb_ops(60)) {
        let mut fs = VirtualFs::with_capacity(1 << 40);
        apply(&mut fs, &ops);
        let snap = Snapshot::capture(&fs, Timestamp::from_days(300));
        let mut buf = Vec::new();
        snap.write_jsonl(&mut buf).unwrap();
        let reloaded = Snapshot::read_jsonl(&buf[..]).unwrap();
        let (restored, skipped) = reloaded.restore();
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(restored.file_count(), fs.file_count());
        prop_assert_eq!(restored.used_bytes(), fs.used_bytes());
        for (path, _, meta) in fs.iter() {
            let m = restored.meta(&path).expect("file lost");
            prop_assert_eq!(m.size, meta.size);
            prop_assert_eq!(m.atime, meta.atime);
        }
    }

    /// Diff partitions: created ∪ touched ∪ unchanged = newer snapshot;
    /// removed is disjoint from the newer snapshot; created is disjoint
    /// from the older one.
    #[test]
    fn diff_partitions_the_populations(
        ops1 in arb_ops(40),
        ops2 in arb_ops(40),
    ) {
        let mut fs = VirtualFs::with_capacity(1 << 40);
        apply(&mut fs, &ops1);
        let before = Snapshot::capture(&fs, Timestamp::from_days(100));
        apply(&mut fs, &ops2);
        let after = Snapshot::capture(&fs, Timestamp::from_days(200));

        let diff = before.diff(&after);
        let old_paths: HashSet<&str> =
            before.entries.iter().map(|e| e.path.as_str()).collect();
        let new_paths: HashSet<&str> =
            after.entries.iter().map(|e| e.path.as_str()).collect();

        for e in &diff.created {
            prop_assert!(new_paths.contains(e.path.as_str()));
            prop_assert!(!old_paths.contains(e.path.as_str()));
        }
        for e in &diff.removed {
            prop_assert!(old_paths.contains(e.path.as_str()));
            prop_assert!(!new_paths.contains(e.path.as_str()));
        }
        for e in &diff.touched {
            prop_assert!(new_paths.contains(e.path.as_str()));
            prop_assert!(old_paths.contains(e.path.as_str()));
        }
        // Count accounting: |new| = |old| - removed + created.
        prop_assert_eq!(
            after.len(),
            before.len() - diff.removed.len() + diff.created.len()
        );
        // Self-diff is empty.
        prop_assert!(after.diff(&after).is_empty());
    }
}
