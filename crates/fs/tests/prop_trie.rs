//! Property tests: the path trie must behave exactly like a
//! `HashMap<String, FileMeta>` under arbitrary insert/remove/lookup
//! sequences, and the virtual file system's byte accounting must stay
//! consistent.

use activedr_core::time::Timestamp;
use activedr_core::user::UserId;
use activedr_fs::{ExemptionList, FileMeta, PathTrie, VirtualFs};
use proptest::prelude::*;
use std::collections::HashMap;

/// Small component alphabet so paths collide and force splits/merges.
fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec!["a", "b", "c", "dir", "u1", "u2", "data", "x"]),
        1..6,
    )
    .prop_map(|comps| format!("/{}", comps.join("/")))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(String, u64),
    Remove(String),
    Access(String, i64),
    Rename(String, String),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_path(), 1u64..10_000).prop_map(|(p, s)| Op::Insert(p, s)),
        arb_path().prop_map(Op::Remove),
        (arb_path(), 0i64..1000).prop_map(|(p, d)| Op::Access(p, d)),
        (arb_path(), arb_path()).prop_map(|(a, b)| Op::Rename(a, b)),
    ]
}

fn norm(path: &str) -> String {
    let comps: Vec<&str> = path
        .split('/')
        .filter(|c| !c.is_empty() && *c != ".")
        .collect();
    format!("/{}", comps.join("/"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The trie agrees with a HashMap model on membership, metadata, and
    /// count after any operation sequence. The model must reject the same
    /// file/directory conflicts the trie rejects.
    #[test]
    fn trie_equals_hashmap_model(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut trie = PathTrie::new();
        let mut model: HashMap<String, u64> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(path, size) => {
                    let key = norm(&path);
                    // Model-side conflict check: a strict prefix that is a
                    // file, or an existing longer path extending us.
                    let is_prefix_of_existing_file = model
                        .keys()
                        .any(|k| k.len() > key.len() && k.starts_with(&key) && k.as_bytes()[key.len()] == b'/');
                    let has_file_prefix = model.keys().any(|k| {
                        key.len() > k.len() && key.starts_with(k.as_str()) && key.as_bytes()[k.len()] == b'/'
                    });
                    let meta = FileMeta::new(UserId(1), size, Timestamp::EPOCH);
                    let result = trie.insert(&path, meta);
                    if has_file_prefix || is_prefix_of_existing_file {
                        prop_assert!(result.is_err(), "expected conflict on {key}");
                    } else {
                        prop_assert!(result.is_ok(), "unexpected error on {key}: {result:?}");
                        model.insert(key, size);
                    }
                }
                Op::Remove(path) => {
                    let key = norm(&path);
                    let expected = model.remove(&key);
                    let got = trie.remove(&path).map(|m| m.size);
                    prop_assert_eq!(got, expected);
                }
                Op::Access(path, day) => {
                    let key = norm(&path);
                    let ts = Timestamp::from_days(day);
                    if model.contains_key(&key) {
                        prop_assert!(trie.get(&path).is_some());
                        trie.get_mut(&path).unwrap().touch(ts);
                        prop_assert!(trie.get(&path).unwrap().atime >= Timestamp::EPOCH);
                    } else {
                        prop_assert!(trie.get(&path).is_none());
                    }
                }
                Op::Rename(from, to) => {
                    let from_key = norm(&from);
                    let to_key = norm(&to);
                    let result = trie.rename(&from, &to);
                    if !model.contains_key(&from_key) {
                        prop_assert!(result.is_err(), "rename of missing {from_key}");
                    } else if from_key == to_key {
                        prop_assert!(result.is_ok());
                    } else {
                        // Model-side destination validity: same conflict
                        // rules as insert, after the source is removed.
                        let size = model[&from_key];
                        let mut without = model.clone();
                        without.remove(&from_key);
                        let dest_extends_file = without.keys().any(|k| {
                            to_key.len() > k.len()
                                && to_key.starts_with(k.as_str())
                                && to_key.as_bytes()[k.len()] == b'/'
                        });
                        let dest_is_dir_of_file = without.keys().any(|k| {
                            k.len() > to_key.len()
                                && k.starts_with(&to_key)
                                && k.as_bytes()[to_key.len()] == b'/'
                        });
                        if dest_extends_file || dest_is_dir_of_file {
                            prop_assert!(result.is_err(), "expected rename conflict to {to_key}");
                            // Source survives a failed rename.
                            prop_assert!(trie.get(&from).is_some());
                        } else {
                            prop_assert!(result.is_ok(), "rename {from_key} -> {to_key}: {result:?}");
                            model.remove(&from_key);
                            model.insert(to_key, size);
                        }
                    }
                }
            }
            prop_assert_eq!(trie.len(), model.len());
        }

        // Full sweep: every model entry is reachable with correct size and
        // a reconstructible path; iteration yields exactly the model keys.
        for (k, v) in &model {
            let id = trie.lookup(k).expect("model file missing from trie");
            prop_assert_eq!(trie.meta(id).unwrap().size, *v);
            prop_assert_eq!(&trie.path_of(id), k);
        }
        let mut listed: Vec<String> = trie.iter().map(|(p, _, _)| p).collect();
        let mut expected: Vec<String> = model.keys().cloned().collect();
        listed.sort();
        expected.sort();
        prop_assert_eq!(listed, expected);
    }

    /// VFS used_bytes always equals the sum of live file sizes, and the
    /// catalog covers exactly the live files.
    #[test]
    fn vfs_byte_accounting(ops in prop::collection::vec(arb_op(), 1..100)) {
        let mut fs = VirtualFs::with_capacity(1 << 30);
        let mut model: HashMap<String, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(path, size) => {
                    let key = norm(&path);
                    if fs.create(&path, UserId(0), size, Timestamp::EPOCH).is_ok() {
                        model.insert(key, size);
                    }
                }
                Op::Remove(path) => {
                    if fs.remove(&path).is_some() {
                        model.remove(&norm(&path));
                    }
                }
                Op::Access(path, day) => {
                    let hit = !fs.access(&path, Timestamp::from_days(day)).is_miss();
                    prop_assert_eq!(hit, model.contains_key(&norm(&path)));
                }
                Op::Rename(from, to) => {
                    if fs.rename(&from, &to).is_ok() {
                        let from_key = norm(&from);
                        let to_key = norm(&to);
                        if let Some(size) = model.remove(&from_key) {
                            model.insert(to_key, size);
                        }
                    }
                }
            }
            prop_assert_eq!(fs.used_bytes(), model.values().sum::<u64>());
            prop_assert_eq!(fs.file_count(), model.len());
        }
        let catalog = fs.catalog(&ExemptionList::new());
        prop_assert_eq!(catalog.total_bytes(), fs.used_bytes());
        prop_assert_eq!(catalog.total_files(), fs.file_count());
    }

    /// Prefix iteration returns exactly the files whose normalized path
    /// extends the prefix on a component boundary.
    #[test]
    fn prefix_iteration_matches_filter(
        paths in prop::collection::vec(arb_path(), 1..40),
        prefix in arb_path(),
    ) {
        let mut trie = PathTrie::new();
        let mut inserted: Vec<String> = Vec::new();
        for p in &paths {
            if trie.insert(p, FileMeta::new(UserId(0), 1, Timestamp::EPOCH)).is_ok() {
                inserted.push(norm(p));
            }
        }
        let pre = norm(&prefix);
        let mut got: Vec<String> = trie.iter_prefix(&prefix).map(|(p, _, _)| p).collect();
        let mut expected: Vec<String> = inserted
            .iter()
            .filter(|k| {
                **k == pre
                    || (k.len() > pre.len()
                        && k.starts_with(&pre)
                        && k.as_bytes()[pre.len()] == b'/')
            })
            .cloned()
            .collect();
        got.sort();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }
}
