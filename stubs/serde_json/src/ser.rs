//! JSON printers: compact and pretty (2-space indent, serde_json style).

use serde::Value;

/// Compact rendering, no whitespace.
pub fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_compact(value, &mut out);
    out
}

/// Pretty rendering with two-space indentation.
pub fn pretty(value: &Value) -> String {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    out
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Map(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Float text: `null` for non-finite (serde_json convention), otherwise
/// Rust's shortest round-trip representation with `.0` appended to
/// integral values so the text re-parses as a float.
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let text = f.to_string();
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
