//! Recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::Value;

/// Nesting ceiling: parsing is recursive, so bound the depth well below
/// any real stack limit instead of overflowing on adversarial input.
const MAX_DEPTH: u32 = 512;

/// Parse one complete JSON document (surrounding whitespace allowed).
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected byte {other:#04x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, Error> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Map(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Value::Map(fields));
            }
            return Err(self.err("expected `,` or `}` in object"));
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, Error> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Value::Seq(items));
            }
            return Err(self.err("expected `,` or `]` in array"));
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if !self.eat(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let first = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: require the paired low surrogate.
                    if !(self.eat(b'\\') && self.eat(b'u')) {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                    let second = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&second) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                } else {
                    first
                };
                let ch = char::from_u32(code)
                    .ok_or_else(|| self.err("escape is not a valid character"))?;
                out.push(ch);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.eat(b'-');
        let mut is_float = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start + usize::from(negative) {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(format!("invalid number text: {e}")))?;
        if !is_float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
    }
}
