//! Offline stand-in for the `serde_json` crate.
//!
//! Text layer over the [`serde`] stub's tree model: a recursive-descent
//! JSON parser and a compact/pretty printer. Output conventions follow
//! upstream serde_json — two-space pretty indent, `null` for non-finite
//! floats, shortest-round-trip float text with a trailing `.0` for
//! integral values.

use serde::{DeError, Deserialize, Serialize};

pub use serde::Value;

mod de;
mod ser;

/// Serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
///
/// # Errors
/// Infallible for tree-model values; kept fallible to match serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(ser::compact(&value.to_model()))
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
///
/// # Errors
/// Infallible for tree-model values; kept fallible to match serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(ser::pretty(&value.to_model()))
}

/// Serialize `value` to a JSON byte vector.
///
/// # Errors
/// Infallible for tree-model values; kept fallible to match serde_json.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize `value` into `writer` as compact JSON.
///
/// # Errors
/// Returns an [`Error`] when the underlying writer fails.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer
        .write_all(ser::compact(&value.to_model()).as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

/// Convert any serializable value into a tree [`Value`].
///
/// # Errors
/// Infallible for tree-model values; kept fallible to match serde_json.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_model())
}

/// Rebuild a `T` from a tree [`Value`].
///
/// # Errors
/// Returns an [`Error`] when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_model(value)?)
}

/// Parse JSON text into a `T`.
///
/// # Errors
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = de::parse(input)?;
    Ok(T::from_model(&value)?)
}

/// Parse JSON bytes into a `T`.
///
/// # Errors
/// Returns an [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input)
        .map_err(|e| Error::new(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(text)
}

/// Read all of `reader` and parse it as JSON into a `T`.
///
/// # Errors
/// Returns an [`Error`] on I/O failure, malformed JSON, or a shape
/// mismatch.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = Vec::new();
    reader
        .read_to_end(&mut buf)
        .map_err(|e| Error::new(format!("read failed: {e}")))?;
    from_slice(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).expect("serializes"), "42");
        assert_eq!(to_string(&-7i64).expect("serializes"), "-7");
        assert_eq!(to_string(&true).expect("serializes"), "true");
        assert_eq!(to_string(&1.5f64).expect("serializes"), "1.5");
        assert_eq!(to_string(&1.0f64).expect("serializes"), "1.0");
        assert_eq!(
            to_string("hi\n\"there\"").expect("serializes"),
            r#""hi\n\"there\"""#
        );
        assert_eq!(from_str::<u64>("42").expect("parses"), 42);
        assert_eq!(from_str::<f64>("1.0").expect("parses"), 1.0);
        assert_eq!(from_str::<String>(r#""aAb""#).expect("parses"), "aAb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).expect("serializes");
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).expect("parses"), v);

        let pairs: Vec<(String, f64)> = vec![("a".into(), 0.5), ("b".into(), 2.0)];
        let json = to_string(&pairs).expect("serializes");
        let back: Vec<(String, f64)> = from_str(&json).expect("parses");
        assert_eq!(back, pairs);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).expect("serializes"), "null");
        assert_eq!(to_string(&f64::INFINITY).expect("serializes"), "null");
        assert!(from_str::<f64>("null").is_err());
        assert_eq!(from_str::<Option<f64>>("null").expect("parses"), None);
    }

    #[test]
    fn value_get_walks_objects() {
        let value: Value = from_str(r#"{"rows": [1, 2], "n": 2}"#).expect("parses");
        assert!(value.get("rows").is_some());
        assert!(value.get("missing").is_none());
        assert_eq!(value.get("n").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn pretty_printing_indents() {
        let value: Value = from_str(r#"{"a":[1,2],"b":{}}"#).expect("parses");
        let pretty = to_string_pretty(&value).expect("serializes");
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_slice::<Value>(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(50_000) + &"]".repeat(50_000);
        assert!(from_str::<Value>(&deep).is_err());
    }
}
