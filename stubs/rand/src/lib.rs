//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand API this workspace uses — `Rng`,
//! `SeedableRng`, `rngs::StdRng`, `random_range` over integer and float
//! ranges — backed by a deterministic xoshiro256++ generator seeded with
//! SplitMix64. Everything is reproducible from a `u64` seed, which is
//! exactly the property the trace synthesizer and the replay engine
//! require (see DESIGN.md, "Static analysis & invariants").

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`]. Mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty, like upstream rand.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a seed. Mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a raw word to a `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the stand-in for
    /// `rand::rngs::StdRng`. Not cryptographically secure (neither is the
    /// real `StdRng` contract this workspace relies on); statistically
    /// solid for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard seeding recipe for the
            // xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform sampling from range types. Mirrors `rand::distr::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

// f64 only: adding the f32 impls would make `rng.random_range(0.0..1.0)`
// ambiguous at call sites that rely on float-literal fallback, and the
// workspace never samples f32 ranges.
impl_float_range!(f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let inc = rng.random_range(3u32..=5);
            assert!((3..=5).contains(&inc));
        }
    }

    #[test]
    fn uniform_coverage_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[rng.random_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {c}");
        }
    }
}
