//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a zero-copy visitor framework; this stub collapses the
//! data model to an owned tree ([`value::Value`]) because every serialization
//! in this workspace is "struct → JSON text" or back, where the intermediate
//! tree costs one allocation pass and removes an enormous amount of trait
//! machinery that cannot be compiled offline. The public surface — the
//! `Serialize`/`Deserialize` traits, `#[derive(Serialize, Deserialize)]`,
//! `#[serde(transparent)]` — matches what the workspace uses, and the JSON
//! conventions (externally tagged enums, transparent newtypes, integer map
//! keys as strings, non-finite floats as null) follow upstream
//! serde_json so recorded fixtures stay valid if the real crates return.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Serialization: convert `self` into the tree model.
pub trait Serialize {
    /// Build the [`Value`] tree for `self`.
    fn to_model(&self) -> Value;
}

/// Deserialization: rebuild `Self` from the tree model.
pub trait Deserialize: Sized {
    /// Parse a [`Value`] tree into `Self`.
    ///
    /// # Errors
    /// Returns [`DeError`] when the tree's shape or types do not match.
    fn from_model(v: &Value) -> Result<Self, DeError>;

    /// Value to use when a struct field of this type is absent. The
    /// default is an error; `Option<T>` overrides it to `None`.
    ///
    /// # Errors
    /// Returns [`DeError::MissingField`] unless overridden.
    fn from_missing(field: &'static str) -> Result<Self, DeError> {
        Err(DeError::MissingField(field))
    }
}

/// Why a [`Deserialize`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeError {
    /// The tree node had the wrong variant (e.g. string where number
    /// expected). Payload: `(expected, found)`.
    TypeMismatch(&'static str, &'static str),
    /// A required struct field was absent from the map.
    MissingField(&'static str),
    /// An enum tag did not name any variant. Payload: `(enum, tag)`.
    UnknownVariant(&'static str, String),
    /// Anything else (bad numeric range, bad map key, bad length...).
    Message(String),
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeError::TypeMismatch(expected, found) => {
                write!(f, "invalid type: expected {expected}, found {found}")
            }
            DeError::MissingField(name) => write!(f, "missing field `{name}`"),
            DeError::UnknownVariant(what, tag) => {
                write!(f, "unknown variant `{tag}` for enum {what}")
            }
            DeError::Message(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_model(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64);

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_model(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_model(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Serialize for isize {
    fn to_model(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f64 {
    fn to_model(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_model(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_model(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_model(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_model(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_model(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_model(&self) -> Value {
        (**self).to_model()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_model(&self) -> Value {
        (**self).to_model()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_model(&self) -> Value {
        match self {
            Some(v) => v.to_model(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_model(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_model).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_model(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_model).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_model(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_model).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_model(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_model()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

impl Serialize for std::time::Duration {
    fn to_model(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

/// Render a serialized map key the way serde_json prints it: strings pass
/// through, integer-like keys (including transparent newtypes over integers)
/// become their decimal text.
fn render_key(key: &Value) -> String {
    match key {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("<unsupported {} map key>", other.kind()),
    }
}

/// Parse a JSON object key back into a key type: try the string form first,
/// then the integer forms (covers integer keys and transparent newtypes over
/// integers), then booleans.
fn parse_key<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(key) = K::from_model(&Value::Str(s.to_string())) {
        return Ok(key);
    }
    if let Ok(unsigned) = s.parse::<u64>() {
        if let Ok(key) = K::from_model(&Value::UInt(unsigned)) {
            return Ok(key);
        }
    }
    if let Ok(signed) = s.parse::<i64>() {
        if let Ok(key) = K::from_model(&Value::Int(signed)) {
            return Ok(key);
        }
    }
    if let Ok(flag) = s.parse::<bool>() {
        if let Ok(key) = K::from_model(&Value::Bool(flag)) {
            return Ok(key);
        }
    }
    Err(DeError::Message(format!("unparseable map key: {s:?}")))
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_model(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (render_key(&k.to_model()), v.to_model()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_model(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (render_key(&k.to_model()), v.to_model()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_model(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_model(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => i128::from(*i),
                    Value::UInt(u) => i128::from(*u),
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(DeError::TypeMismatch("integer", other.kind()))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::Message(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_model(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::TypeMismatch("float", other.kind())),
                }
            }
        }
    )*};
}
deserialize_float!(f32, f64);

impl Deserialize for bool {
    fn from_model(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::TypeMismatch("bool", other.kind())),
        }
    }
}

impl Deserialize for String {
    fn from_model(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::TypeMismatch("string", other.kind())),
        }
    }
}

impl Deserialize for char {
    fn from_model(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap_or('\0')),
            other => Err(DeError::TypeMismatch("single-char string", other.kind())),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_model(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_model(other).map(Some),
        }
    }
    fn from_missing(_field: &'static str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_model(v: &Value) -> Result<Self, DeError> {
        T::from_model(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_model(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_model).collect(),
            other => Err(DeError::TypeMismatch("array", other.kind())),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_model(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_model(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::Message(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_model(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) if items.len() == $len => Ok((
                        $($name::from_model(&items[$idx])?,)+
                    )),
                    Value::Seq(items) => Err(DeError::Message(format!(
                        "expected tuple of length {}, found {}",
                        $len,
                        items.len()
                    ))),
                    other => Err(DeError::TypeMismatch("tuple array", other.kind())),
                }
            }
        }
    )*};
}
deserialize_tuple! {
    (1; A 0)
    (2; A 0, B 1)
    (3; A 0, B 1, C 2)
    (4; A 0, B 1, C 2, D 3)
    (5; A 0, B 1, C 2, D 3, E 4)
}

impl Deserialize for std::time::Duration {
    fn from_model(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(fields) => {
                let secs: u64 = field(fields, "secs")?;
                let nanos: u64 = field(fields, "nanos")?;
                let nanos = u32::try_from(nanos)
                    .map_err(|_| DeError::Message(format!("nanos {nanos} out of range")))?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            other => Err(DeError::TypeMismatch("duration map", other.kind())),
        }
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_model(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(fields) => fields
                .iter()
                .map(|(k, v)| Ok((parse_key(k)?, V::from_model(v)?)))
                .collect(),
            other => Err(DeError::TypeMismatch("object", other.kind())),
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_model(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(fields) => fields
                .iter()
                .map(|(k, v)| Ok((parse_key(k)?, V::from_model(v)?)))
                .collect(),
            other => Err(DeError::TypeMismatch("object", other.kind())),
        }
    }
}

impl Deserialize for Value {
    fn from_model(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code
// ---------------------------------------------------------------------------

/// Look up and deserialize struct field `name` in a field map, falling back
/// to [`Deserialize::from_missing`] when absent.
///
/// # Errors
/// Propagates the field's [`DeError`].
pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &'static str) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_model(v),
        None => T::from_missing(name),
    }
}

/// Index into a serialized tuple body, with a shape error on overrun.
///
/// # Errors
/// Returns [`DeError`] when `items` is shorter than `idx + 1`.
pub fn seq_item<'v>(
    items: &'v [Value],
    idx: usize,
    what: &'static str,
) -> Result<&'v Value, DeError> {
    items
        .get(idx)
        .ok_or_else(|| DeError::Message(format!("tuple for {what} too short: missing index {idx}")))
}

/// Interpret `v` as a struct body (a map of fields).
///
/// # Errors
/// Returns [`DeError::TypeMismatch`] for non-map values.
pub fn struct_body<'v>(
    v: &'v Value,
    type_name: &'static str,
) -> Result<&'v [(String, Value)], DeError> {
    match v {
        Value::Map(fields) => Ok(fields),
        other => Err(DeError::Message(format!(
            "expected struct {type_name} as object, found {}",
            other.kind()
        ))),
    }
}
