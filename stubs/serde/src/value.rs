//! The owned tree data model shared by the serde and serde_json stubs.

/// A JSON-shaped value tree. Maps preserve insertion order (like serde_json
/// with its `preserve_order` feature) so struct fields round-trip in
/// declaration order and output is stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or signed integer.
    Int(i64),
    /// Non-negative integer that may exceed `i64::MAX`.
    UInt(u64),
    /// Floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Member lookup on objects: `Some(&value)` if `self` is a map
    /// containing `key`. Mirrors `serde_json::Value::get` for string keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if `self` is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned payload, if `self` is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Signed payload, if `self` is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The element list, if `self` is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// `true` iff `self` is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}
