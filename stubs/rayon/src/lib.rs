//! Offline stand-in for the `rayon` crate.
//!
//! The build environment for this repository is hermetic: no crates can be
//! fetched from a registry. This crate provides the *subset* of rayon's API
//! that the workspace uses (`into_par_iter`, `par_chunks`) with sequential
//! fallbacks built on `std::iter`. Parallel call sites keep their shape, so
//! swapping the real rayon back in is a one-line `Cargo.toml` change.
//!
//! Correctness note: every algorithm in this workspace that fans out via
//! rayon is required to be deterministic and order-insensitive (shard
//! results are merged by shard index), so a sequential execution is
//! observationally equivalent apart from wall-clock time.

/// The traits a `use rayon::prelude::*;` is expected to bring into scope.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSlice};
}

/// Sequential re-implementations of the parallel iterator entry points.
pub mod iter {
    /// Mirror of `rayon::iter::IntoParallelIterator`: converts a collection
    /// into a (here: sequential) iterator. All downstream adaptors
    /// (`map`, `zip`, `enumerate`, `collect`, ...) are the plain
    /// [`std::iter::Iterator`] ones.
    pub trait IntoParallelIterator {
        /// Item type produced by the iterator.
        type Item;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Convert `self` into the "parallel" iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn into_par_iter(self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn into_par_iter(self) -> Self::Iter {
            self.iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// Mirror of `rayon::slice::ParallelSlice`: chunked traversal of a
    /// slice. Sequential here.
    pub trait ParallelSlice<T: Sync> {
        /// Split into chunks of at most `chunk_size` items.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_matches_sequential() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let zipped: Vec<(u64, u64)> = v.clone().into_par_iter().zip(v.into_par_iter()).collect();
        assert_eq!(zipped.len(), 4);
    }

    #[test]
    fn par_chunks_covers_all_elements() {
        let v: Vec<u32> = (0..10).collect();
        let chunks: Vec<&[u32]> = v.par_chunks(3).collect();
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 10);
    }
}
