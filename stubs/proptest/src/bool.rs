//! Boolean strategies: `prop::bool::weighted`.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// `true` with probability `p`.
pub fn weighted(p: f64) -> Weighted {
    assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
    Weighted { p }
}

/// See [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.p
    }
    /// `false` is the simpler boolean.
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}
