//! The imperative sampling surface (`ProptestConfig`, `TestRunner`) and
//! the shrinking machinery behind the `proptest!` macro: a greedy
//! [`minimize`] driver plus [`quiet_catch`], which swallows the panic
//! output of shrink probes so a failing property prints one report, not
//! hundreds.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::any::Any;
use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::Once;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 48 cases: far fewer than upstream's 256 (generation is
    /// deterministic, so failing cases replay instantly and breadth
    /// costs less), still enough to exercise size/shape edges.
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Sampling context for [`crate::strategy::Strategy::new_tree`].
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// A runner with a fixed, documented seed — mirrors
    /// `proptest::test_runner::TestRunner::deterministic()`.
    pub fn deterministic() -> Self {
        TestRunner {
            rng: TestRng::from_seed(0x5EED_5EED_5EED_5EED),
        }
    }

    /// Access the underlying RNG.
    pub fn rng_mut(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

thread_local! {
    /// Set while a [`quiet_catch`] probe runs on this thread: the global
    /// panic hook skips printing, so shrink probes fail silently.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_QUIET_HOOK: Once = Once::new();

/// Run `f`, catching any panic. While `f` runs, panics on this thread
/// print nothing (the default hook's backtrace spam would otherwise
/// repeat for every shrink probe); other threads are unaffected. The
/// first call chains the suppressing hook in front of whatever hook is
/// installed, process-wide, exactly once.
pub fn quiet_catch<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
    INSTALL_QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
    QUIET_PANICS.with(|quiet| quiet.set(true));
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(f));
    QUIET_PANICS.with(|quiet| quiet.set(false));
    outcome
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

/// The engine behind `proptest!`: run `body` over `config.cases`
/// deterministic samples of `strategies`; on the first failure,
/// [`minimize`] the input (probes silenced via [`quiet_catch`]) and
/// panic with the minimal failing input plus the original message.
///
/// # Panics
/// Panics — loudly, by design — when a case fails.
pub fn run_cases<S, B>(config: ProptestConfig, path: &str, strategies: &S, body: B)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    B: Fn(S::Value),
{
    for case in 0..u64::from(config.cases) {
        let mut rng = TestRng::from_seed(crate::seed_for(path, case));
        let input = strategies.generate(&mut rng);
        if let Err(panic) = quiet_catch(|| body(input.clone())) {
            let minimal = minimize(strategies, input, |candidate| {
                quiet_catch(|| body(candidate.clone())).is_err()
            });
            panic!(
                "proptest {path} case {case} failed\nminimal input: {minimal:?}\n\
                 first failure: {}",
                panic_message(panic.as_ref()),
            );
        }
    }
}

/// Greedily minimize `failing` under `fails` (which must hold for
/// `failing` itself): repeatedly take the first [`Strategy::shrink`]
/// proposal that still fails, until no proposal does or the probe
/// budget is spent. Every built-in strategy proposes strictly-simpler
/// values, so descent terminates; the budget guards asymptotic cases
/// (float thresholds) and user strategies that don't.
pub fn minimize<S, F>(strategy: &S, failing: S::Value, mut fails: F) -> S::Value
where
    S: Strategy,
    F: FnMut(&S::Value) -> bool,
{
    let mut current = failing;
    let mut probes: usize = 512;
    loop {
        let mut improved = false;
        for candidate in strategy.shrink(&current) {
            if probes == 0 {
                return current;
            }
            probes -= 1;
            if fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}
