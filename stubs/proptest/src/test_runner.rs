//! The imperative sampling surface: `ProptestConfig` and `TestRunner`.

use crate::rng::TestRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 48 cases: far fewer than upstream's 256 (no shrinking means failing
    /// cases replay instantly, so breadth costs less), still enough to
    /// exercise size/shape edges.
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Sampling context for [`crate::strategy::Strategy::new_tree`].
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// A runner with a fixed, documented seed — mirrors
    /// `proptest::test_runner::TestRunner::deterministic()`.
    pub fn deterministic() -> Self {
        TestRunner {
            rng: TestRng::from_seed(0x5EED_5EED_5EED_5EED),
        }
    }

    /// Access the underlying RNG.
    pub fn rng_mut(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}
