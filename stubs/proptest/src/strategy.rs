//! The [`Strategy`] trait and its combinators.

use crate::rng::TestRng;
use crate::test_runner::TestRunner;

/// A recipe for generating values of one type. The stub's contract is
/// two methods — [`Strategy::generate`] and [`Strategy::shrink`] — plus
/// combinators built on them.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose strictly-simpler variants of `value`, most aggressive
    /// first. The default proposes nothing — a strategy that cannot
    /// shrink (e.g. [`Map`], whose mapping is not invertible) simply
    /// stops the [`crate::test_runner::minimize`] descent at its level.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Sample one value through a [`TestRunner`] — the escape hatch the
    /// real crate exposes for composing strategies imperatively.
    ///
    /// # Errors
    /// Never fails in the stub; the `Result` mirrors the upstream
    /// signature.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Sampled<Self::Value>, String>
    where
        Self: Sized,
    {
        Ok(Sampled {
            value: self.generate(runner.rng_mut()),
        })
    }
}

/// A sampled value wrapped in the upstream `ValueTree` shape.
#[derive(Debug, Clone)]
pub struct Sampled<V> {
    value: V,
}

/// Mirror of `proptest::strategy::ValueTree` (sans shrinking).
pub trait ValueTree {
    /// Type of the held value.
    type Value;
    /// The current (only) value of this tree.
    fn current(&self) -> Self::Value;
}

impl<V: Clone> ValueTree for Sampled<V> {
    type Value = V;
    fn current(&self) -> V {
        self.value.clone()
    }
}

/// `prop_map` adaptor. Cannot shrink: the mapping is one-way, so there
/// is no way to recover the inner value a mapped output came from; the
/// default empty [`Strategy::shrink`] applies.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Box a strategy for heterogeneous storage (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

/// Uniform choice among boxed strategies — `prop_oneof!`'s engine.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from the macro's boxed arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty (the macro guarantees at least one).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len());
        match self.arms.get(pick) {
            Some(arm) => arm.generate(rng),
            None => unreachable!("below() stays in bounds"),
        }
    }
    /// The arm that produced `value` is unknown, so pool every arm's
    /// proposals; the minimize driver discards any that don't reproduce
    /// the failure, so foreign-arm proposals cost probes but never
    /// correctness.
    fn shrink(&self, value: &V) -> Vec<V> {
        self.arms.iter().flat_map(|arm| arm.shrink(value)).collect()
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

/// Integer shrink proposals: the range floor (biggest jump), the
/// midpoint between floor and `value` (binary descent), and `value - 1`
/// (the last mile). All strictly below `value`, so greedy descent
/// terminates.
macro_rules! int_shrink {
    ($t:ty, $lo:expr, $value:expr) => {{
        let lo = $lo as i128;
        let v = *$value as i128;
        let mut out: Vec<$t> = Vec::new();
        if v > lo {
            out.push($lo);
            let mid = lo + (v - lo) / 2;
            if mid > lo && mid < v {
                out.push(mid as $t);
            }
            if v - 1 > lo && v - 1 != lo + (v - lo) / 2 {
                out.push((v - 1) as $t);
            }
        }
        out
    }};
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink!($t, self.start, value)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink!($t, *self.start(), value)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Float shrink proposals: the range floor, then the halfway point.
/// Convergence toward a non-floor threshold is asymptotic, so the
/// minimize driver's probe budget bounds the descent.
macro_rules! float_shrink {
    ($t:ty, $lo:expr, $value:expr) => {{
        let lo: $t = $lo;
        let v: $t = *$value;
        let mut out: Vec<$t> = Vec::new();
        if v.is_finite() && lo.is_finite() && v > lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2.0;
            if mid > lo && mid < v {
                out.push(mid);
            }
        }
        out
    }};
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * unit
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                float_shrink!($t, self.start, value)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                lo + (hi - lo) * unit
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                float_shrink!($t, *self.start(), value)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            /// Component-wise: shrink each position with the others held
            /// fixed (the tuple analogue of ddmin's one-op sweep).
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for smaller in self.$idx.shrink(&value.$idx) {
                        let mut candidate = value.clone();
                        candidate.$idx = smaller;
                        out.push(candidate);
                    }
                )+
                out
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------------
// String strategies (the `\PC{lo,hi}` shape only)
// ---------------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 16));
        let len = if hi > lo {
            lo + rng.below(hi - lo + 1)
        } else {
            lo
        };
        (0..len).map(|_| random_printable_char(rng)).collect()
    }
    /// Drop one character at a time (every position), never shrinking
    /// below the pattern's minimum length.
    fn shrink(&self, value: &String) -> Vec<String> {
        let (lo, _) = parse_repeat_bounds(self).unwrap_or((0, 16));
        let chars: Vec<char> = value.chars().collect();
        if chars.len() <= lo {
            return Vec::new();
        }
        (0..chars.len())
            .map(|skip| {
                chars
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, c)| *c)
                    .collect()
            })
            .collect()
    }
}

/// Extract `{lo,hi}` from the tail of a pattern like `\PC{0,30}`.
fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let (lo, hi) = body.get(brace + 1..)?.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// A printable (non-control) char, biased toward ASCII with a sprinkle of
/// multi-byte code points so UTF-8 handling gets exercised.
fn random_printable_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &['é', 'ß', '中', '🦀', '𝒜', '\u{200B}', 'Ω', 'ʼ'];
    if rng.below(8) == 0 {
        EXOTIC[rng.below(EXOTIC.len())]
    } else {
        // Printable ASCII: 0x20..=0x7E.
        let offset = rng.below(0x7F - 0x20) as u32;
        char::from_u32(0x20 + offset).unwrap_or(' ')
    }
}
