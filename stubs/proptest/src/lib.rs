//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! range/tuple/vec/select/oneof/option/bool strategies, `prop_map`, and
//! the `TestRunner`/`ValueTree` escape hatch.
//!
//! Differences from the real crate, by design:
//!
//! * **Greedy shrinking.** On failure the macro re-runs the body over
//!   [`strategy::Strategy::shrink`] proposals (panics suppressed via
//!   [`test_runner::quiet_catch`]), takes the first proposal that still
//!   fails, and repeats until a fixpoint or the probe budget runs out —
//!   simpler than upstream's `ValueTree` bisection, but it reports a
//!   minimal failing input the same way. `prop_map` is the one
//!   shrink-opaque combinator: its mapping can't be inverted, so
//!   descent stops at mapped values.
//! * **Deterministic.** There is no OS entropy; every run of a given
//!   binary explores the same cases. `.proptest-regressions` files are
//!   ignored (the minimal input is printed in the panic instead).
//! * **Regex string strategies** support only the `\PC{lo,hi}` shape the
//!   workspace uses (arbitrary printable strings with bounded length);
//!   any other pattern falls back to short alphanumeric strings.

pub mod bool;
pub mod collection;
pub mod option;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` module alias used inside `proptest!` bodies.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Deterministic seed for a named test case: FNV-1a over the test path,
/// mixed with the case index.
pub fn seed_for(test_path: &str, case: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The macro behind every property test: runs the body over `cases`
/// deterministic samples of the argument strategies. On the first
/// failing case the inputs are minimized through the strategies'
/// [`strategy::Strategy::shrink`] proposals (shrink-probe panics are
/// silenced) and the test re-panics with the minimal failing input.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        @impl ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    $config,
                    concat!(module_path!(), "::", stringify!($name)),
                    &($($strategy,)+),
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Assert inside a property test. Panics (no shrinking) with the message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Choose uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    #[test]
    fn seeds_differ_across_cases_and_names() {
        assert_ne!(crate::seed_for("a::b", 0), crate::seed_for("a::b", 1));
        assert_ne!(crate::seed_for("a::b", 0), crate::seed_for("a::c", 0));
        assert_eq!(crate::seed_for("a::b", 7), crate::seed_for("a::b", 7));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 10u64..20,
            f in 0.5f64..2.0,
            v in prop::collection::vec(0i64..5, 1..10),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&i| (0..5).contains(&i)));
        }

        #[test]
        fn oneof_and_map_compose(
            s in prop_oneof![
                (0u32..5).prop_map(|n| format!("lo{n}")),
                (100u32..105).prop_map(|n| format!("hi{n}")),
            ],
        ) {
            prop_assert!(s.starts_with("lo") || s.starts_with("hi"));
        }
    }

    #[test]
    fn new_tree_escape_hatch_samples() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let strategy = prop::collection::vec(0u8..10, 3..=3);
        let value = strategy.new_tree(&mut runner).expect("samples").current();
        assert_eq!(value.len(), 3);
        assert!(value.iter().all(|&b| b < 10));
    }

    #[test]
    fn select_weighted_option_cover_their_domains() {
        let mut rng = crate::rng::TestRng::from_seed(3);
        let select = prop::sample::select(vec!["a", "b"]);
        let weighted = prop::bool::weighted(0.5);
        let opt = prop::option::of(0u32..3);
        let mut saw = std::collections::HashSet::new();
        for _ in 0..200 {
            saw.insert(select.generate(&mut rng).to_string());
            let _ = weighted.generate(&mut rng);
            let _ = opt.generate(&mut rng);
        }
        assert_eq!(saw.len(), 2);
    }

    proptest! {
        #[test]
        fn regex_like_strings_respect_bounds(s in "\\PC{0,30}") {
            prop_assert!(s.chars().count() <= 30);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    // ----- shrinking ------------------------------------------------------

    #[test]
    fn int_shrinks_propose_strictly_smaller_in_range() {
        let strategy = 10u64..100;
        let proposals = strategy.shrink(&40);
        assert!(!proposals.is_empty());
        assert!(proposals.iter().all(|&p| (10..40).contains(&p)));
        assert_eq!(proposals.first(), Some(&10), "floor comes first");
        assert!(strategy.shrink(&10).is_empty(), "floor cannot shrink");
    }

    #[test]
    fn vec_shrinks_respect_min_len_and_shrink_elements() {
        let strategy = prop::collection::vec(0u8..10, 2..=4);
        let proposals = strategy.shrink(&vec![3, 7, 9]);
        assert!(proposals.iter().all(|v| v.len() >= 2));
        // Every one-element removal of a 3-element vec...
        assert!(proposals.iter().filter(|v| v.len() == 2).count() == 3);
        // ...plus in-place element shrinks.
        assert!(proposals.iter().any(|v| v.len() == 3 && v[0] < 3));
        let at_floor = strategy.shrink(&vec![0, 0]);
        assert!(at_floor.iter().all(|v| v.len() == 2), "len is at the floor");
    }

    #[test]
    fn select_option_bool_shrink_toward_simplest() {
        let select = prop::sample::select(vec!["a", "b", "c"]);
        assert_eq!(select.shrink(&"c"), vec!["a", "b"]);
        assert!(select.shrink(&"a").is_empty());

        let opt = prop::option::of(5u32..10);
        let proposals = opt.shrink(&Some(8));
        assert_eq!(proposals.first(), Some(&None), "None comes first");
        assert!(proposals
            .iter()
            .skip(1)
            .all(|p| matches!(p, Some(v) if *v < 8)));
        assert!(opt.shrink(&None).is_empty());

        let weighted = prop::bool::weighted(0.5);
        assert_eq!(weighted.shrink(&true), vec![false]);
        assert!(weighted.shrink(&false).is_empty());
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let strategy = (0u8..10, 0u8..10);
        let proposals = strategy.shrink(&(4, 6));
        assert!(!proposals.is_empty());
        for (a, b) in &proposals {
            let first_changed = *a < 4 && *b == 6;
            let second_changed = *a == 4 && *b < 6;
            assert!(first_changed || second_changed, "({a}, {b}) changed both");
        }
    }

    #[test]
    fn minimize_descends_to_the_failure_threshold() {
        let strategy = (0u64..1000,);
        let minimal =
            crate::test_runner::minimize(&strategy, (777,), |candidate| candidate.0 >= 10);
        assert_eq!(minimal, (10,));
    }

    #[test]
    fn quiet_catch_captures_panic_and_message() {
        let outcome = crate::test_runner::quiet_catch(|| panic!("boom {}", 42));
        let payload = outcome.expect_err("must panic");
        assert_eq!(
            crate::test_runner::panic_message(payload.as_ref()),
            "boom 42"
        );
        // And a clean run passes the value through.
        assert_eq!(crate::test_runner::quiet_catch(|| 7).ok(), Some(7));
    }

    proptest! {
        #[test]
        #[should_panic(expected = "minimal input: (10,)")]
        fn failing_property_is_minimized_before_reporting(x in 0u64..100) {
            // Fails for every x >= 10; the macro must shrink whatever
            // case trips first down to exactly 10.
            prop_assert!(x < 10);
        }
    }
}
