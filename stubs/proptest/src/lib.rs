//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! range/tuple/vec/select/oneof/option/bool strategies, `prop_map`, and
//! the `TestRunner`/`ValueTree` escape hatch.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   case number; reproduce it by re-running the test (generation is a
//!   pure function of the test name and case index).
//! * **Deterministic.** There is no OS entropy; every run of a given
//!   binary explores the same cases. `.proptest-regressions` files are
//!   ignored.
//! * **Regex string strategies** support only the `\PC{lo,hi}` shape the
//!   workspace uses (arbitrary printable strings with bounded length);
//!   any other pattern falls back to short alphanumeric strings.

pub mod bool;
pub mod collection;
pub mod option;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` module alias used inside `proptest!` bodies.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Deterministic seed for a named test case: FNV-1a over the test path,
/// mixed with the case index.
pub fn seed_for(test_path: &str, case: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The macro behind every property test: runs the body over `cases`
/// deterministic samples of the argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        @impl ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..u64::from(config.cases) {
                    let mut rng =
                        $crate::rng::TestRng::from_seed($crate::seed_for(path, case));
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(&$strategy, &mut rng),)+
                    );
                    $body
                }
            }
        )*
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Assert inside a property test. Panics (no shrinking) with the message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Choose uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    #[test]
    fn seeds_differ_across_cases_and_names() {
        assert_ne!(crate::seed_for("a::b", 0), crate::seed_for("a::b", 1));
        assert_ne!(crate::seed_for("a::b", 0), crate::seed_for("a::c", 0));
        assert_eq!(crate::seed_for("a::b", 7), crate::seed_for("a::b", 7));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 10u64..20,
            f in 0.5f64..2.0,
            v in prop::collection::vec(0i64..5, 1..10),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&i| (0..5).contains(&i)));
        }

        #[test]
        fn oneof_and_map_compose(
            s in prop_oneof![
                (0u32..5).prop_map(|n| format!("lo{n}")),
                (100u32..105).prop_map(|n| format!("hi{n}")),
            ],
        ) {
            prop_assert!(s.starts_with("lo") || s.starts_with("hi"));
        }
    }

    #[test]
    fn new_tree_escape_hatch_samples() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let strategy = prop::collection::vec(0u8..10, 3..=3);
        let value = strategy.new_tree(&mut runner).expect("samples").current();
        assert_eq!(value.len(), 3);
        assert!(value.iter().all(|&b| b < 10));
    }

    #[test]
    fn select_weighted_option_cover_their_domains() {
        let mut rng = crate::rng::TestRng::from_seed(3);
        let select = prop::sample::select(vec!["a", "b"]);
        let weighted = prop::bool::weighted(0.5);
        let opt = prop::option::of(0u32..3);
        let mut saw = std::collections::HashSet::new();
        for _ in 0..200 {
            saw.insert(select.generate(&mut rng).to_string());
            let _ = weighted.generate(&mut rng);
            let _ = opt.generate(&mut rng);
        }
        assert_eq!(saw.len(), 2);
    }

    proptest! {
        #[test]
        fn regex_like_strings_respect_bounds(s in "\\PC{0,30}") {
            prop_assert!(s.chars().count() <= 30);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}
