//! Sampling strategies: `prop::sample::select`.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Uniform choice from a fixed list.
///
/// # Panics
/// Panics if `options` is empty, like upstream proptest.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty list");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + PartialEq> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len());
        match self.options.get(pick) {
            Some(value) => value.clone(),
            None => unreachable!("below() stays in bounds"),
        }
    }
    /// Earlier options are simpler (upstream's convention: order your
    /// `select` list from most to least trivial).
    fn shrink(&self, value: &T) -> Vec<T> {
        self.options
            .iter()
            .take_while(|option| *option != value)
            .cloned()
            .collect()
    }
}
