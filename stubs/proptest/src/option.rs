//! Option strategies: `prop::option::of`.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// `Some(inner)` three times out of four, `None` otherwise (the upstream
/// default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
    /// `None` first (simplest), then the inner strategy's shrinks kept
    /// inside `Some`.
    fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
        match value {
            None => Vec::new(),
            Some(inner) => std::iter::once(None)
                .chain(self.inner.shrink(inner).into_iter().map(Some))
                .collect(),
        }
    }
}
