//! Collection strategies: `prop::collection::vec`.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Length bounds for a generated collection (inclusive).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            lo: range.start,
            hi: range.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            lo: *range.start(),
            hi: *range.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.below(span.max(1)) % span.max(1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
    /// Structural shrinks first (drop each element, if still above the
    /// minimum length), then element-wise shrinks in place.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        if value.len() > self.size.lo {
            for skip in 0..value.len() {
                out.push(
                    value
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != skip)
                        .map(|(_, v)| v.clone())
                        .collect(),
                );
            }
        }
        for (i, element) in value.iter().enumerate() {
            for smaller in self.element.shrink(element) {
                let mut candidate = value.clone();
                if let Some(slot) = candidate.get_mut(i) {
                    *slot = smaller;
                    out.push(candidate);
                }
            }
        }
        out
    }
}
