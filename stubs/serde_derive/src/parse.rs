//! Minimal item parser: walks the derive input token stream and extracts the
//! type name, the `#[serde(transparent)]` flag, and the field/variant
//! layout. Types are skipped, not parsed — the generated code never needs
//! them (field types are inferred at the construction site).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input.
pub struct Input {
    /// Type name.
    pub name: String,
    /// `#[serde(transparent)]` present on the item.
    pub transparent: bool,
    /// Item layout.
    pub kind: Kind,
}

/// Layout of the derived item.
pub enum Kind {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — field count.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

/// One enum variant.
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Variant payload shape.
    pub shape: Shape,
}

/// Payload shape of an enum variant.
pub enum Shape {
    /// `V`
    Unit,
    /// `V(A, B)` — field count.
    Tuple(usize),
    /// `V { a: A }` — field names.
    Named(Vec<String>),
}

/// Parse a derive input stream.
pub fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let transparent = skip_attrs_checking_transparent(&tokens, &mut pos)?;
    skip_visibility(&tokens, &mut pos);

    let item_kw = expect_any_ident(&tokens, &mut pos)?;
    if item_kw != "struct" && item_kw != "enum" {
        return Err(format!("expected `struct` or `enum`, found `{item_kw}`"));
    }
    let name = expect_any_ident(&tokens, &mut pos)?;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the serde_derive stub"
        ));
    }

    let kind = if item_kw == "struct" {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => {
                return Err(format!("unsupported struct body: {other:?}"));
            }
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        }
    };

    Ok(Input {
        name,
        transparent,
        kind,
    })
}

/// Skip leading attributes; report whether any was `#[serde(transparent)]`.
fn skip_attrs_checking_transparent(tokens: &[TokenTree], pos: &mut usize) -> Result<bool, String> {
    let mut transparent = false;
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if attr_is_serde_transparent(g.stream()) {
                    transparent = true;
                }
                *pos += 1;
            }
            other => return Err(format!("malformed attribute: {other:?}")),
        }
    }
    Ok(transparent)
}

fn attr_is_serde_transparent(attr: TokenStream) -> bool {
    let mut tokens = attr.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "transparent")),
        _ => false,
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_any_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            Ok(i.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Skip a type (or discriminant expression) up to a top-level `,`. Only
/// `<`/`>` need depth tracking — grouped delimiters arrive pre-matched.
fn skip_to_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth: i32 = 0;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Field names of a named-field body (struct or struct variant).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_checking_transparent(&tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let field = expect_any_ident(&tokens, &mut pos)?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field `{field}`: {other:?}")),
        }
        skip_to_comma(&tokens, &mut pos);
        pos += 1; // consume the comma (or run off the end)
        fields.push(field);
    }
    Ok(fields)
}

/// Number of fields in a tuple body `(A, B, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_to_comma(&tokens, &mut pos);
        pos += 1;
        count += 1;
    }
    count
}

/// Variants of an enum body.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_checking_transparent(&tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        let name = expect_any_ident(&tokens, &mut pos)?;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant, then the trailing comma.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            skip_to_comma(&tokens, &mut pos);
        }
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            None => {}
            other => return Err(format!("expected `,` after variant `{name}`: {other:?}")),
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}
