//! Offline stand-in for `serde_derive`.
//!
//! The real crate parses items with `syn` and emits visitor plumbing with
//! `quote`; neither is available in this hermetic build, so this macro walks
//! the raw [`proc_macro::TokenStream`] by hand and emits source as strings.
//! It supports exactly the item shapes this workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged);
//! * the `#[serde(transparent)]` attribute;
//! * no generic parameters (the workspace derives only on concrete types).
//!
//! JSON conventions mirror upstream serde: newtype structs serialize as
//! their payload, unit variants as strings, data variants as single-key
//! maps.

use proc_macro::TokenStream;

mod parse;

use parse::{Input, Kind, Shape};

/// Derive the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse::parse(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    render(&serialize_impl(&item))
}

/// Derive the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse::parse(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    render(&deserialize_impl(&item))
}

fn render(src: &str) -> TokenStream {
    src.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde_derive stub produced invalid Rust: {e}")))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", format!("serde_derive stub: {msg}"))
        .parse()
        .unwrap_or_else(|_| TokenStream::new())
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn serialize_impl(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_model(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_model(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_model(&self.{})", fields[0])
        }
        Kind::NamedStruct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_model(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", pushes.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from({vn:?})),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Serialize::to_model(f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_model(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => \
                                 ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Seq(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_model({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Map(::std::vec![{pairs}]))]),",
                                pairs = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_model(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn deserialize_impl(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "match v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(\
                     ::serde::DeError::TypeMismatch(\"null\", other.kind())),\n\
             }}"
        ),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_model(v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_model(\
                         ::serde::seq_item(items, {i}, {name:?})?)?"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Seq(items) => ::std::result::Result::Ok(\
                         {name}({items})),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::DeError::TypeMismatch(\"array\", other.kind())),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Kind::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!(
                "::std::result::Result::Ok({name} {{ {field}: \
                 ::serde::Deserialize::from_model(v)? }})",
                field = fields[0]
            )
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(fields__, {f:?})?"))
                .collect();
            format!(
                "let fields__ = ::serde::struct_body(v, {name:?})?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    let path = format!("{name}::{vn}");
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({path}(\
                             ::serde::Deserialize::from_model(_payload)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_model(\
                                         ::serde::seq_item(items, {i}, {path:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => match _payload {{\n\
                                     ::serde::Value::Seq(items) => \
                                         ::std::result::Result::Ok({path}({items})),\n\
                                     other => ::std::result::Result::Err(\
                                         ::serde::DeError::TypeMismatch(\
                                         \"array\", other.kind())),\n\
                                 }},",
                                items = items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(fields__, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let fields__ = \
                                         ::serde::struct_body(_payload, {path:?})?;\n\
                                     ::std::result::Result::Ok({path} {{ {} }})\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(\
                             ::serde::DeError::UnknownVariant(\
                             {name:?}, other.to_string())),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, _payload) = match entries.first() {{\n\
                             ::std::option::Option::Some(entry) => \
                                 (&entry.0, &entry.1),\n\
                             ::std::option::Option::None => ::std::unreachable!(),\n\
                         }};\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::UnknownVariant(\
                                 {name:?}, other.to_string())),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(\
                         ::serde::DeError::TypeMismatch(\
                         \"enum tag\", other.kind())),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_model(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
