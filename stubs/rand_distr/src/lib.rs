//! Offline stand-in for the `rand_distr` crate.
//!
//! Implements only what the workspace samples: the log-normal distribution
//! used by the Lustre-style file-size synthesizer (`activedr-trace`) and
//! the stripe-size model (`activedr-fs`). Normal deviates come from the
//! Box–Muller transform — slower than the real crate's ziggurat but exact
//! in distribution and fully deterministic given the seeded [`rand`] stub.

use rand::RngCore;

/// Types which can be sampled from, given an RNG. Mirrors
/// `rand_distr::Distribution`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters. Mirrors `rand_distr::NormalError`
/// loosely: one opaque error type for every constructor in this stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error {
    what: &'static str,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for Error {}

/// Log-normal distribution: `exp(mu + sigma * Z)` with `Z ~ N(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Construct from the mean (`mu`) and standard deviation (`sigma`) of
    /// the underlying normal.
    ///
    /// # Errors
    /// Rejects non-finite `mu` and negative or non-finite `sigma`, like
    /// upstream `rand_distr`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !mu.is_finite() {
            return Err(Error {
                what: "log-normal mu must be finite",
            });
        }
        if !(sigma >= 0.0 && sigma.is_finite()) {
            return Err(Error {
                what: "log-normal sigma must be finite and >= 0",
            });
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard normal deviate via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite; u2 in [0, 1).
    let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn median_is_roughly_exp_mu() {
        let dist = LogNormal::new(3.0, 0.8).expect("valid parameters");
        let mut rng = StdRng::seed_from_u64(5);
        let mut samples: Vec<f64> = (0..4001).map(|_| dist.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[2000];
        let expected = 3.0f64.exp();
        assert!(
            (median / expected).ln().abs() < 0.15,
            "median {median} too far from {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let dist = LogNormal::new(1.0, 0.5).expect("valid parameters");
        let a: Vec<f64> = (0..10)
            .map(|_| dist.sample(&mut StdRng::seed_from_u64(9)))
            .collect();
        let b: Vec<f64> = (0..10)
            .map(|_| dist.sample(&mut StdRng::seed_from_u64(9)))
            .collect();
        assert_eq!(a, b);
    }
}
