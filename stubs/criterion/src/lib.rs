//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! This vendored stub exists because the build environment has no network
//! access, so the real crates.io `criterion` cannot be fetched. It keeps the
//! same API surface the workspace benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) so the bench sources compile and run
//! unmodified, but it does **not** attempt criterion's statistical analysis:
//! each benchmark is a short fixed-iteration wall-clock measurement printed
//! to stdout. Treat the numbers as smoke-test output, not publishable
//! measurements.

use std::fmt::Display;
use std::time::Instant;

/// Per-iteration work driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean wall-clock nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_nanos: f64,
}

impl Bencher {
    /// Run `routine` `self.iters` times and record the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        let total = start.elapsed();
        self.mean_nanos = total.as_secs_f64() * 1e9 / self.iters.max(1) as f64;
    }
}

/// Unit a benchmark's throughput is reported in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier, like upstream criterion.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// Top-level harness object passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Record the work-per-iteration unit used in the report line.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Upstream criterion uses this as the statistical sample count; the stub
    /// reuses it (capped) as the iteration count of its single measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measure `routine` and print one report line.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size.clamp(1, 30) as u64,
            mean_nanos: 0.0,
        };
        routine(&mut bencher);
        self.report(&id.id, bencher.mean_nanos);
        self
    }

    /// Measure `routine` with an input value and print one report line.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size.clamp(1, 30) as u64,
            mean_nanos: 0.0,
        };
        routine(&mut bencher, input);
        self.report(&id.id, bencher.mean_nanos);
        self
    }

    /// Close the group. (Upstream finalises reports here; the stub prints
    /// eagerly, so this only marks the boundary in the output.)
    pub fn finish(&mut self) {
        println!("# group {} done", self.name);
    }

    fn report(&self, id: &str, mean_nanos: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_nanos > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / mean_nanos * 1e3)
            }
            Some(Throughput::Bytes(n)) if mean_nanos > 0.0 => {
                format!(
                    "  {:.3} MiB/s",
                    n as f64 / mean_nanos * 1e9 / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!("{}/{}  {:.1} ns/iter{}", self.name, id, mean_nanos, rate);
    }
}

/// Declare a benchmark group: `criterion_group!(benches, bench_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub_smoke");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1));
        group.bench_function("square", |b| b.iter(|| std::hint::black_box(7u64).pow(2)));
        group.bench_with_input(BenchmarkId::new("square_of", 9u64), &9u64, |b, &n| {
            b.iter(|| n * n);
        });
        group.finish();
    }

    criterion_group!(benches, bench_square);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("scan", 128).id, "scan/128");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
