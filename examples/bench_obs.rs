//! Smoke benchmark: instrumentation overhead, disabled vs enabled.
//!
//! ```text
//! cargo run --release -p activedr-obs --example bench_obs
//! ```
//!
//! Times the hot-path telemetry operations the replay engine leans on —
//! counter increment, span enter/exit, flight-recorder push, and the
//! per-day series sample — once against a **disabled** `Telemetry` (the
//! default every ordinary replay runs with) and once against an
//! **enabled** one. Writes `docs/results/BENCH_obs.json` (BENCH schema
//! v2, consumed by `cargo xtask perf`) and exits nonzero if any
//! disabled-path operation costs more than [`DISABLED_CEILING_NANOS`]
//! ns — the contract that telemetry-off replay is effectively
//! uninstrumented.

#![allow(
    clippy::unwrap_used,
    reason = "bench harness code may panic on a broken fixture"
)]
#![allow(
    clippy::cast_precision_loss,
    reason = "benchmark durations fit comfortably in f64"
)]

use activedr_obs::{BenchEmitter, Direction, MetricKind, Telemetry};
use std::hint::black_box;
use std::time::Instant;

/// A disabled-path op slower than this is a broken side-channel contract.
/// Generous on purpose: shared CI boxes jitter, and the real disabled cost
/// is a branch on an `Option` (single-digit ns at worst).
const DISABLED_CEILING_NANOS: f64 = 25.0;

/// Per-op nanoseconds for each of `reps` repetitions of `ops` iterations
/// of `f`. The watchdog's min-of-N discipline: the *minimum* is the
/// robust location estimate, but every sample is recorded so the
/// validator can recompute it.
fn per_op_samples(reps: u32, ops: u64, mut f: impl FnMut()) -> Vec<f64> {
    (0..reps)
        .map(|_| {
            // xtask-allow: determinism -- wall-clock benchmark probe
            let start = Instant::now();
            for _ in 0..ops {
                f();
            }
            start.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect()
}

fn min_of(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::MAX, f64::min)
}

struct Case {
    name: &'static str,
    disabled: Vec<f64>,
    enabled: Vec<f64>,
}

/// An enabled instance with an engine-like registry population, so the
/// series-sample cost is measured against a realistic column count.
fn populated_telemetry() -> Telemetry {
    let tele = Telemetry::on();
    for name in [
        "replay.reads",
        "replay.misses",
        "replay.writes",
        "recovery.restages_completed",
        "recovery.restage_bytes",
        "retention.triggers_fired",
        "retention.purged_files",
        "retention.purged_bytes",
        "catalog.changelog_deltas",
        "catalog.scan_fallbacks",
    ] {
        tele.counter(name).add(7);
    }
    for name in [
        "catalog.changelog_depth",
        "catalog.buffer_depth",
        "catalog.net_pending_ratio_bp",
        "fs.final_files",
    ] {
        tele.gauge(name).set(11);
    }
    tele.histogram("retention.trigger_micros", &[100, 1_000, 10_000])
        .record(250);
    tele.histogram("retention.purged_bytes_per_trigger", &[1 << 20, 1 << 30])
        .record(1 << 22);
    tele
}

fn main() {
    let reps = 5u32;
    let off = Telemetry::off();
    let on = Telemetry::on();

    let counter_off = off.counter("bench.counter");
    let counter_on = on.counter("bench.counter");
    let series_on = populated_telemetry();
    let mut series_day = 0i64;
    let cases = vec![
        Case {
            name: "counter_inc",
            disabled: per_op_samples(reps, 10_000_000, || {
                black_box(&counter_off).inc();
            }),
            enabled: per_op_samples(reps, 10_000_000, || {
                black_box(&counter_on).inc();
            }),
        },
        Case {
            name: "span_enter_exit",
            disabled: per_op_samples(reps, 1_000_000, || {
                black_box(off.span("bench.span"));
            }),
            enabled: per_op_samples(reps, 1_000_000, || {
                black_box(on.span("bench.span"));
            }),
        },
        Case {
            name: "flight_push",
            disabled: per_op_samples(reps, 1_000_000, || {
                off.flight(0, "bench", || String::from("event"));
            }),
            enabled: per_op_samples(reps, 1_000_000, || {
                on.flight(0, "bench", || String::from("event"));
            }),
        },
        Case {
            // The disabled path must stay a single Option branch even
            // though the enabled path snapshots the whole registry; the
            // enabled cost is amortised once per replay *day*, not per
            // access, so tens of microseconds would still be invisible.
            name: "series_sample",
            disabled: per_op_samples(reps, 10_000_000, || {
                off.sample_day(black_box(0));
            }),
            enabled: per_op_samples(reps, 10_000, || {
                series_on.sample_day(series_day);
                series_day += 1;
            }),
        },
    ];

    let mut emitter = BenchEmitter::new("obs", u64::from(reps));
    emitter.metric(
        "disabled_ceiling_nanos",
        MetricKind::Info,
        Direction::Neutral,
        DISABLED_CEILING_NANOS,
        "ns",
    );
    for case in &cases {
        let disabled_name = format!("{}_disabled_nanos", case.name);
        emitter.metric(
            &disabled_name,
            MetricKind::Time,
            Direction::LowerBetter,
            min_of(&case.disabled),
            "ns",
        );
        emitter.samples_for(&disabled_name, "ns", &case.disabled);
        let enabled_name = format!("{}_enabled_nanos", case.name);
        emitter.metric(
            &enabled_name,
            MetricKind::Time,
            Direction::LowerBetter,
            min_of(&case.enabled),
            "ns",
        );
        emitter.samples_for(&enabled_name, "ns", &case.enabled);
    }

    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/results/BENCH_obs.json"
    );
    std::fs::write(out, emitter.to_json()).unwrap();

    println!("telemetry overhead benchmark (best of {reps} reps)");
    for case in &cases {
        println!(
            "  {:<16} disabled {:>7.2} ns/op   enabled {:>8.2} ns/op",
            case.name,
            min_of(&case.disabled),
            min_of(&case.enabled)
        );
    }
    println!("  wrote {out}");

    for case in &cases {
        assert!(
            min_of(&case.disabled) <= DISABLED_CEILING_NANOS,
            "disabled {} costs {:.2} ns/op, over the {DISABLED_CEILING_NANOS} ns ceiling",
            case.name,
            min_of(&case.disabled)
        );
    }
}
