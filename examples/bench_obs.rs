//! Smoke benchmark: instrumentation overhead, disabled vs enabled.
//!
//! ```text
//! cargo run --release -p activedr-obs --example bench_obs
//! ```
//!
//! Times the three hot-path telemetry operations the replay engine leans
//! on — counter increment, span enter/exit, flight-recorder push — once
//! against a **disabled** `Telemetry` (the default every ordinary replay
//! runs with) and once against an **enabled** one. Writes
//! `docs/results/BENCH_obs.json` and exits nonzero if any disabled-path
//! operation costs more than [`DISABLED_CEILING_NANOS`] ns — the contract
//! that telemetry-off replay is effectively uninstrumented.
//!
//! The JSON is hand-rolled because `activedr-obs` deliberately has zero
//! dependencies, stub or otherwise.

#![allow(
    clippy::unwrap_used,
    reason = "bench harness code may panic on a broken fixture"
)]
#![allow(
    clippy::cast_precision_loss,
    reason = "benchmark durations fit comfortably in f64"
)]

use activedr_obs::Telemetry;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// A disabled-path op slower than this is a broken side-channel contract.
/// Generous on purpose: shared CI boxes jitter, and the real disabled cost
/// is a branch on an `Option` (single-digit ns at worst).
const DISABLED_CEILING_NANOS: f64 = 25.0;

/// Best-of-`reps` per-op nanoseconds for `ops` iterations of `f`.
fn per_op_nanos(reps: u32, ops: u64, mut f: impl FnMut()) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        // xtask-allow: determinism -- wall-clock benchmark probe
        let start = Instant::now();
        for _ in 0..ops {
            f();
        }
        best = best.min(start.elapsed());
    }
    best.as_nanos() as f64 / ops as f64
}

struct Case {
    name: &'static str,
    disabled_nanos: f64,
    enabled_nanos: f64,
}

fn main() {
    let reps = 5u32;
    let off = Telemetry::off();
    let on = Telemetry::on();

    let counter_off = off.counter("bench.counter");
    let counter_on = on.counter("bench.counter");
    let cases = vec![
        Case {
            name: "counter_inc",
            disabled_nanos: per_op_nanos(reps, 10_000_000, || {
                black_box(&counter_off).inc();
            }),
            enabled_nanos: per_op_nanos(reps, 10_000_000, || {
                black_box(&counter_on).inc();
            }),
        },
        Case {
            name: "span_enter_exit",
            disabled_nanos: per_op_nanos(reps, 1_000_000, || {
                black_box(off.span("bench.span"));
            }),
            enabled_nanos: per_op_nanos(reps, 1_000_000, || {
                black_box(on.span("bench.span"));
            }),
        },
        Case {
            name: "flight_push",
            disabled_nanos: per_op_nanos(reps, 1_000_000, || {
                off.flight(0, "bench", || String::from("event"));
            }),
            enabled_nanos: per_op_nanos(reps, 1_000_000, || {
                on.flight(0, "bench", || String::from("event"));
            }),
        },
    ];

    let mut json =
        String::from("{\n  \"reps\": 5,\n  \"disabled_ceiling_nanos\": 25.0,\n  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"disabled_nanos\": {:.2}, \"enabled_nanos\": {:.2}}}{}",
            case.name,
            case.disabled_nanos,
            case.enabled_nanos,
            if i + 1 < cases.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/results/BENCH_obs.json"
    );
    std::fs::write(out, &json).unwrap();

    println!("telemetry overhead benchmark (best of {reps} reps)");
    for case in &cases {
        println!(
            "  {:<16} disabled {:>7.2} ns/op   enabled {:>8.2} ns/op",
            case.name, case.disabled_nanos, case.enabled_nanos
        );
    }
    println!("  wrote {out}");

    for case in &cases {
        assert!(
            case.disabled_nanos <= DISABLED_CEILING_NANOS,
            "disabled {} costs {:.2} ns/op, over the {DISABLED_CEILING_NANOS} ns ceiling",
            case.name,
            case.disabled_nanos
        );
    }
}
