//! A system administrator's ActiveDR deployment, end to end:
//! configure activity types once, run the weekly retention loop with the
//! streaming evaluator, honour reservations, and read the §3.4 digest.
//!
//! ```text
//! cargo run --release --example admin_workflow
//! ```

#![allow(
    clippy::unwrap_used,
    reason = "example code: unwrap keeps the walkthrough focused on the API"
)]
#![allow(
    clippy::cast_possible_truncation,
    reason = "example code: unwrap keeps the walkthrough focused on the API"
)]

use activedr_core::prelude::*;
use activedr_fs::{ExemptionList, Snapshot, VirtualFs};

fn main() {
    // -- one-time setup ---------------------------------------------------
    // This site tracks jobs and data transfers as operations, publications
    // as outcomes, weighting transfers down (they are cheap to generate).
    let mut registry = ActivityTypeRegistry::new();
    let job = registry.register(ActivityTypeSpec::new(
        "job_submission",
        ActivityClass::Operation,
    ));
    let transfer = registry.register(
        ActivityTypeSpec::new("data_transfer", ActivityClass::Operation).with_weight(0.25),
    );
    let publication =
        registry.register(ActivityTypeSpec::new("publication", ActivityClass::Outcome));

    let config = ActivenessConfig::year_window(30);
    let mut evaluator = StreamingEvaluator::new(registry.clone(), config);

    // The site's reservation list, maintained through tickets.
    let exemptions = ExemptionList::from_lines(
        "# ticket 881: instrument calibration tables\n/scratch/u2/calib/\n".lines(),
    );

    // -- the scratch system -----------------------------------------------
    let mut fs = VirtualFs::with_capacity(100 << 30);
    let day0 = Timestamp::from_days(0);
    for (path, owner, gib) in [
        ("/scratch/u1/run/alpha.h5", 1u32, 20u64),
        ("/scratch/u1/run/beta.h5", 1, 20),
        ("/scratch/u2/calib/tables.bin", 2, 10),
        ("/scratch/u2/old/stale.dat", 2, 25),
        ("/scratch/u3/leftover/core.dump", 3, 30),
    ] {
        fs.create(path, UserId(owner), gib << 30, day0).unwrap();
        evaluator.register_user(UserId(owner));
    }
    println!(
        "day 0: {} files, {:.0}% utilization",
        fs.file_count(),
        fs.utilization() * 100.0
    );

    // -- activity flows in as it happens ----------------------------------
    // u1 computes weekly; u2 published recently; u3 is gone.
    for week in 0..16 {
        evaluator.observe(ActivityEvent::new(
            UserId(1),
            job,
            Timestamp::from_days(7 * week),
            4096.0,
        ));
    }
    evaluator.observe(ActivityEvent::new(
        UserId(2),
        publication,
        Timestamp::from_days(100),
        (30 + 1) as f64,
    ));
    evaluator.observe(ActivityEvent::new(
        UserId(2),
        transfer,
        Timestamp::from_days(105),
        64.0, // GiB moved
    ));

    // -- the weekly retention cron job ------------------------------------
    let policy = ActiveDrPolicy::new(RetentionConfig::new(90));
    let tc = Timestamp::from_days(112);
    let table = evaluator.evaluate(tc);
    println!("\nactiveness at {tc}:");
    for u in [1u32, 2, 3] {
        let a = table.get(UserId(u));
        println!("  u{u}: {} (op {}, oc {})", Quadrant::of(a), a.op, a.oc);
    }

    // Free 40 GiB to get back under the watermark.
    let catalog = fs.catalog(&exemptions);
    let outcome = policy.run(PurgeRequest {
        tc,
        catalog: &catalog,
        activeness: &table,
        target_bytes: Some(40 << 30),
    });
    // Resolve paths before applying — ids die with their files.
    let purged_paths: Vec<(String, UserId)> = outcome
        .purged
        .iter()
        .map(|p| (fs.path_of(activedr_fs::NodeId(p.id.0 as u32)), p.user))
        .collect();
    fs.apply(&outcome);
    println!(
        "\npurge at {tc}: {} files / {} bytes, target met: {}, exempt skipped: {}",
        outcome.purged_files(),
        outcome.purged_bytes,
        outcome.target_met,
        outcome.exempt_skipped
    );
    for (path, user) in &purged_paths {
        println!("  purged {path} of {user}");
    }
    if !outcome.target_met {
        println!("  (target unreachable without touching active users' data — reported)");
    }

    // -- weekly snapshot for audit ----------------------------------------
    let snapshot = Snapshot::capture(&fs, tc);
    let mut buf = Vec::new();
    snapshot.write_jsonl(&mut buf).unwrap();
    println!(
        "\nweekly snapshot: {} files, {} bytes, {} bytes of JSONL archived",
        snapshot.len(),
        snapshot.total_bytes(),
        buf.len()
    );

    // -- a user moves a reserved file: the reservation lapses --------------
    fs.rename(
        "/scratch/u2/calib/tables.bin",
        "/scratch/u2/moved/tables.bin",
    )
    .unwrap();
    println!(
        "\nu2 moved their calibration tables; still exempt? {} (per the §3.4 contract)",
        exemptions.is_exempt("/scratch/u2/moved/tables.bin")
    );
}
