//! Smoke benchmark: durable-catalog overhead and recovery cost.
//!
//! ```text
//! cargo run --release --example bench_wal
//! ```
//!
//! Measures the three costs the WAL + checkpoint + recovery layer adds
//! to an incremental-catalog replay, plus the property the layer exists
//! for:
//!
//! * **WAL append overhead** — a full durable replay (write-ahead logged
//!   batches, flush marks, periodic checkpoints) against the identical
//!   in-memory replay; the ratio is the whole-run durability tax;
//! * **checkpoint write time** — one compact cut of the end-of-run
//!   `(index, buffer)` pair;
//! * **recovery time vs WAL-tail length** — `recover()` against
//!   directories whose checkpoint trails the log by a growing number of
//!   records, charting the checkpoint-cadence trade-off;
//! * **recovery identity** — replays killed at trigger boundaries and at
//!   a mid-write byte offset must recover to results identical to the
//!   uninterrupted run; the fraction that do is a gated ratio (1.0 or
//!   the crash-safety contract is broken).
//!
//! Writes `docs/results/BENCH_wal.json` (BENCH schema v2, consumed by
//! `cargo xtask perf`) and exits nonzero if any crash point fails to
//! recover identically or the durability tax exceeds its ceiling.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    reason = "bench harness code may panic on a broken fixture"
)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    reason = "benchmark durations fit comfortably in the narrower types"
)]

use activedr_core::time::Timestamp;
use activedr_core::user::UserId;
use activedr_fs::storage::{recover, write_checkpoint, Wal, WalPayload};
use activedr_fs::{
    CatalogIndex, DeltaBuffer, DurabilityConfig, ExemptionList, FsyncPolicy, InjectedCrash,
    VirtualFs,
};
use activedr_obs::{BenchEmitter, Direction, MetricKind};
use activedr_sim::{run_until, CatalogMode, Scale, Scenario, SimConfig, SimResult};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A unique scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("activedr-bench-wal-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Minimum wall time of `iters` runs of `f`.
fn min_time<T>(iters: u32, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        // xtask-allow: determinism -- wall-clock benchmark probe
        let start = std::time::Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// The replay fingerprint with the wall-clock micros (the one
/// nondeterministic output) zeroed.
fn digest(result: &SimResult) -> String {
    let mut r = result.clone();
    for ev in &mut r.retentions {
        ev.eval_micros = 0;
        ev.scan_micros = 0;
        ev.decision_micros = 0;
        ev.apply_micros = 0;
    }
    let mut quadrants: Vec<(UserId, _)> = r.final_quadrants.drain().collect();
    quadrants.sort_by_key(|(u, _)| *u);
    format!(
        "{:?} {:?} {} {} {quadrants:?} {:?}",
        r.daily, r.retentions, r.final_used, r.final_files, r.archive
    )
}

/// Build a WAL directory whose checkpoint covers nothing and whose log
/// holds `records` churn batches, returning the batch sizes.
fn build_wal_tail(dir: &Path, records: u64) -> u64 {
    let fs = VirtualFs::with_capacity(1 << 40);
    let ex = ExemptionList::new();
    let index = CatalogIndex::from_fs(&fs, &ex);
    let buffer = DeltaBuffer::with_capacity(1 << 16);
    write_checkpoint(dir, 0, &index, &buffer, FsyncPolicy::Never).expect("checkpoint 0");
    let mut wal = Wal::open_for_append(dir, FsyncPolicy::Never, 1).expect("open wal");
    let mut churn_fs = VirtualFs::with_capacity(1 << 40);
    churn_fs.enable_changelog();
    let mut deltas_logged = 0u64;
    for day in 0..i64::try_from(records).unwrap() {
        let user = UserId(1 + (day % 5) as u32);
        for f in 0..8 {
            churn_fs
                .create(
                    &format!("/u{}/d{day}/f{f}", user.0),
                    user,
                    4096 + day as u64,
                    Timestamp::from_days(day),
                )
                .expect("create");
        }
        if day % 3 == 2 {
            churn_fs.remove(&format!("/u{}/d{}/f0", 1 + ((day - 1) % 5), day - 1));
        }
        let batch = churn_fs.drain_changelog();
        deltas_logged += batch.len() as u64;
        wal.append_record(&WalPayload::Batch(batch))
            .expect("append");
    }
    deltas_logged
}

fn main() {
    let iters = 5u32;
    let scenario = Scenario::build(Scale::Tiny, 42);
    let start = i64::from(scenario.traces.replay_start_day);
    let until = Some(start + 12 * 7 + 1); // 12 trigger boundaries
    let base = SimConfig::activedr(30).with_catalog_mode(CatalogMode::Incremental);

    // 1. The durability tax: identical replay, with and without the WAL.
    let plain = min_time(iters, || {
        run_until(&scenario.traces, scenario.initial_fs.clone(), &base, until).0
    });
    let durable_scratch = ScratchDir::new("replay");
    let durable = min_time(iters, || {
        std::fs::remove_dir_all(durable_scratch.path()).ok();
        let cfg = base.clone().with_durability(
            DurabilityConfig::new(durable_scratch.path()).with_checkpoint_every(4),
        );
        run_until(&scenario.traces, scenario.initial_fs.clone(), &cfg, until).0
    });
    let overhead = durable.as_nanos() as f64 / plain.as_nanos().max(1) as f64;

    // 2. Crash-point identity: kill at trigger boundaries and mid-write.
    let golden_dir = ScratchDir::new("golden");
    let golden_cfg = base
        .clone()
        .with_durability(DurabilityConfig::new(golden_dir.path()).with_checkpoint_every(4));
    let golden = digest(
        &run_until(
            &scenario.traces,
            scenario.initial_fs.clone(),
            &golden_cfg,
            until,
        )
        .0,
    );
    let wal_len = std::fs::metadata(golden_dir.path().join("wal.log"))
        .expect("golden wal")
        .len();
    let crash_points: Vec<InjectedCrash> = vec![
        InjectedCrash::AtTrigger(1),
        InjectedCrash::AtTrigger(5),
        InjectedCrash::AtTrigger(11),
        InjectedCrash::AtWalByte(wal_len / 3),
        InjectedCrash::AtWalByte(2 * wal_len / 3),
    ];
    let mut identical = 0u32;
    for (i, crash) in crash_points.iter().enumerate() {
        let scratch = ScratchDir::new(&format!("crash-{i}"));
        let cfg = base.clone().with_durability(
            DurabilityConfig::new(scratch.path())
                .with_checkpoint_every(4)
                .with_injected_crash(*crash),
        );
        let res = run_until(&scenario.traces, scenario.initial_fs.clone(), &cfg, until).0;
        if digest(&res) == golden {
            identical += 1;
        } else {
            eprintln!("crash point {crash:?} did NOT recover identically");
        }
    }
    let recovery_identity = f64::from(identical) / crash_points.len() as f64;

    // 3. Checkpoint write time of the end-of-run state.
    let (_, end_fs) = run_until(&scenario.traces, scenario.initial_fs.clone(), &base, until);
    let ex = ExemptionList::new();
    let end_index = CatalogIndex::from_fs(&end_fs, &ex);
    let end_buffer = DeltaBuffer::with_capacity(1 << 16);
    let ckpt_scratch = ScratchDir::new("ckpt");
    let checkpoint = min_time(iters, || {
        write_checkpoint(
            ckpt_scratch.path(),
            0,
            &end_index,
            &end_buffer,
            FsyncPolicy::Never,
        )
        .expect("checkpoint")
    });

    // 4. Recovery time as the WAL tail grows past the last checkpoint.
    let tail_lengths = [0u64, 16, 64, 256];
    let mut recovery_micros = Vec::new();
    for &records in &tail_lengths {
        let scratch = ScratchDir::new(&format!("tail-{records}"));
        build_wal_tail(scratch.path(), records);
        let t = min_time(iters, || {
            recover(scratch.path(), 1 << 16, &ex)
                .expect("recover")
                .expect("checkpoint present")
                .stats
                .replayed_records
        });
        recovery_micros.push(t.as_micros() as f64);
    }

    // BENCH schema v2: ratio metrics gate on every machine, time metrics
    // only against a matching env fingerprint, info metrics never.
    let mut emitter = BenchEmitter::new("wal", u64::from(iters));
    emitter.metric(
        "recovery_identity",
        MetricKind::Ratio,
        Direction::HigherBetter,
        recovery_identity,
        "fraction",
    );
    // Info, not Ratio: whole-run wall time at Tiny scale is dominated by
    // replay work measured in milliseconds, so the tax ratio jitters with
    // scheduler noise. The hard assert below enforces the ceiling.
    emitter.metric(
        "wal_overhead_x",
        MetricKind::Info,
        Direction::Neutral,
        overhead,
        "x",
    );
    emitter.metric(
        "plain_replay_micros",
        MetricKind::Time,
        Direction::LowerBetter,
        plain.as_micros() as f64,
        "us",
    );
    emitter.metric(
        "durable_replay_micros",
        MetricKind::Time,
        Direction::LowerBetter,
        durable.as_micros() as f64,
        "us",
    );
    emitter.metric(
        "checkpoint_write_micros",
        MetricKind::Time,
        Direction::LowerBetter,
        checkpoint.as_micros() as f64,
        "us",
    );
    emitter.metric(
        "recovery_tail256_micros",
        MetricKind::Time,
        Direction::LowerBetter,
        *recovery_micros.last().unwrap(),
        "us",
    );
    emitter.metric(
        "wal_bytes",
        MetricKind::Info,
        Direction::Neutral,
        wal_len as f64,
        "bytes",
    );
    emitter.series(
        "recovery_micros_vs_tail_records",
        "us",
        &tail_lengths.iter().map(|&r| r as f64).collect::<Vec<f64>>(),
        &recovery_micros,
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/results/BENCH_wal.json"
    );
    std::fs::write(out, emitter.to_json()).unwrap();

    println!("durable catalog benchmark — Tiny scale, 12 trigger boundaries");
    println!(
        "  in-memory replay   : {:>10.1} µs",
        plain.as_nanos() as f64 / 1e3
    );
    println!(
        "  durable replay     : {:>10.1} µs  ({overhead:.2}x tax)",
        durable.as_nanos() as f64 / 1e3
    );
    println!(
        "  checkpoint write   : {:>10.1} µs ({} files)",
        checkpoint.as_nanos() as f64 / 1e3,
        end_index.file_count()
    );
    for (r, us) in tail_lengths.iter().zip(&recovery_micros) {
        println!("  recovery, {r:>4}-record tail: {us:>10.1} µs");
    }
    println!(
        "  crash recovery identity: {identical}/{} points",
        crash_points.len()
    );
    println!("  wrote {out}");

    assert!(
        (recovery_identity - 1.0).abs() < f64::EPSILON,
        "crash-safety contract broken: only {identical}/{} crash points \
         recovered to an identical result",
        crash_points.len()
    );
    // Ceiling, not target: the tax is the ratio of two small wall times
    // (a Tiny in-memory replay runs ~5 ms), so the fixed cost of
    // JSON-encoding each day's delta batch plus every-4th-trigger
    // full-index checkpoints reads large — ~5x here. The assert exists
    // to catch a runaway regression (an accidentally quadratic flush or
    // per-delta fsync), not to promise a production tax; at larger
    // scales the replay work grows and the ratio shrinks.
    assert!(
        overhead < 8.0,
        "durability tax {overhead:.2}x exceeds the 8x ceiling"
    );
}
