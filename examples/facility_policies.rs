//! Compare the Table 1 facility purge policies — and ActiveDR — on the
//! same synthetic scratch file system.
//!
//! ```text
//! cargo run --example facility_policies --release
//! ```
//!
//! Builds the standard synthetic scenario, replays it to the snapshot day
//! under a 90-day FLT regime, and then asks: if this state had to be
//! purged today, what would each facility's preset remove, and what would
//! ActiveDR remove to reach the same space target?

use activedr_core::prelude::*;
use activedr_fs::ExemptionList;
use activedr_sim::{run_until, Scale, Scenario, SimConfig};
use activedr_trace::activity_events;

fn main() {
    let scenario = Scenario::build(Scale::Small, 42);
    println!(
        "scenario: {} users, {} initial files, {} bytes capacity",
        scenario.traces.users.len(),
        scenario.traces.initial_files.len(),
        scenario.initial_fs.capacity()
    );

    // Age the file system to the snapshot day under the OLCF production
    // regime.
    let (_, fs) = run_until(
        &scenario.traces,
        scenario.initial_fs.clone(),
        &SimConfig::flt(90),
        Some(scenario.snapshot_day()),
    );
    let tc = Timestamp::from_days(scenario.snapshot_day());
    let catalog = fs.catalog(&ExemptionList::new());
    println!(
        "snapshot day {}: {} files, {:.1}% of capacity used\n",
        scenario.snapshot_day(),
        catalog.total_files(),
        100.0 * fs.used_bytes() as f64 / fs.capacity() as f64
    );

    // What each facility's fixed-lifetime preset would purge.
    let empty_table = ActivenessTable::new();
    println!(
        "{:<8} {:>10} {:>16} {:>16}",
        "site", "lifetime", "purged files", "purged bytes"
    );
    let mut flt90_purged = 0u64;
    for facility in Facility::ALL {
        let outcome = FltPolicy::facility(facility).run(PurgeRequest {
            tc,
            catalog: &catalog,
            activeness: &empty_table,
            target_bytes: None,
        });
        if facility == Facility::Olcf {
            flt90_purged = outcome.purged_bytes;
        }
        println!(
            "{:<8} {:>7}d {:>16} {:>16}",
            facility.name(),
            facility.lifetime().whole_days(),
            outcome.purged_files(),
            outcome.purged_bytes
        );
    }

    // ActiveDR reaching the same byte target as OLCF's FLT-90 — but from
    // the least active users first.
    let registry = ActivityTypeRegistry::paper_default();
    let evaluator = ActivenessEvaluator::new(registry.clone(), ActivenessConfig::year_window(90));
    let events = activity_events(&scenario.traces, &registry, tc);
    let table = evaluator.evaluate(tc, &scenario.traces.user_ids(), &events);
    let outcome = ActiveDrPolicy::new(RetentionConfig::new(90)).run(PurgeRequest {
        tc,
        catalog: &catalog,
        activeness: &table,
        target_bytes: Some(flt90_purged),
    });
    let breakdown = RetentionBreakdown::compute(&catalog, &table, &outcome);
    println!(
        "\nActiveDR reaching OLCF's target ({flt90_purged} bytes): purged {} bytes, target met: {}",
        outcome.purged_bytes, outcome.target_met
    );
    println!("per quadrant (users affected / bytes purged):");
    for q in Quadrant::ALL {
        let s = breakdown.get(q);
        println!(
            "  {:<24} {:>6} users  {:>16} bytes",
            q.name(),
            s.users_affected,
            s.purged_bytes
        );
    }
}
