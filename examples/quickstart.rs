//! Quickstart: evaluate user activeness and run one retention pass.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the whole ActiveDR pipeline on a hand-built world: register
//! activity types, feed `(time, impact)` events, classify users, and let
//! the policy decide which files to purge to reach a byte target.

#![allow(
    clippy::unwrap_used,
    reason = "example code: unwrap keeps the walkthrough focused on the API"
)]

use activedr_core::prelude::*;

fn main() {
    // -- 1. One-time administrator setup --------------------------------
    // The paper's evaluation uses job submissions (operations, impact =
    // core-hours) and publications (outcomes, impact = Eq. 8).
    let registry = ActivityTypeRegistry::paper_default();
    let job = registry.lookup("job_submission").unwrap();
    let publication = registry.lookup("publication").unwrap();

    // Weekly periods over a one-year window.
    let evaluator = ActivenessEvaluator::new(registry.clone(), ActivenessConfig::year_window(7));

    // -- 2. Activity history ---------------------------------------------
    // alice: computes every week and published recently (both active).
    // bob: one burst of jobs months ago (fading operation rank).
    // carol: no recorded activity at all (both inactive).
    let tc = Timestamp::from_days(400);
    let (alice, bob, carol) = (UserId(1), UserId(2), UserId(3));
    let mut events = Vec::new();
    for week in 0..52 {
        events.push(ActivityEvent::new(
            alice,
            job,
            tc - TimeDelta::from_days(7 * week + 1),
            2048.0, // core-hours
        ));
    }
    events.push(ActivityEvent::new(
        alice,
        publication,
        tc - TimeDelta::from_days(30),
        42.0,
    ));
    for day in [300, 305, 310] {
        events.push(ActivityEvent::new(
            bob,
            job,
            tc - TimeDelta::from_days(day),
            512.0,
        ));
    }

    let table = evaluator.evaluate(tc, &[alice, bob, carol], &events);
    println!("activeness ranks at {tc}:");
    for user in [alice, bob, carol] {
        let a = table.get(user);
        println!(
            "  {user}: op = {}, outcome = {}  ->  {}",
            a.op,
            a.oc,
            Quadrant::of(a)
        );
    }

    // -- 3. The file population ------------------------------------------
    // Everyone owns one fresh file and one 100-day-old file.
    let gib = 1u64 << 30;
    let catalog = Catalog::new(
        [alice, bob, carol]
            .iter()
            .enumerate()
            .map(|(i, &user)| {
                UserFiles::new(
                    user,
                    vec![
                        FileRecord::new(FileId(i as u64 * 2), gib, tc - TimeDelta::from_days(2)),
                        FileRecord::new(
                            FileId(i as u64 * 2 + 1),
                            gib,
                            tc - TimeDelta::from_days(100),
                        ),
                    ],
                )
            })
            .collect(),
    );

    // -- 4. Retention ------------------------------------------------------
    // Free 1 GiB with a 90-day initial lifetime. ActiveDR scans the
    // least-active users first, so carol's stale file goes and alice's
    // survive even though alice's old file is just as stale.
    let policy = ActiveDrPolicy::new(RetentionConfig::new(90));
    let outcome = policy.run(PurgeRequest {
        tc,
        catalog: &catalog,
        activeness: &table,
        target_bytes: Some(gib),
    });

    println!("\npurge decisions (target 1 GiB):");
    for p in &outcome.purged {
        println!("  purge {} of {} ({} bytes)", p.id, p.user, p.size);
    }
    println!(
        "target met: {}   purged: {} bytes   exempt skipped: {}",
        outcome.target_met, outcome.purged_bytes, outcome.exempt_skipped
    );

    // Compare with what FLT would have done: every 100-day-old file goes,
    // including the active user's.
    let flt = FltPolicy::days(90).run(PurgeRequest {
        tc,
        catalog: &catalog,
        activeness: &table,
        target_bytes: None,
    });
    println!(
        "\nFLT for comparison: {} files purged ({} of them owned by active users)",
        flt.purged.len(),
        flt.purged
            .iter()
            .filter(|p| Quadrant::of(table.get(p.user)) != Quadrant::BothInactive)
            .count()
    );
}
