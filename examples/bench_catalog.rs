//! Smoke benchmark: full-scan vs incremental catalog triggers.
//!
//! ```text
//! cargo run --release --example bench_catalog
//! ```
//!
//! Replays a `Small`-scale scenario two months in, then times the two ways
//! of producing the trigger-time catalog on the resulting state:
//!
//! * **full scan** — `VirtualFs::catalog`, the paper-prototype O(files)
//!   walk the engine performs at every trigger in `CatalogMode::FullScan`;
//! * **incremental, no change** — an empty-buffer `CatalogIndex::flush` +
//!   `snapshot`, the steady-state trigger cost in
//!   `CatalogMode::Incremental`;
//! * **incremental churn sweep** — the adaptive trigger at churn rates
//!   from 0 % to 100 % of the population, against a full scan of the
//!   same churned state. Six days of each week's deltas are pre-staged
//!   in the coalescing `DeltaBuffer` (the engine's end-of-day drains);
//!   the timed region absorbs the last day's tranche and then does what
//!   the engine does: below the `flush_beats_scan` crossover it flushes
//!   and snapshots, above it it serves the trigger from the same full
//!   walk the scan column measures (recorded as `mode:
//!   "scan-fallback"` with identical micros — same code, so racing it
//!   against itself would only chart timer noise). The sweep charts the
//!   crossover curve; the fix's whole point is that the *policy* never
//!   hands a trigger a slower catalog than the plain walk.
//!
//! Writes `docs/results/BENCH_catalog.json` (BENCH schema v2, consumed
//! by `cargo xtask perf`) and exits nonzero unless the no-change trigger
//! is at least 5× faster than the full scan, the week-churn (15 %) point
//! flushes and beats the full scan (the regression this benchmark exists
//! to pin: one-at-a-time application was 0.71× there), AND the trigger
//! is at least as fast as the full scan at **every** churn rate.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    reason = "bench harness code may panic on a broken fixture"
)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    reason = "benchmark durations fit comfortably in the narrower types"
)]

use activedr_core::time::Timestamp;
use activedr_core::user::UserId;
use activedr_fs::{
    diff_catalogs, flush_beats_scan, CatalogIndex, DeltaBuffer, ExemptionList, VirtualFs,
};
use activedr_obs::{BenchEmitter, Direction, MetricKind};
use activedr_sim::{run_until, Scale, Scenario, SimConfig};
use std::hint::black_box;
use std::time::Duration;

/// One point of the churn sweep: a week in which `churn_pct` % of the
/// population was touched/overwritten/removed (plus fresh arrivals).
struct SweepPoint {
    churn_pct: u64,
    /// Raw deltas the week recorded.
    raw_deltas: u64,
    /// Net deltas after coalescing — what the flush actually applies.
    net_deltas: usize,
    files_after: usize,
    /// What the adaptive trigger chose here: `"flush"` below the
    /// `flush_beats_scan` crossover, `"scan-fallback"` above it.
    mode: &'static str,
    full_scan_micros: u64,
    incremental_micros: u64,
    speedup: f64,
}

struct BenchReport {
    files: usize,
    users: usize,
    full_scan_micros: u64,
    incremental_nochange_micros: u64,
    incremental_week_churn_micros: u64,
    churn_deltas: u64,
    speedup_nochange: f64,
    speedup_week_churn: f64,
    churn_sweep: Vec<SweepPoint>,
}

/// Minimum wall time of `iters` runs of `f` (minimum, not mean: the
/// cleanest sample of a deterministic computation).
fn min_time<T>(iters: u32, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        // xtask-allow: determinism -- wall-clock benchmark probe
        let start = std::time::Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// [`min_time`] with per-iteration state built *outside* the timed
/// region (the incremental trigger consumes its input, so each sample
/// needs a fresh index + delta batch that must not be billed to it).
fn min_time_with_setup<S, T>(
    iters: u32,
    mut setup: impl FnMut() -> S,
    mut run: impl FnMut(S) -> T,
) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let state = setup();
        // xtask-allow: determinism -- wall-clock benchmark probe
        let start = std::time::Instant::now();
        black_box(run(state));
        best = best.min(start.elapsed());
    }
    best
}

/// Replay one synthetic week of mutations in which `pct` % of the files
/// are churned — evenly split between atime renewals, in-place
/// overwrites, and removals — and one fresh file arrives per eight
/// churned ones.
fn churn_one_week(fs: &mut VirtualFs, day: i64, pct: u64) {
    let population: Vec<(String, UserId)> = fs.iter().map(|(p, _, m)| (p, m.owner)).collect();
    for (i, (path, _)) in population.iter().enumerate() {
        if (i as u64) % 100 >= pct {
            continue;
        }
        match i % 3 {
            0 => {
                fs.access(path, Timestamp::from_days(day + (i as i64 % 7)));
            }
            1 => {
                let meta = *fs.meta(path).unwrap();
                fs.create(
                    path,
                    meta.owner,
                    meta.size / 2 + 1,
                    Timestamp::from_days(day),
                )
                .unwrap();
            }
            _ => {
                fs.remove(path).unwrap();
            }
        }
    }
    for (i, (path, owner)) in population.iter().enumerate() {
        if (i as u64) % 100 >= pct || i % 8 != 1 {
            continue;
        }
        fs.create(
            &format!("{path}.wk{}", i % 7),
            *owner,
            4096,
            Timestamp::from_days(day + 1),
        )
        .unwrap();
    }
}

/// Time one sweep point: full scan of the churned state vs the buffered
/// incremental trigger folding the week's deltas into a pre-churn index.
fn run_sweep_point(
    pct: u64,
    base_fs: &VirtualFs,
    seed_index: &CatalogIndex,
    exemptions: &ExemptionList,
    day: i64,
    iters: u32,
) -> SweepPoint {
    let mut fs = base_fs.clone();
    fs.enable_changelog();
    let before = fs.changelog_recorded_total();
    churn_one_week(&mut fs, day, pct);
    let raw_deltas = fs.changelog_recorded_total() - before;
    let deltas = fs.drain_changelog();

    // Net size after coalescing (reported, not timed).
    let mut probe = DeltaBuffer::unbounded();
    probe.absorb(deltas.iter().cloned());
    let net_deltas = probe.len();

    // Correctness first: the buffered trigger must land exactly on the
    // full scan of the churned state.
    let mut check = seed_index.clone();
    check.flush(&mut probe, exemptions);
    let scan = fs.catalog(exemptions);
    let drift = diff_catalogs(check.snapshot(), &scan);
    assert!(
        drift.is_empty(),
        "churn {pct}%: incremental catalog diverged: {drift:?}"
    );

    let full = min_time(iters, || fs.catalog(exemptions));
    // The adaptive trigger's decision, on exactly what the engine would
    // see: the week's net pending set against the pre-churn index.
    if !flush_beats_scan(net_deltas, seed_index.file_count()) {
        // Above the crossover the engine serves the trigger from the
        // same `VirtualFs::catalog` walk the scan column just timed —
        // identical code, so record identical micros rather than racing
        // the walk against itself and charting timer noise as a ratio.
        return SweepPoint {
            churn_pct: pct,
            raw_deltas,
            net_deltas,
            files_after: fs.file_count(),
            mode: "scan-fallback",
            full_scan_micros: full.as_micros() as u64,
            incremental_micros: full.as_micros() as u64,
            speedup: 1.0,
        };
    }
    // The flush the engine actually runs: six days of the week's deltas
    // were already absorbed by the daily end-of-day drains (streaming
    // work, not trigger-time work), so the trigger absorbs only the last
    // day's tranche, then flushes and snapshots.
    let last_day = deltas.len() - deltas.len() / 7;
    let mut staged = DeltaBuffer::unbounded();
    staged.absorb(deltas.iter().take(last_day).cloned());
    let incremental = min_time_with_setup(
        iters,
        || {
            (
                seed_index.clone(),
                staged.clone(),
                deltas.get(last_day..).unwrap_or(&[]).to_vec(),
            )
        },
        |(mut index, mut buffer, tail)| {
            buffer.absorb(tail);
            index.flush(&mut buffer, exemptions);
            index.snapshot().total_files()
        },
    );

    SweepPoint {
        churn_pct: pct,
        raw_deltas,
        net_deltas,
        files_after: fs.file_count(),
        mode: "flush",
        full_scan_micros: full.as_micros() as u64,
        incremental_micros: incremental.as_micros() as u64,
        speedup: ratio(full, incremental),
    }
}

fn ratio(scan: Duration, inc: Duration) -> f64 {
    scan.as_nanos() as f64 / inc.as_nanos().max(1) as f64
}

fn main() {
    let iters = 7u32;
    let seed = 42u64;
    let scenario = Scenario::build(Scale::Small, seed);

    // Two months of ActiveDR replay gives a realistically churned state.
    let until = i64::from(scenario.traces.replay_start_day) + 56;
    let (_, mut fs) = run_until(
        &scenario.traces,
        scenario.initial_fs.clone(),
        &SimConfig::activedr(90),
        Some(until),
    );
    let exemptions = ExemptionList::new();
    let files = fs.file_count();

    // 1. The paper-prototype trigger: walk everything.
    let full_scan = min_time(iters, || fs.catalog(&exemptions));

    // 2. Incremental trigger with nothing changed since the last one.
    let mut index = CatalogIndex::from_fs(&fs, &exemptions);
    fs.enable_changelog();
    assert_eq!(
        index.snapshot(),
        &fs.catalog(&exemptions),
        "incremental catalog diverged from the full scan"
    );
    let mut idle_buffer = DeltaBuffer::unbounded();
    let nochange = min_time(iters, || {
        idle_buffer.absorb(fs.drain_changelog());
        index.flush(&mut idle_buffer, &exemptions);
        index.snapshot().total_files()
    });
    let users = index.snapshot().users.len();
    fs.disable_changelog();

    // 3. The churn sweep: 15 % is the profile the old per-delta path lost
    //    on (0.71× — the week-churn regression), 100 % is total turnover.
    let sweep: Vec<SweepPoint> = [0u64, 5, 15, 35, 65, 100]
        .iter()
        .map(|&pct| run_sweep_point(pct, &fs, &index, &exemptions, until, iters))
        .collect();
    let week = sweep
        .iter()
        .find(|p| p.churn_pct == 15)
        .expect("15% sweep point");
    assert_eq!(
        week.mode, "flush",
        "the week-churn point must sit below the flush/scan crossover — \
         the whole fix exists to flush there"
    );

    let report = BenchReport {
        files,
        users,
        full_scan_micros: full_scan.as_micros() as u64,
        incremental_nochange_micros: nochange.as_micros() as u64,
        incremental_week_churn_micros: week.incremental_micros,
        churn_deltas: week.raw_deltas,
        speedup_nochange: ratio(full_scan, nochange),
        speedup_week_churn: week.speedup,
        churn_sweep: sweep,
    };

    // BENCH schema v2: ratio metrics gate on every machine, time metrics
    // only against a matching env fingerprint, info metrics never.
    let mut emitter = BenchEmitter::new("catalog", u64::from(iters));
    // Info, not Ratio: the no-change denominator is ~0.1 µs, so this
    // ratio jitters by integer factors run to run. The hard assert
    // below still enforces its 5x floor; the watchdog gates the
    // stable-denominator ratios instead.
    emitter.metric(
        "speedup_nochange",
        MetricKind::Info,
        Direction::Neutral,
        report.speedup_nochange,
        "x",
    );
    emitter.metric(
        "speedup_week_churn",
        MetricKind::Ratio,
        Direction::HigherBetter,
        report.speedup_week_churn,
        "x",
    );
    let sweep_min_speedup = report
        .churn_sweep
        .iter()
        .map(|p| p.speedup)
        .fold(f64::MAX, f64::min);
    emitter.metric(
        "sweep_min_speedup",
        MetricKind::Ratio,
        Direction::HigherBetter,
        sweep_min_speedup,
        "x",
    );
    emitter.metric(
        "full_scan_micros",
        MetricKind::Time,
        Direction::LowerBetter,
        report.full_scan_micros as f64,
        "us",
    );
    emitter.metric(
        "incremental_nochange_micros",
        MetricKind::Time,
        Direction::LowerBetter,
        report.incremental_nochange_micros as f64,
        "us",
    );
    emitter.metric(
        "incremental_week_churn_micros",
        MetricKind::Time,
        Direction::LowerBetter,
        report.incremental_week_churn_micros as f64,
        "us",
    );
    emitter.metric(
        "files",
        MetricKind::Info,
        Direction::Neutral,
        report.files as f64,
        "files",
    );
    emitter.metric(
        "users",
        MetricKind::Info,
        Direction::Neutral,
        report.users as f64,
        "users",
    );
    emitter.metric(
        "churn_deltas",
        MetricKind::Info,
        Direction::Neutral,
        report.churn_deltas as f64,
        "deltas",
    );
    let pcts: Vec<f64> = report
        .churn_sweep
        .iter()
        .map(|p| p.churn_pct as f64)
        .collect();
    emitter.series(
        "churn_sweep_speedup",
        "x",
        &pcts,
        &report
            .churn_sweep
            .iter()
            .map(|p| p.speedup)
            .collect::<Vec<f64>>(),
    );
    emitter.series(
        "churn_sweep_full_scan_micros",
        "us",
        &pcts,
        &report
            .churn_sweep
            .iter()
            .map(|p| p.full_scan_micros as f64)
            .collect::<Vec<f64>>(),
    );
    emitter.series(
        "churn_sweep_incremental_micros",
        "us",
        &pcts,
        &report
            .churn_sweep
            .iter()
            .map(|p| p.incremental_micros as f64)
            .collect::<Vec<f64>>(),
    );
    emitter.series(
        "churn_sweep_flush_mode",
        "bool",
        &pcts,
        &report
            .churn_sweep
            .iter()
            .map(|p| if p.mode == "flush" { 1.0 } else { 0.0 })
            .collect::<Vec<f64>>(),
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/results/BENCH_catalog.json"
    );
    std::fs::write(out, emitter.to_json()).unwrap();

    println!("catalog trigger benchmark — Small scale, {files} files, {users} users");
    println!(
        "  full scan          : {:>10.1} µs",
        full_scan.as_nanos() as f64 / 1e3
    );
    println!(
        "  incremental (idle) : {:>10.1} µs  ({:.1}x)",
        nochange.as_nanos() as f64 / 1e3,
        report.speedup_nochange
    );
    println!("  churn sweep (full scan vs buffered incremental):");
    for p in &report.churn_sweep {
        println!(
            "    {:>3}% churn: scan {:>8.1} µs  inc {:>8.1} µs  ({:>5.1}x, {} raw -> {} net deltas over {} files, {})",
            p.churn_pct,
            p.full_scan_micros as f64,
            p.incremental_micros as f64,
            p.speedup,
            p.raw_deltas,
            p.net_deltas,
            p.files_after,
            p.mode
        );
    }
    println!("  wrote {out}");

    assert!(
        report.speedup_nochange >= 5.0,
        "incremental no-change trigger must be >= 5x faster than a full scan \
         (got {:.1}x)",
        report.speedup_nochange
    );
    assert!(
        report.speedup_week_churn > 1.0,
        "incremental week-churn trigger must beat the full scan \
         (got {:.2}x — the churn regression is back)",
        report.speedup_week_churn
    );
    for p in &report.churn_sweep {
        assert!(
            p.speedup >= 1.0,
            "incremental trigger slower than a full scan at {}% churn \
             ({:.2}x) — the crossover is back",
            p.churn_pct,
            p.speedup
        );
    }
}
