//! Smoke benchmark: full-scan vs incremental catalog triggers.
//!
//! ```text
//! cargo run --release --example bench_catalog
//! ```
//!
//! Replays a `Small`-scale scenario two months in, then times the two ways
//! of producing the trigger-time catalog on the resulting state:
//!
//! * **full scan** — `VirtualFs::catalog`, the paper-prototype O(files)
//!   walk the engine performs at every trigger in `CatalogMode::FullScan`;
//! * **incremental, no change** — `CatalogIndex::apply` + `snapshot` with
//!   an empty changelog, the steady-state trigger cost in
//!   `CatalogMode::Incremental`;
//! * **incremental, one week of churn** — the same after replaying a
//!   week's worth of synthetic mutations through the changelog.
//!
//! Writes `docs/results/BENCH_catalog.json` and exits nonzero if the
//! no-change incremental trigger is not at least 5× faster than the full
//! scan — the floor the incremental catalog must clear to be worth its
//! complexity.

#![allow(
    clippy::unwrap_used,
    reason = "bench harness code may panic on a broken fixture"
)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    reason = "benchmark durations fit comfortably in the narrower types"
)]

use activedr_core::time::Timestamp;
use activedr_fs::{CatalogIndex, VirtualFs};
use activedr_sim::{run_until, Scale, Scenario, SimConfig};
use serde::Serialize;
use std::hint::black_box;
use std::time::Duration;

#[derive(Serialize)]
struct BenchReport {
    scale: String,
    seed: u64,
    files: usize,
    users: usize,
    iterations: u32,
    full_scan_micros: u64,
    incremental_nochange_micros: u64,
    incremental_week_churn_micros: u64,
    churn_deltas: u64,
    speedup_nochange: f64,
    speedup_week_churn: f64,
}

/// Minimum wall time of `iters` runs of `f` (minimum, not mean: the
/// cleanest sample of a deterministic computation).
fn min_time<T>(iters: u32, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        // xtask-allow: determinism -- wall-clock benchmark probe
        let start = std::time::Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// Replay one synthetic week of mutations against `fs` so the changelog
/// holds a realistic trigger interval's worth of deltas: every user
/// touches some files, writes some new ones, and a slice gets removed.
fn churn_one_week(fs: &mut VirtualFs, day: i64) {
    let paths: Vec<String> = fs.iter().map(|(p, _, _)| p).collect();
    for (i, path) in paths.iter().enumerate() {
        match i % 20 {
            // ~5 % of files re-read (atime renewals).
            0 => {
                fs.access(path, Timestamp::from_days(day + (i as i64 % 7)));
            }
            // ~5 % overwritten in place.
            1 => {
                let meta = *fs.meta(path).unwrap();
                fs.create(
                    path,
                    meta.owner,
                    meta.size / 2 + 1,
                    Timestamp::from_days(day),
                )
                .unwrap();
            }
            // ~5 % deleted.
            2 => {
                fs.remove(path).unwrap();
            }
            _ => {}
        }
    }
    // ~2.5 % of the population arrives as fresh files.
    for (i, path) in paths.iter().enumerate().filter(|(i, _)| i % 40 == 3) {
        let owner = fs.iter().next().map(|(_, _, m)| m.owner).unwrap();
        fs.create(
            &format!("{path}.week{}", i % 7),
            owner,
            4096,
            Timestamp::from_days(day + 1),
        )
        .unwrap();
    }
}

fn main() {
    let iters = 7u32;
    let seed = 42u64;
    let scenario = Scenario::build(Scale::Small, seed);

    // Two months of ActiveDR replay gives a realistically churned state.
    let until = i64::from(scenario.traces.replay_start_day) + 56;
    let (_, mut fs) = run_until(
        &scenario.traces,
        scenario.initial_fs.clone(),
        &SimConfig::activedr(90),
        Some(until),
    );
    let exemptions = activedr_fs::ExemptionList::new();
    let files = fs.file_count();

    // 1. The paper-prototype trigger: walk everything.
    let full_scan = min_time(iters, || fs.catalog(&exemptions));

    // 2. Incremental trigger with nothing changed since the last one.
    let mut index = CatalogIndex::from_fs(&fs, &exemptions);
    fs.enable_changelog();
    assert_eq!(
        index.snapshot(),
        &fs.catalog(&exemptions),
        "incremental catalog diverged from the full scan"
    );
    let nochange = min_time(iters, || {
        index.apply(fs.drain_changelog(), &exemptions);
        index.snapshot().total_files()
    });

    // 3. Incremental trigger after one week of churn (single shot: the
    //    drain consumes the deltas).
    churn_one_week(&mut fs, until);
    let churn_deltas = fs.changelog_recorded_total();
    // xtask-allow: determinism -- wall-clock benchmark probe
    let churn_start = std::time::Instant::now();
    index.apply(fs.drain_changelog(), &exemptions);
    black_box(index.snapshot().total_files());
    let week_churn = churn_start.elapsed();
    assert_eq!(
        index.snapshot(),
        &fs.catalog(&exemptions),
        "incremental catalog diverged after churn"
    );

    let users = index.snapshot().users.len();
    let ratio =
        |scan: Duration, inc: Duration| scan.as_nanos() as f64 / inc.as_nanos().max(1) as f64;
    let report = BenchReport {
        scale: "small".to_string(),
        seed,
        files,
        users,
        iterations: iters,
        full_scan_micros: full_scan.as_micros() as u64,
        incremental_nochange_micros: nochange.as_micros() as u64,
        incremental_week_churn_micros: week_churn.as_micros() as u64,
        churn_deltas,
        speedup_nochange: ratio(full_scan, nochange),
        speedup_week_churn: ratio(full_scan, week_churn),
    };

    let json = serde_json::to_string_pretty(&report).unwrap();
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/results/BENCH_catalog.json"
    );
    std::fs::write(out, format!("{json}\n")).unwrap();

    println!("catalog trigger benchmark — Small scale, {files} files, {users} users");
    println!(
        "  full scan          : {:>10.1} µs",
        full_scan.as_nanos() as f64 / 1e3
    );
    println!(
        "  incremental (idle) : {:>10.1} µs",
        nochange.as_nanos() as f64 / 1e3
    );
    println!(
        "  incremental (week) : {:>10.1} µs  ({churn_deltas} deltas)",
        week_churn.as_nanos() as f64 / 1e3
    );
    println!("  speedup idle  : {:>8.1}x", report.speedup_nochange);
    println!("  speedup week  : {:>8.1}x", report.speedup_week_churn);
    println!("  wrote {out}");

    assert!(
        report.speedup_nochange >= 5.0,
        "incremental no-change trigger must be >= 5x faster than a full scan \
         (got {:.1}x)",
        report.speedup_nochange
    );
}
