//! The purge-exemption contract (§3.4): reserved paths survive any purge,
//! but renaming a reserved file silently cancels its reservation.
//!
//! ```text
//! cargo run --example exemption_contract
//! ```

#![allow(
    clippy::unwrap_used,
    reason = "example code: unwrap keeps the walkthrough focused on the API"
)]

use activedr_core::prelude::*;
use activedr_fs::{ExemptionList, VirtualFs};

fn main() {
    let owner = UserId(7);
    let mut fs = VirtualFs::with_capacity(0);
    let day0 = Timestamp::from_days(0);
    fs.create("/scratch/u7/keep/reference-genome.fa", owner, 5 << 30, day0)
        .unwrap();
    fs.create("/scratch/u7/keep/calibration.h5", owner, 1 << 30, day0)
        .unwrap();
    fs.create("/scratch/u7/tmp/run-output.dat", owner, 3 << 30, day0)
        .unwrap();
    fs.create("/scratch/u7/project-x/shared.dat", owner, 2 << 30, day0)
        .unwrap();

    // The administrator's reservation list: one exact file, one directory.
    let exemptions = ExemptionList::from_lines(
        "# ticket #4411 — long-term reference data\n\
         /scratch/u7/keep/reference-genome.fa\n\
         /scratch/u7/project-x/\n"
            .lines(),
    );
    println!(
        "reservation list: {} exact paths, {} directory reservations",
        exemptions.exact_count(),
        exemptions.prefix_count()
    );

    // A year later everything is stale; the user is inactive; a purge runs.
    let tc = Timestamp::from_days(365);
    let catalog = fs.catalog(&exemptions);
    let table = ActivenessTable::new();
    let outcome = ActiveDrPolicy::new(RetentionConfig::new(90)).run(PurgeRequest {
        tc,
        catalog: &catalog,
        activeness: &table,
        target_bytes: None,
    });
    fs.apply(&outcome);

    println!("\nafter the purge at day 365:");
    for path in [
        "/scratch/u7/keep/reference-genome.fa",
        "/scratch/u7/keep/calibration.h5",
        "/scratch/u7/tmp/run-output.dat",
        "/scratch/u7/project-x/shared.dat",
    ] {
        println!(
            "  {:<42} {}",
            path,
            if fs.exists(path) {
                "retained (reserved)"
            } else {
                "purged"
            }
        );
    }
    println!("  ({} files skipped as exempt)", outcome.exempt_skipped);

    // The contract: moving a reserved file cancels the reservation.
    fs.create(
        "/scratch/u7/keep2/reference-genome.fa",
        owner,
        5 << 30,
        Timestamp::from_days(366),
    )
    .unwrap();
    let renamed = "/scratch/u7/keep2/reference-genome.fa";
    println!(
        "\nrenamed copy {renamed} is exempt? {} — \
         per §3.4 a moved file has cancelled its reservation",
        exemptions.is_exempt(renamed)
    );
}
