//! The paper's motivating story (§1): a researcher's campaign is
//! interrupted — a field study, a teaching term, an administrative
//! suspension — and when they return, the fixed-lifetime purge has wiped
//! the files they need, while ActiveDR kept them because the user's
//! outcome record (publications) kept their activeness up.
//!
//! ```text
//! cargo run --example campaign_interrupted
//! ```

#![allow(
    clippy::unwrap_used,
    reason = "example code: unwrap keeps the walkthrough focused on the API"
)]

use activedr_core::prelude::*;
use activedr_fs::{ExemptionList, VirtualFs};

fn main() {
    // One researcher with a 120-day interruption, plus a horde of idle
    // accounts whose stale data dominates the scratch space.
    let researcher = UserId(0);
    let mut fs = VirtualFs::with_capacity(200 << 30);

    // Campaign phase one: the researcher collects 10 input files at day 0.
    for i in 0..10 {
        fs.create(
            &format!("/scratch/u0/campaign/input{i:02}.h5"),
            researcher,
            1 << 30,
            Timestamp::from_days(0),
        )
        .unwrap();
    }
    // Idle accounts with old data (the purge fodder).
    for u in 1..=50u32 {
        for i in 0..4 {
            fs.create(
                &format!("/scratch/u{u}/old/data{i}.dat"),
                UserId(u),
                2 << 30,
                Timestamp::from_days(-30),
            )
            .unwrap();
        }
    }

    // The researcher publishes at day 60 (outcome activity), then is away
    // until day 120. Retention runs at day 100 with a 90-day lifetime:
    // the campaign inputs are 100 days stale.
    let registry = ActivityTypeRegistry::paper_default();
    let publication = registry.lookup("publication").unwrap();
    let events = vec![ActivityEvent::new(
        researcher,
        publication,
        Timestamp::from_days(60),
        (12 + 1) as f64, // 12 citations, sole author (Eq. 8)
    )];
    let tc = Timestamp::from_days(100);
    let evaluator = ActivenessEvaluator::new(registry.clone(), ActivenessConfig::year_window(30));
    let users: Vec<UserId> = (0..=50).map(UserId).collect();
    let table = evaluator.evaluate(tc, &users, &events);
    println!(
        "researcher at day 100: op rank {}, outcome rank {} -> {}",
        table.get(researcher).op,
        table.get(researcher).oc,
        Quadrant::of(table.get(researcher))
    );

    let catalog = fs.catalog(&ExemptionList::new());
    // Purge target: free 100 GiB.
    let target = Some(100u64 << 30);

    // Under FLT every 90-day-stale file goes, the researcher's included.
    let flt = FltPolicy::days(90).run(PurgeRequest {
        tc,
        catalog: &catalog,
        activeness: &table,
        target_bytes: None,
    });
    let researcher_losses_flt = flt.purged.iter().filter(|p| p.user == researcher).count();

    // Under ActiveDR the target is met entirely from the idle accounts.
    let adr = ActiveDrPolicy::new(RetentionConfig::new(90)).run(PurgeRequest {
        tc,
        catalog: &catalog,
        activeness: &table,
        target_bytes: target,
    });
    let researcher_losses_adr = adr.purged.iter().filter(|p| p.user == researcher).count();

    println!("\nretention at day 100 (lifetime 90d):");
    println!(
        "  FLT:      purged {:>3} files, researcher lost {researcher_losses_flt}",
        flt.purged.len()
    );
    println!(
        "  ActiveDR: purged {:>3} files, researcher lost {researcher_losses_adr} (target met: {})",
        adr.purged.len(),
        adr.target_met
    );

    // Day 120: the researcher returns and opens the campaign inputs.
    let mut fs_flt = fs.clone();
    fs_flt.apply(&flt);
    let mut fs_adr = fs;
    fs_adr.apply(&adr);
    let mut misses_flt = 0;
    let mut misses_adr = 0;
    for i in 0..10 {
        let path = format!("/scratch/u0/campaign/input{i:02}.h5");
        if fs_flt.access(&path, Timestamp::from_days(120)).is_miss() {
            misses_flt += 1;
        }
        if fs_adr.access(&path, Timestamp::from_days(120)).is_miss() {
            misses_adr += 1;
        }
    }
    println!("\nday 120, the researcher returns to 10 campaign inputs:");
    println!("  FLT:      {misses_flt}/10 file misses — the campaign must re-transfer its data");
    println!("  ActiveDR: {misses_adr}/10 file misses");
}
